//! Custom instruction replacement with correctness-preserving reordering.
//!
//! §4.2: a custom instruction "must be placed after all the predecessors
//! of the operations in the subgraph, and also before all the successors";
//! when the original linear order interleaves them, "those successors and
//! any operations dependent \[on\] them are moved after the last
//! predecessor". This pass realizes that by collapsing each accepted match
//! into a super-node and re-emitting the whole block in a dependence-
//! respecting topological order (data, memory *and* anti/output
//! dependences — the IR is not SSA, so register reuse pins reorderings
//! too). Convexity of every accepted match guarantees the super-node graph
//! is acyclic.
//!
//! Each replacement also registers the **executable semantics** of the new
//! instruction — the DAG of primitive operations it stands for — built
//! from the *matched program nodes* (not the CFU's nominal pattern), so
//! wildcard and subsumed matches carry their own exact function. This is
//! what lets the interpreter prove replacement soundness.

use crate::matching::PatternMatch;
use crate::mdes::Mdes;
use isax_ir::{
    BasicBlock, CfuSemantics, Dfg, Function, Inst, Opcode, Operand, SemOp, SemSrc, VReg,
};
use std::collections::{BTreeMap, HashMap};

/// Summary of one applied replacement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedMatch {
    /// Executing CFU.
    pub cfu: u16,
    /// Semantic id given to the emitted `Opcode::Custom` instruction.
    pub sem_id: u16,
    /// Block the replacement happened in.
    pub block: usize,
    /// Operations absorbed.
    pub size: usize,
    /// Whether the match came from the contraction closure.
    pub via_subsumption: bool,
    /// Estimated cycles saved.
    pub savings: u64,
}

/// A function after custom-instruction replacement.
#[derive(Debug, Clone, PartialEq)]
pub struct CustomizedFunction {
    /// The rewritten function.
    pub function: Function,
    /// Semantics of each emitted custom opcode, keyed by semantic id.
    pub semantics: BTreeMap<u16, CfuSemantics>,
    /// Pipelined latency of each semantic id (from the executing CFU).
    pub sem_latency: BTreeMap<u16, u32>,
    /// One record per replacement.
    pub applied: Vec<AppliedMatch>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum InputKey {
    /// Value produced by an in-block node outside the match.
    Producer(usize),
    /// Value live into the block in this register.
    LiveReg(VReg),
}

/// Tests whether collapsing each node group into a super-node leaves the
/// block's dependence graph acyclic. Individually convex matches can
/// still deadlock *each other* (M1 feeds M2 and M2 feeds M1 through
/// different value pairs), so joint feasibility must be checked when
/// accepting matches.
pub fn supernodes_acyclic(dfg: &Dfg, groups: &[&isax_graph::BitSet]) -> bool {
    let n = dfg.len();
    let mut owner: Vec<Option<usize>> = vec![None; n];
    for (k, g) in groups.iter().enumerate() {
        for v in g.iter() {
            if owner[v].is_some() {
                return false; // overlapping groups are never jointly legal
            }
            owner[v] = Some(k);
        }
    }
    let super_of = |v: usize| owner[v].map(|k| n + k).unwrap_or(v);
    let total = n + groups.len();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); total];
    let mut indeg = vec![0usize; total];
    for v in 0..n {
        let sv = super_of(v);
        let push = |a: usize, b: usize, succs: &mut Vec<Vec<usize>>, indeg: &mut Vec<usize>| {
            if a != b && !succs[a].contains(&b) {
                succs[a].push(b);
                indeg[b] += 1;
            }
        };
        for &(u, _) in dfg.data_preds(v) {
            push(super_of(u), sv, &mut succs, &mut indeg);
        }
        for &u in dfg.order_preds(v) {
            push(super_of(u), sv, &mut succs, &mut indeg);
        }
        for &u in dfg.anti_preds(v) {
            push(super_of(u), sv, &mut succs, &mut indeg);
        }
    }
    let mut ready: Vec<usize> = (0..total).filter(|&s| indeg[s] == 0).collect();
    let mut seen = 0usize;
    while let Some(s) = ready.pop() {
        seen += 1;
        for &t in &succs[s] {
            indeg[t] -= 1;
            if indeg[t] == 0 {
                ready.push(t);
            }
        }
    }
    seen == total
}

/// Applies a prioritized, non-overlapping match set to a function.
///
/// `dfgs` must be the DFGs of `f` (one per block, same indices as
/// `PatternMatch::block`). `sem_base` is the first semantic id to
/// allocate, letting multi-function programs share one id space.
///
/// # Panics
///
/// Panics if matches overlap, reference out-of-range blocks, or are
/// non-convex (callers must use [`crate::prioritize::prioritize`] on
/// matches from [`crate::matching::find_matches`], which guarantee all
/// three).
pub fn apply_matches(
    f: &Function,
    dfgs: &[Dfg],
    accepted: &[PatternMatch],
    mdes: &Mdes,
    sem_base: u16,
) -> CustomizedFunction {
    let mut out = CustomizedFunction {
        function: f.clone(),
        semantics: BTreeMap::new(),
        sem_latency: BTreeMap::new(),
        applied: Vec::new(),
    };
    // Registry for deduplicating identical (cfu, semantics) pairs.
    let mut registry: Vec<(u16, CfuSemantics, u16)> = Vec::new();
    let mut next_sem = sem_base;
    for (bi, dfg) in dfgs.iter().enumerate() {
        let block_matches: Vec<&PatternMatch> = accepted.iter().filter(|m| m.block == bi).collect();
        if block_matches.is_empty() {
            continue;
        }
        let new_block = rebuild_block(
            &f.blocks[bi],
            dfg,
            &block_matches,
            mdes,
            &mut registry,
            &mut next_sem,
            &mut out,
            bi,
        );
        out.function.blocks[bi] = new_block;
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn rebuild_block(
    block: &BasicBlock,
    dfg: &Dfg,
    matches: &[&PatternMatch],
    mdes: &Mdes,
    registry: &mut Vec<(u16, CfuSemantics, u16)>,
    next_sem: &mut u16,
    out: &mut CustomizedFunction,
    block_index: usize,
) -> BasicBlock {
    let n = block.insts.len();
    // owner[v] = Some(match index) when v is absorbed.
    let mut owner: Vec<Option<usize>> = vec![None; n];
    for (k, m) in matches.iter().enumerate() {
        for v in m.nodes.iter() {
            assert!(
                owner[v].is_none(),
                "overlapping matches reached replacement"
            );
            owner[v] = Some(k);
        }
    }
    // Super-node ids: 0..n are instructions (absorbed ones are skipped at
    // emission), n..n+matches are the custom ops.
    let super_of = |v: usize| owner[v].map(|k| n + k).unwrap_or(v);
    let total = n + matches.len();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); total];
    let mut indeg = vec![0usize; total];
    let mut min_pos: Vec<usize> = (0..total).collect();
    for (k, m) in matches.iter().enumerate() {
        min_pos[n + k] = m.nodes.iter().next().unwrap_or(0);
    }
    let add_edge = |a: usize, b: usize, succs: &mut Vec<Vec<usize>>, indeg: &mut Vec<usize>| {
        if a != b && !succs[a].contains(&b) {
            succs[a].push(b);
            indeg[b] += 1;
        }
    };
    for v in 0..n {
        let sv = super_of(v);
        for &(u, _) in dfg.data_preds(v) {
            add_edge(super_of(u), sv, &mut succs, &mut indeg);
        }
        for &u in dfg.order_preds(v) {
            add_edge(super_of(u), sv, &mut succs, &mut indeg);
        }
        for &u in dfg.anti_preds(v) {
            add_edge(super_of(u), sv, &mut succs, &mut indeg);
        }
    }
    // Stable Kahn over the emittable super-nodes (absorbed instruction
    // slots carry no edges — everything was lifted to their match's
    // super-node). Always emit the ready super-node that appeared
    // earliest in the original block.
    let emittable: Vec<bool> = (0..total).map(|s| s >= n || owner[s].is_none()).collect();
    let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<(usize, usize)>> = (0..total)
        .filter(|&s| emittable[s] && indeg[s] == 0)
        .map(|s| std::cmp::Reverse((min_pos[s], s)))
        .collect();
    let pending = emittable.iter().filter(|&&e| e).count();
    let mut emitted: Vec<usize> = Vec::with_capacity(pending);
    while let Some(std::cmp::Reverse((_, s))) = ready.pop() {
        emitted.push(s);
        for &t in &succs[s] {
            indeg[t] -= 1;
            if indeg[t] == 0 {
                debug_assert!(emittable[t]);
                ready.push(std::cmp::Reverse((min_pos[t], t)));
            }
        }
    }
    assert_eq!(
        emitted.len(),
        pending,
        "cyclic super-node graph: a non-convex match slipped through"
    );
    // Emit instructions.
    let mut insts: Vec<Inst> = Vec::with_capacity(emitted.len());
    for s in emitted {
        if s < n {
            insts.push(block.insts[s].clone());
        } else {
            let m = matches[s - n];
            let (inst, sem, sem_id) = build_custom(m, dfg, mdes, registry, next_sem);
            out.semantics.insert(sem_id, sem.clone());
            out.sem_latency
                .insert(sem_id, mdes.cfu(m.cfu).expect("cfu in mdes").latency);
            out.applied.push(AppliedMatch {
                cfu: m.cfu,
                sem_id,
                block: block_index,
                size: m.nodes.len(),
                via_subsumption: m.via_subsumption,
                savings: m.savings,
            });
            insts.push(inst);
        }
    }
    BasicBlock {
        insts,
        term: block.term.clone(),
        weight: block.weight,
    }
}

/// Builds the custom instruction and its executable semantics from the
/// matched program nodes.
fn build_custom(
    m: &PatternMatch,
    dfg: &Dfg,
    mdes: &Mdes,
    registry: &mut Vec<(u16, CfuSemantics, u16)>,
    next_sem: &mut u16,
) -> (Inst, CfuSemantics, u16) {
    let order: Vec<usize> = m.nodes.iter().collect();
    let pos: HashMap<usize, u16> = order
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i as u16))
        .collect();
    let mut input_idx: HashMap<InputKey, u8> = HashMap::new();
    let mut srcs: Vec<Operand> = Vec::new();
    let mut ops: Vec<SemOp> = Vec::new();
    for &t in &order {
        let inst = dfg.inst(t);
        let mut sem_srcs = Vec::with_capacity(inst.srcs.len());
        for (port, operand) in inst.srcs.iter().enumerate() {
            let port = port as u8;
            match operand {
                Operand::Imm(v) => sem_srcs.push(SemSrc::Imm(*v)),
                Operand::Reg(r) => {
                    let producer = dfg
                        .data_preds(t)
                        .iter()
                        .find(|&&(_, p)| p == port)
                        .map(|&(u, _)| u);
                    match producer {
                        Some(u) if m.nodes.contains(u) => {
                            sem_srcs.push(SemSrc::Node(pos[&u]));
                        }
                        Some(u) => {
                            let next = input_idx.len() as u8;
                            let idx = *input_idx.entry(InputKey::Producer(u)).or_insert(next);
                            if idx == next {
                                srcs.push(Operand::Reg(*r));
                            }
                            sem_srcs.push(SemSrc::Input(idx));
                        }
                        None => {
                            let next = input_idx.len() as u8;
                            let idx = *input_idx.entry(InputKey::LiveReg(*r)).or_insert(next);
                            if idx == next {
                                srcs.push(Operand::Reg(*r));
                            }
                            sem_srcs.push(SemSrc::Input(idx));
                        }
                    }
                }
            }
        }
        ops.push(SemOp {
            opcode: inst.opcode,
            srcs: sem_srcs,
        });
    }
    // Outputs: values that escape the match.
    let mut outputs: Vec<u16> = Vec::new();
    let mut dsts: Vec<VReg> = Vec::new();
    for &t in &order {
        let escapes =
            dfg.is_block_output(t) || dfg.data_succs(t).iter().any(|&(d, _)| !m.nodes.contains(d));
        if escapes {
            outputs.push(pos[&t]);
            dsts.push(dfg.inst(t).dst().expect("escaping node has a destination"));
        }
    }
    let sem = CfuSemantics {
        ops,
        outputs,
        inputs: input_idx.len() as u8,
    };
    // Deduplicate identical (cfu, semantics) pairs.
    let sem_id = registry
        .iter()
        .find(|(c, s, _)| *c == m.cfu && *s == sem)
        .map(|&(_, _, id)| id)
        .unwrap_or_else(|| {
            let id = *next_sem;
            *next_sem += 1;
            registry.push((m.cfu, sem.clone(), id));
            id
        });
    let _ = mdes;
    (Inst::new(Opcode::Custom(sem_id), dsts, srcs), sem, sem_id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::{find_matches, MatchOptions};
    use crate::mdes::CfuSpec;
    use crate::prioritize::prioritize;
    use isax_graph::DiGraph;
    use isax_hwlib::HwLibrary;
    use isax_ir::{function_dfgs, verify_function, DfgLabel, FunctionBuilder};

    fn lab(op: Opcode) -> DfgLabel {
        DfgLabel {
            opcode: op,
            imms: vec![],
        }
    }

    fn mdes_and_add() -> Mdes {
        let mut pattern = DiGraph::new();
        let a = pattern.add_node(lab(Opcode::And));
        let b = pattern.add_node(lab(Opcode::Add));
        pattern.add_edge(a, b, 0);
        Mdes {
            cfus: vec![CfuSpec {
                id: 0,
                name: "add-and".into(),
                pattern,
                latency: 1,
                area: 1.12,
                inputs: 3,
                outputs: 1,
                priority: 0,
                estimated_value: 0,
                subsumed_patterns: vec![],
            }],
            max_inputs: 5,
            max_outputs: 3,
            source_app: "t".into(),
        }
    }

    fn customize(f: &Function, mdes: &Mdes) -> CustomizedFunction {
        let dfgs = function_dfgs(f);
        let hw = HwLibrary::micron_018();
        let matches = find_matches(&dfgs, mdes, &hw, &MatchOptions::exact());
        let accepted = prioritize(matches, mdes, &dfgs);
        apply_matches(f, &dfgs, &accepted, mdes, 0)
    }

    #[test]
    fn simple_replacement_shrinks_block() {
        let mut fb = FunctionBuilder::new("f", 3);
        fb.set_entry_weight(10);
        let (a, b, c) = (fb.param(0), fb.param(1), fb.param(2));
        let t = fb.and(a, b);
        let u = fb.add(t, c);
        fb.ret(&[u.into()]);
        let f = fb.finish();
        let cf = customize(&f, &mdes_and_add());
        assert_eq!(cf.applied.len(), 1);
        assert_eq!(cf.function.blocks[0].insts.len(), 1);
        let inst = &cf.function.blocks[0].insts[0];
        assert!(matches!(inst.opcode, Opcode::Custom(0)));
        assert_eq!(inst.srcs.len(), 3, "a, b, c are the inputs");
        assert_eq!(inst.dsts.len(), 1);
        assert!(verify_function(&cf.function).is_ok());
        // Semantics compute (a & b) + c.
        let sem = &cf.semantics[&0];
        assert_eq!(sem.eval(&[0xF0, 0x3C, 5]), vec![(0xF0u32 & 0x3C) + 5]);
    }

    #[test]
    fn shared_input_register_is_deduplicated() {
        // (a & b) + b : b feeds two ports but is one input.
        let mut fb = FunctionBuilder::new("f", 2);
        fb.set_entry_weight(10);
        let (a, b) = (fb.param(0), fb.param(1));
        let t = fb.and(a, b);
        let u = fb.add(t, b);
        fb.ret(&[u.into()]);
        let f = fb.finish();
        let cf = customize(&f, &mdes_and_add());
        let inst = &cf.function.blocks[0].insts[0];
        assert_eq!(inst.srcs.len(), 2);
        let sem = &cf.semantics[&0];
        assert_eq!(sem.eval(&[0xFF, 3]), vec![(0xFFu32 & 3) + 3]);
    }

    #[test]
    fn reordering_moves_interleaved_successor() {
        // Program order: and; xor (reads and); add — the match {and, add}
        // spans the xor. The xor only depends on the and, so it may stay
        // anywhere after the custom op... actually it must come *after*
        // (it reads the and's value, an output of the custom op).
        let mut fb = FunctionBuilder::new("f", 3);
        fb.set_entry_weight(10);
        let (a, b, c) = (fb.param(0), fb.param(1), fb.param(2));
        let t = fb.and(a, b); // 0: in match
        let x = fb.xor(t, c); // 1: external successor of 0
        let u = fb.add(t, c); // 2: in match
        let z = fb.or(x, u); // 3
        fb.ret(&[z.into()]);
        let f = fb.finish();
        let cf = customize(&f, &mdes_and_add());
        assert_eq!(cf.applied.len(), 1);
        let block = &cf.function.blocks[0];
        assert_eq!(block.insts.len(), 3);
        assert!(matches!(block.insts[0].opcode, Opcode::Custom(_)));
        assert_eq!(block.insts[1].opcode, Opcode::Xor);
        assert_eq!(block.insts[2].opcode, Opcode::Or);
        // The custom op now has two outputs: the and's value (read by
        // the xor) and the add's value.
        assert_eq!(block.insts[0].dsts.len(), 2);
        assert!(verify_function(&cf.function).is_ok());
    }

    #[test]
    fn identical_replacements_share_a_semantic_id() {
        let mut fb = FunctionBuilder::new("f", 3);
        fb.set_entry_weight(10);
        let (a, b, c) = (fb.param(0), fb.param(1), fb.param(2));
        let t1 = fb.and(a, b);
        let u1 = fb.add(t1, c);
        let t2 = fb.and(u1, b);
        let u2 = fb.add(t2, c);
        fb.ret(&[u2.into()]);
        let f = fb.finish();
        let cf = customize(&f, &mdes_and_add());
        assert_eq!(cf.applied.len(), 2);
        assert_eq!(cf.applied[0].sem_id, cf.applied[1].sem_id);
        assert_eq!(cf.semantics.len(), 1);
    }

    #[test]
    fn latency_is_recorded_per_semantic_id() {
        let mut fb = FunctionBuilder::new("f", 3);
        fb.set_entry_weight(1);
        let (a, b, c) = (fb.param(0), fb.param(1), fb.param(2));
        let t = fb.and(a, b);
        let u = fb.add(t, c);
        fb.ret(&[u.into()]);
        let cf = customize(&fb.finish(), &mdes_and_add());
        assert_eq!(cf.sem_latency[&0], 1);
    }

    #[test]
    fn unmatched_blocks_are_untouched() {
        let mut fb = FunctionBuilder::new("f", 2);
        let (a, b) = (fb.param(0), fb.param(1));
        let other = fb.new_block(5);
        let t = fb.and(a, b);
        let u = fb.add(t, b);
        fb.jump(other);
        fb.switch_to(other);
        let v = fb.mul(u, b); // no and->add here
        fb.ret(&[v.into()]);
        let f = fb.finish();
        let cf = customize(&f, &mdes_and_add());
        assert_eq!(cf.function.blocks[1], f.blocks[1]);
        assert_eq!(cf.applied.len(), 1);
    }
}
