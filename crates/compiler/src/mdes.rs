//! The machine description (MDES): the contract between the hardware
//! compiler and the retargetable compiler.
//!
//! "The prioritized list of CFUs is converted in a machine description
//! (MDES) form that can be fed to the compiler" (§3). The MDES records,
//! for each custom function unit: the dataflow pattern it implements, its
//! pipelined latency, port counts, area, replacement priority, and —
//! because the compiler's generalized matching needs them — the contraction
//! closure of patterns the unit subsumes.
//!
//! The MDES serializes to JSON so a CFU set generated for one application
//! can be stored and reused to compile another (the cross-compilation
//! experiments of Figure 7).

use isax_graph::{DiGraph, NodeId};
use isax_hwlib::HwLibrary;
use isax_ir::{DfgLabel, Opcode};
use isax_json::Value;
use isax_select::{contraction_closure, CfuCandidate, Selection};

/// One custom function unit in the machine description.
#[derive(Debug, Clone, PartialEq)]
pub struct CfuSpec {
    /// Identifier; `Opcode::Custom(id)` instructions reference the unit.
    pub id: u16,
    /// Human-readable name (sorted mnemonics, e.g. `"add-and-shl"`).
    pub name: String,
    /// The exact dataflow pattern the hardware implements.
    pub pattern: DiGraph<DfgLabel>,
    /// Pipelined execution latency in cycles.
    pub latency: u32,
    /// Die area in adder units.
    pub area: f64,
    /// Register read ports.
    pub inputs: u8,
    /// Register write ports.
    pub outputs: u8,
    /// Replacement priority (0 = replace first) — the selection order.
    pub priority: usize,
    /// Estimated cycle savings recorded at selection time.
    pub estimated_value: u64,
    /// Patterns this unit can also execute by feeding identity constants
    /// (the contraction closure), used by subsumed matching.
    pub subsumed_patterns: Vec<DiGraph<DfgLabel>>,
}

/// A complete machine description: the baseline VLIW plus the CFU set.
///
/// # Example
///
/// ```
/// use isax_compiler::Mdes;
///
/// let mdes = Mdes::baseline();
/// assert!(mdes.cfus.is_empty());
/// let json = mdes.to_json().unwrap();
/// let back = Mdes::from_json(&json).unwrap();
/// assert_eq!(mdes, back);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mdes {
    /// The custom function units, in priority order.
    pub cfus: Vec<CfuSpec>,
    /// Machine-wide register read port limit for custom instructions.
    pub max_inputs: u8,
    /// Machine-wide register write port limit for custom instructions.
    pub max_outputs: u8,
    /// Name of the application the CFUs were generated for (reporting).
    pub source_app: String,
}

impl Mdes {
    /// The baseline machine: no custom function units.
    pub fn baseline() -> Self {
        Mdes {
            cfus: Vec::new(),
            max_inputs: 5,
            max_outputs: 3,
            source_app: String::new(),
        }
    }

    /// Builds the MDES from a selection over combined candidates.
    ///
    /// `closure_cap` bounds the subsumed-pattern list per CFU (see
    /// [`isax_select::contraction_closure`]).
    pub fn from_selection(
        source_app: &str,
        cands: &[CfuCandidate],
        selection: &Selection,
        hw: &HwLibrary,
        closure_cap: usize,
    ) -> Self {
        let _ = hw; // latency is already folded into the candidates
        let cfus = selection
            .chosen
            .iter()
            .enumerate()
            .map(|(i, sc)| {
                let c = &cands[sc.candidate];
                CfuSpec {
                    id: i as u16,
                    name: c.describe(),
                    pattern: c.pattern.clone(),
                    latency: c.hw_cycles,
                    area: c.area,
                    inputs: c.inputs.min(255) as u8,
                    outputs: c.outputs.min(255) as u8,
                    priority: sc.priority,
                    estimated_value: sc.estimated_value,
                    subsumed_patterns: contraction_closure(&c.pattern, closure_cap),
                }
            })
            .collect();
        Mdes {
            cfus,
            max_inputs: 5,
            max_outputs: 3,
            source_app: source_app.to_string(),
        }
    }

    /// Looks up a CFU by id.
    pub fn cfu(&self, id: u16) -> Option<&CfuSpec> {
        self.cfus.iter().find(|c| c.id == id)
    }

    /// Total area of the CFU set (undiscounted sum).
    pub fn total_area(&self) -> f64 {
        self.cfus.iter().map(|c| c.area).sum()
    }

    /// Serializes to JSON.
    ///
    /// # Errors
    ///
    /// Propagates serializer failures (none are expected for this type).
    pub fn to_json(&self) -> Result<String, isax_json::Error> {
        Ok(self.to_value().to_string_pretty())
    }

    /// Parses from JSON.
    ///
    /// # Errors
    ///
    /// Returns the parse error for malformed input, or a schema error for
    /// well-formed JSON that is not an MDES.
    pub fn from_json(s: &str) -> Result<Self, isax_json::Error> {
        Self::from_value(&isax_json::parse(s)?)
    }

    fn to_value(&self) -> Value {
        isax_json::object([
            (
                "cfus",
                Value::Array(self.cfus.iter().map(CfuSpec::to_value).collect()),
            ),
            ("max_inputs", Value::from(self.max_inputs as u64)),
            ("max_outputs", Value::from(self.max_outputs as u64)),
            ("source_app", Value::from(self.source_app.clone())),
        ])
    }

    fn from_value(v: &Value) -> Result<Self, isax_json::Error> {
        Ok(Mdes {
            cfus: field(v, "cfus")?
                .as_array()
                .ok_or_else(|| schema("cfus must be an array"))?
                .iter()
                .map(CfuSpec::from_value)
                .collect::<Result<_, _>>()?,
            max_inputs: get_int(v, "max_inputs")? as u8,
            max_outputs: get_int(v, "max_outputs")? as u8,
            source_app: field(v, "source_app")?
                .as_str()
                .ok_or_else(|| schema("source_app must be a string"))?
                .to_string(),
        })
    }
}

impl CfuSpec {
    fn to_value(&self) -> Value {
        isax_json::object([
            ("id", Value::from(self.id as u64)),
            ("name", Value::from(self.name.clone())),
            ("pattern", pattern_to_value(&self.pattern)),
            ("latency", Value::from(self.latency as u64)),
            ("area", Value::from(self.area)),
            ("inputs", Value::from(self.inputs as u64)),
            ("outputs", Value::from(self.outputs as u64)),
            ("priority", Value::from(self.priority as u64)),
            ("estimated_value", Value::from(self.estimated_value)),
            (
                "subsumed_patterns",
                Value::Array(
                    self.subsumed_patterns
                        .iter()
                        .map(pattern_to_value)
                        .collect(),
                ),
            ),
        ])
    }

    fn from_value(v: &Value) -> Result<Self, isax_json::Error> {
        Ok(CfuSpec {
            id: get_int(v, "id")? as u16,
            name: field(v, "name")?
                .as_str()
                .ok_or_else(|| schema("name must be a string"))?
                .to_string(),
            pattern: pattern_from_value(field(v, "pattern")?)?,
            latency: get_int(v, "latency")? as u32,
            area: field(v, "area")?
                .as_f64()
                .ok_or_else(|| schema("area must be a number"))?,
            inputs: get_int(v, "inputs")? as u8,
            outputs: get_int(v, "outputs")? as u8,
            priority: get_int(v, "priority")? as usize,
            estimated_value: get_int(v, "estimated_value")?,
            subsumed_patterns: field(v, "subsumed_patterns")?
                .as_array()
                .ok_or_else(|| schema("subsumed_patterns must be an array"))?
                .iter()
                .map(pattern_from_value)
                .collect::<Result<_, _>>()?,
        })
    }
}

fn schema(msg: &str) -> isax_json::Error {
    isax_json::Error::msg(format!("mdes: {msg}"))
}

fn field<'v>(v: &'v Value, key: &str) -> Result<&'v Value, isax_json::Error> {
    v.get(key)
        .ok_or_else(|| schema(&format!("missing field `{key}`")))
}

fn get_int(v: &Value, key: &str) -> Result<u64, isax_json::Error> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| schema(&format!("`{key}` must be a non-negative integer")))
}

/// A pattern graph as JSON: nodes carry the opcode's display form plus
/// hardwired immediates as `[port, value]` pairs; edges are
/// `[src, dst, port]` triples in insertion order.
fn pattern_to_value(g: &DiGraph<DfgLabel>) -> Value {
    let nodes = g
        .node_ids()
        .map(|n| {
            let label = &g[n];
            isax_json::object([
                ("op", Value::from(label.opcode.to_string())),
                (
                    "imms",
                    Value::Array(
                        label
                            .imms
                            .iter()
                            .map(|&(port, val)| {
                                Value::Array(vec![Value::from(port as u64), Value::from(val)])
                            })
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    let edges = g
        .edges()
        .map(|e| {
            Value::Array(vec![
                Value::from(e.src.0 as u64),
                Value::from(e.dst.0 as u64),
                Value::from(e.port as u64),
            ])
        })
        .collect();
    isax_json::object([
        ("nodes", Value::Array(nodes)),
        ("edges", Value::Array(edges)),
    ])
}

fn pattern_from_value(v: &Value) -> Result<DiGraph<DfgLabel>, isax_json::Error> {
    let nodes = field(v, "nodes")?
        .as_array()
        .ok_or_else(|| schema("pattern nodes must be an array"))?;
    let mut g = DiGraph::with_capacity(nodes.len());
    for node in nodes {
        let op_str = field(node, "op")?
            .as_str()
            .ok_or_else(|| schema("node op must be a string"))?;
        let opcode = Opcode::from_mnemonic(op_str)
            .ok_or_else(|| schema(&format!("unknown opcode `{op_str}`")))?;
        let imms = field(node, "imms")?
            .as_array()
            .ok_or_else(|| schema("node imms must be an array"))?
            .iter()
            .map(|pair| {
                let items = pair.as_array().filter(|a| a.len() == 2);
                let items = items.ok_or_else(|| schema("imm must be a [port, value] pair"))?;
                let port = items[0]
                    .as_u64()
                    .filter(|&p| p <= u8::MAX as u64)
                    .ok_or_else(|| schema("imm port must fit in u8"))?;
                let val = items[1]
                    .as_i64()
                    .ok_or_else(|| schema("imm value must be an integer"))?;
                Ok((port as u8, val))
            })
            .collect::<Result<Vec<_>, isax_json::Error>>()?;
        g.add_node(DfgLabel { opcode, imms });
    }
    for edge in field(v, "edges")?
        .as_array()
        .ok_or_else(|| schema("pattern edges must be an array"))?
    {
        let items = edge
            .as_array()
            .filter(|a| a.len() == 3)
            .ok_or_else(|| schema("edge must be a [src, dst, port] triple"))?;
        let coord = |i: usize| {
            items[i]
                .as_u64()
                .ok_or_else(|| schema("edge fields must be integers"))
        };
        let (src, dst, port) = (coord(0)?, coord(1)?, coord(2)?);
        if src >= g.node_count() as u64 || dst >= g.node_count() as u64 || port > u8::MAX as u64 {
            return Err(schema("edge endpoint out of range"));
        }
        g.add_edge(NodeId(src as u32), NodeId(dst as u32), port as u8);
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use isax_explore::{explore_app, ExploreConfig};
    use isax_ir::{function_dfgs, FunctionBuilder};
    use isax_select::{combine, select_greedy, SelectConfig};

    fn build_mdes() -> Mdes {
        let mut fb = FunctionBuilder::new("kern", 3);
        fb.set_entry_weight(1000);
        let (a, b, k) = (fb.param(0), fb.param(1), fb.param(2));
        let t = fb.xor(a, k);
        let u = fb.shl(t, 5i64);
        let v = fb.add(u, b);
        let w = fb.and(v, 0xFFi64);
        fb.ret(&[w.into()]);
        let dfgs = function_dfgs(&fb.finish());
        let hw = HwLibrary::micron_018();
        let found = explore_app(&dfgs, &hw, &ExploreConfig::default());
        let cfus = combine(&dfgs, &found.candidates, &hw);
        let sel = select_greedy(&cfus, &SelectConfig::with_budget(8.0));
        Mdes::from_selection("kern", &cfus, &sel, &hw, 64)
    }

    #[test]
    fn selection_order_becomes_priority() {
        let mdes = build_mdes();
        assert!(!mdes.cfus.is_empty());
        for (i, c) in mdes.cfus.iter().enumerate() {
            assert_eq!(c.priority, i);
            assert_eq!(c.id, i as u16);
        }
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let mdes = build_mdes();
        let json = mdes.to_json().unwrap();
        let back = Mdes::from_json(&json).unwrap();
        // Areas are floats; JSON round-trips them to the nearest shortest
        // representation, so compare them with a tolerance and everything
        // else exactly.
        assert_eq!(mdes.cfus.len(), back.cfus.len());
        for (a, b) in mdes.cfus.iter().zip(back.cfus.iter()) {
            assert!((a.area - b.area).abs() < 1e-9);
            assert_eq!(a.pattern, b.pattern);
            assert_eq!(a.subsumed_patterns, b.subsumed_patterns);
            assert_eq!(
                (
                    a.id,
                    &a.name,
                    a.latency,
                    a.inputs,
                    a.outputs,
                    a.priority,
                    a.estimated_value
                ),
                (
                    b.id,
                    &b.name,
                    b.latency,
                    b.inputs,
                    b.outputs,
                    b.priority,
                    b.estimated_value
                )
            );
        }
        assert_eq!(back.source_app, "kern");
        // A second round-trip is exact: the parse already normalized.
        let json2 = back.to_json().unwrap();
        assert_eq!(Mdes::from_json(&json2).unwrap(), back);
    }

    #[test]
    fn subsumed_patterns_are_smaller() {
        let mdes = build_mdes();
        for c in &mdes.cfus {
            for s in &c.subsumed_patterns {
                assert!(s.node_count() < c.pattern.node_count());
            }
        }
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(Mdes::from_json("{не json").is_err());
    }

    #[test]
    fn lookup_by_id() {
        let mdes = build_mdes();
        let first = &mdes.cfus[0];
        assert_eq!(mdes.cfu(first.id).unwrap().name, first.name);
        assert!(mdes.cfu(9999).is_none());
    }
}
