//! The machine description (MDES): the contract between the hardware
//! compiler and the retargetable compiler.
//!
//! "The prioritized list of CFUs is converted in a machine description
//! (MDES) form that can be fed to the compiler" (§3). The MDES records,
//! for each custom function unit: the dataflow pattern it implements, its
//! pipelined latency, port counts, area, replacement priority, and —
//! because the compiler's generalized matching needs them — the contraction
//! closure of patterns the unit subsumes.
//!
//! The MDES serializes to JSON so a CFU set generated for one application
//! can be stored and reused to compile another (the cross-compilation
//! experiments of Figure 7).

use isax_graph::DiGraph;
use isax_hwlib::HwLibrary;
use isax_ir::DfgLabel;
use isax_select::{contraction_closure, CfuCandidate, Selection};
use serde::{Deserialize, Serialize};

/// One custom function unit in the machine description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CfuSpec {
    /// Identifier; `Opcode::Custom(id)` instructions reference the unit.
    pub id: u16,
    /// Human-readable name (sorted mnemonics, e.g. `"add-and-shl"`).
    pub name: String,
    /// The exact dataflow pattern the hardware implements.
    pub pattern: DiGraph<DfgLabel>,
    /// Pipelined execution latency in cycles.
    pub latency: u32,
    /// Die area in adder units.
    pub area: f64,
    /// Register read ports.
    pub inputs: u8,
    /// Register write ports.
    pub outputs: u8,
    /// Replacement priority (0 = replace first) — the selection order.
    pub priority: usize,
    /// Estimated cycle savings recorded at selection time.
    pub estimated_value: u64,
    /// Patterns this unit can also execute by feeding identity constants
    /// (the contraction closure), used by subsumed matching.
    pub subsumed_patterns: Vec<DiGraph<DfgLabel>>,
}

/// A complete machine description: the baseline VLIW plus the CFU set.
///
/// # Example
///
/// ```
/// use isax_compiler::Mdes;
///
/// let mdes = Mdes::baseline();
/// assert!(mdes.cfus.is_empty());
/// let json = mdes.to_json().unwrap();
/// let back = Mdes::from_json(&json).unwrap();
/// assert_eq!(mdes, back);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mdes {
    /// The custom function units, in priority order.
    pub cfus: Vec<CfuSpec>,
    /// Machine-wide register read port limit for custom instructions.
    pub max_inputs: u8,
    /// Machine-wide register write port limit for custom instructions.
    pub max_outputs: u8,
    /// Name of the application the CFUs were generated for (reporting).
    pub source_app: String,
}

impl Mdes {
    /// The baseline machine: no custom function units.
    pub fn baseline() -> Self {
        Mdes {
            cfus: Vec::new(),
            max_inputs: 5,
            max_outputs: 3,
            source_app: String::new(),
        }
    }

    /// Builds the MDES from a selection over combined candidates.
    ///
    /// `closure_cap` bounds the subsumed-pattern list per CFU (see
    /// [`isax_select::contraction_closure`]).
    pub fn from_selection(
        source_app: &str,
        cands: &[CfuCandidate],
        selection: &Selection,
        hw: &HwLibrary,
        closure_cap: usize,
    ) -> Self {
        let _ = hw; // latency is already folded into the candidates
        let cfus = selection
            .chosen
            .iter()
            .enumerate()
            .map(|(i, sc)| {
                let c = &cands[sc.candidate];
                CfuSpec {
                    id: i as u16,
                    name: c.describe(),
                    pattern: c.pattern.clone(),
                    latency: c.hw_cycles,
                    area: c.area,
                    inputs: c.inputs.min(255) as u8,
                    outputs: c.outputs.min(255) as u8,
                    priority: sc.priority,
                    estimated_value: sc.estimated_value,
                    subsumed_patterns: contraction_closure(&c.pattern, closure_cap),
                }
            })
            .collect();
        Mdes {
            cfus,
            max_inputs: 5,
            max_outputs: 3,
            source_app: source_app.to_string(),
        }
    }

    /// Looks up a CFU by id.
    pub fn cfu(&self, id: u16) -> Option<&CfuSpec> {
        self.cfus.iter().find(|c| c.id == id)
    }

    /// Total area of the CFU set (undiscounted sum).
    pub fn total_area(&self) -> f64 {
        self.cfus.iter().map(|c| c.area).sum()
    }

    /// Serializes to JSON.
    ///
    /// # Errors
    ///
    /// Propagates serializer failures (none are expected for this type).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses from JSON.
    ///
    /// # Errors
    ///
    /// Returns the parse error for malformed input.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isax_explore::{explore_app, ExploreConfig};
    use isax_ir::{function_dfgs, FunctionBuilder};
    use isax_select::{combine, select_greedy, SelectConfig};

    fn build_mdes() -> Mdes {
        let mut fb = FunctionBuilder::new("kern", 3);
        fb.set_entry_weight(1000);
        let (a, b, k) = (fb.param(0), fb.param(1), fb.param(2));
        let t = fb.xor(a, k);
        let u = fb.shl(t, 5i64);
        let v = fb.add(u, b);
        let w = fb.and(v, 0xFFi64);
        fb.ret(&[w.into()]);
        let dfgs = function_dfgs(&fb.finish());
        let hw = HwLibrary::micron_018();
        let found = explore_app(&dfgs, &hw, &ExploreConfig::default());
        let cfus = combine(&dfgs, &found.candidates, &hw);
        let sel = select_greedy(&cfus, &SelectConfig::with_budget(8.0));
        Mdes::from_selection("kern", &cfus, &sel, &hw, 64)
    }

    #[test]
    fn selection_order_becomes_priority() {
        let mdes = build_mdes();
        assert!(!mdes.cfus.is_empty());
        for (i, c) in mdes.cfus.iter().enumerate() {
            assert_eq!(c.priority, i);
            assert_eq!(c.id, i as u16);
        }
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let mdes = build_mdes();
        let json = mdes.to_json().unwrap();
        let back = Mdes::from_json(&json).unwrap();
        // Areas are floats; JSON round-trips them to the nearest shortest
        // representation, so compare them with a tolerance and everything
        // else exactly.
        assert_eq!(mdes.cfus.len(), back.cfus.len());
        for (a, b) in mdes.cfus.iter().zip(back.cfus.iter()) {
            assert!((a.area - b.area).abs() < 1e-9);
            assert_eq!(a.pattern, b.pattern);
            assert_eq!(a.subsumed_patterns, b.subsumed_patterns);
            assert_eq!(
                (a.id, &a.name, a.latency, a.inputs, a.outputs, a.priority, a.estimated_value),
                (b.id, &b.name, b.latency, b.inputs, b.outputs, b.priority, b.estimated_value)
            );
        }
        assert_eq!(back.source_app, "kern");
        // A second round-trip is exact: the parse already normalized.
        let json2 = back.to_json().unwrap();
        assert_eq!(Mdes::from_json(&json2).unwrap(), back);
    }

    #[test]
    fn subsumed_patterns_are_smaller() {
        let mdes = build_mdes();
        for c in &mdes.cfus {
            for s in &c.subsumed_patterns {
                assert!(s.node_count() < c.pattern.node_count());
            }
        }
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(Mdes::from_json("{не json").is_err());
    }

    #[test]
    fn lookup_by_id() {
        let mdes = build_mdes();
        let first = &mdes.cfus[0];
        assert_eq!(mdes.cfu(first.id).unwrap().name, first.name);
        assert!(mdes.cfu(9999).is_none());
    }
}
