//! If-conversion: folding branch diamonds and triangles into straight-line
//! code with `select` operations.
//!
//! The paper's §6 names relaxing the **control flow** restriction as
//! future work; in the Trimaran infrastructure the standard lever is
//! hyperblock formation. This pass implements the conservative core of
//! it: a two-sided diamond (`P → {T, F} → J`) or one-sided triangle
//! (`P → {T, J}`, `T → J`) whose conditional blocks are side-effect free
//! (no stores) and privately reachable (single predecessor) is merged
//! into `P`, with every conditionally defined register reconciled by a
//! `select` on the branch condition.
//!
//! The IR is not SSA, so both sides' definitions are first renamed to
//! fresh registers; the original names are then re-established by the
//! selects. Bigger blocks mean more combinable dataflow — branchy kernels
//! like mpeg2dec's clip and cjpeg's quantizer become CFU-eligible (the
//! `ifconvert_ablation` bench measures the effect).

use isax_ir::{BasicBlock, BlockId, Function, Inst, Opcode, Operand, Program, Terminator, VReg};
use std::collections::{BTreeMap, BTreeSet};

/// Limits for the transformation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IfConvertConfig {
    /// Maximum instructions a conditional side may hold (if-conversion
    /// executes both sides unconditionally, so large sides do not pay).
    pub max_side_insts: usize,
    /// Fixpoint iterations (nested diamonds collapse one level per pass).
    pub passes: usize,
}

impl Default for IfConvertConfig {
    fn default() -> Self {
        IfConvertConfig {
            max_side_insts: 12,
            passes: 3,
        }
    }
}

/// Statistics from a conversion run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IfConvertStats {
    /// Diamonds merged.
    pub diamonds: usize,
    /// Triangles merged.
    pub triangles: usize,
    /// `select` operations inserted.
    pub selects: usize,
}

/// A conditional side is convertible when it is straight-line compute:
/// no stores (they would need guarding), no custom ops (shape unknown)
/// and no divides (speculating a ten-cycle divider never pays).
fn side_convertible(b: &BasicBlock, cfg: &IfConvertConfig) -> bool {
    b.insts.len() <= cfg.max_side_insts
        && b.insts.iter().all(|i| {
            !i.opcode.is_store()
                && !i.opcode.is_custom()
                && !matches!(i.opcode, Opcode::Div | Opcode::Rem)
        })
}

/// Clones a side's instructions with every definition renamed to a fresh
/// register; returns the emitted instructions and the final name of each
/// originally defined register.
fn rename_side(b: &BasicBlock, next_reg: &mut u32) -> (Vec<Inst>, BTreeMap<VReg, VReg>) {
    let mut map: BTreeMap<VReg, VReg> = BTreeMap::new();
    let mut out = Vec::with_capacity(b.insts.len());
    for inst in &b.insts {
        let srcs = inst
            .srcs
            .iter()
            .map(|o| match o {
                Operand::Reg(r) => Operand::Reg(*map.get(r).unwrap_or(r)),
                imm => *imm,
            })
            .collect();
        let dsts = inst
            .dsts
            .iter()
            .map(|d| {
                let fresh = VReg(*next_reg);
                *next_reg += 1;
                map.insert(*d, fresh);
                fresh
            })
            .collect();
        out.push(Inst {
            opcode: inst.opcode,
            dsts,
            srcs,
        });
    }
    (out, map)
}

/// Runs if-conversion on one function until fixpoint (bounded by
/// `cfg.passes`).
pub fn if_convert_function(f: &Function, cfg: &IfConvertConfig) -> (Function, IfConvertStats) {
    let mut f = f.clone();
    let mut stats = IfConvertStats::default();
    for _ in 0..cfg.passes {
        if !convert_once(&mut f, cfg, &mut stats) {
            break;
        }
    }
    (f, stats)
}

/// One sweep; returns true when something was merged.
fn convert_once(f: &mut Function, cfg: &IfConvertConfig, stats: &mut IfConvertStats) -> bool {
    let liveness = f.liveness();
    let preds = f.predecessors();
    let single_pred = |b: BlockId, p: BlockId| preds[b.index()] == vec![p];
    let mut changed = false;
    for pi in 0..f.blocks.len() {
        let p = BlockId(pi as u32);
        let Terminator::Branch {
            cond,
            taken,
            not_taken,
        } = f.blocks[pi].term.clone()
        else {
            continue;
        };
        if taken == not_taken {
            // Degenerate branch: both arms identical.
            f.blocks[pi].term = Terminator::Jump(taken);
            changed = true;
            continue;
        }
        if taken == p || not_taken == p {
            continue; // self loop
        }
        let t = &f.blocks[taken.index()];
        let nt = &f.blocks[not_taken.index()];
        // Diamond: P -> {T, F}; T -> J; F -> J.
        if let (Terminator::Jump(jt), Terminator::Jump(jf)) = (&t.term, &nt.term) {
            if jt == jf
                && *jt != p
                && *jt != taken
                && *jt != not_taken
                && single_pred(taken, p)
                && single_pred(not_taken, p)
                && side_convertible(t, cfg)
                && side_convertible(nt, cfg)
            {
                let join = *jt;
                merge_diamond(
                    f,
                    p,
                    cond,
                    taken,
                    not_taken,
                    join,
                    &liveness.live_in[join.index()],
                    stats,
                );
                changed = true;
                continue;
            }
        }
        // Triangle: P -> {T, J}; T -> J (either orientation).
        for (side, join, side_is_taken) in [(taken, not_taken, true), (not_taken, taken, false)] {
            let sb = &f.blocks[side.index()];
            if let Terminator::Jump(j) = sb.term {
                if j == join
                    && j != p
                    && j != side
                    && single_pred(side, p)
                    && side_convertible(sb, cfg)
                {
                    merge_triangle(
                        f,
                        p,
                        cond,
                        side,
                        join,
                        side_is_taken,
                        &liveness.live_in[join.index()],
                        stats,
                    );
                    changed = true;
                    break;
                }
            }
        }
    }
    changed
}

fn retire_block(f: &mut Function, b: BlockId, join: BlockId) {
    // The block is unreachable after the merge; keep ids stable but make
    // it free: empty, weightless, jumping somewhere valid.
    let blk = &mut f.blocks[b.index()];
    blk.insts.clear();
    blk.weight = 0;
    blk.term = Terminator::Jump(join);
}

/// An operand for the "keep the incoming value" leg of a select. A
/// register never defined on the incoming path reads as zero under the
/// machine ABI (registers are zero-initialized), so materialize that.
fn incoming(f: &Function, sides: &[BlockId], r: VReg) -> Operand {
    let defined_before = f.params.contains(&r)
        || f.blocks
            .iter()
            .enumerate()
            .any(|(bi, b)| !sides.iter().any(|s| s.index() == bi) && b.defs().any(|d| d == r));
    if defined_before {
        Operand::Reg(r)
    } else {
        Operand::Imm(0)
    }
}

#[allow(clippy::too_many_arguments)]
fn merge_diamond(
    f: &mut Function,
    p: BlockId,
    cond: VReg,
    taken: BlockId,
    not_taken: BlockId,
    join: BlockId,
    live_at_join: &BTreeSet<VReg>,
    stats: &mut IfConvertStats,
) {
    let mut next_reg = f.vreg_count;
    let (t_insts, t_map) = rename_side(&f.blocks[taken.index()], &mut next_reg);
    let (f_insts, f_map) = rename_side(&f.blocks[not_taken.index()], &mut next_reg);
    // Reconcile the registers a side defines that are still needed at the
    // join; side-local temporaries need no select.
    let mut defined: Vec<VReg> = t_map.keys().chain(f_map.keys()).copied().collect();
    defined.sort_unstable();
    defined.dedup();
    defined.retain(|r| live_at_join.contains(r));
    let selects: Vec<Inst> = defined
        .iter()
        .map(|&r| {
            let tv = t_map
                .get(&r)
                .map(|&v| Operand::Reg(v))
                .unwrap_or_else(|| incoming(f, &[taken, not_taken], r));
            let fv = f_map
                .get(&r)
                .map(|&v| Operand::Reg(v))
                .unwrap_or_else(|| incoming(f, &[taken, not_taken], r));
            Inst::new(Opcode::Select, vec![r], vec![cond.into(), tv, fv])
        })
        .collect();
    let pb = &mut f.blocks[p.index()];
    pb.insts.extend(t_insts);
    pb.insts.extend(f_insts);
    stats.selects += selects.len();
    pb.insts.extend(selects);
    pb.term = Terminator::Jump(join);
    f.vreg_count = next_reg;
    retire_block(f, taken, join);
    retire_block(f, not_taken, join);
    stats.diamonds += 1;
}

#[allow(clippy::too_many_arguments)]
fn merge_triangle(
    f: &mut Function,
    p: BlockId,
    cond: VReg,
    side: BlockId,
    join: BlockId,
    side_is_taken: bool,
    live_at_join: &BTreeSet<VReg>,
    stats: &mut IfConvertStats,
) {
    let mut next_reg = f.vreg_count;
    let (s_insts, s_map) = rename_side(&f.blocks[side.index()], &mut next_reg);
    let selects: Vec<Inst> = s_map
        .iter()
        .filter(|(r, _)| live_at_join.contains(r))
        .map(|(&r, &rv)| {
            // On the through path the register keeps its incoming value.
            let through = incoming(f, &[side], r);
            let (tv, fv) = if side_is_taken {
                (Operand::Reg(rv), through)
            } else {
                (through, Operand::Reg(rv))
            };
            Inst::new(Opcode::Select, vec![r], vec![cond.into(), tv, fv])
        })
        .collect();
    let pb = &mut f.blocks[p.index()];
    pb.insts.extend(s_insts);
    stats.selects += selects.len();
    pb.insts.extend(selects);
    pb.term = Terminator::Jump(join);
    f.vreg_count = next_reg;
    retire_block(f, side, join);
    stats.triangles += 1;
}

/// If-converts every function of a program.
///
/// # Example
///
/// ```
/// use isax_compiler::ifconvert::{if_convert_program, IfConvertConfig};
/// use isax_ir::{FunctionBuilder, Program};
///
/// // v = |a| via a triangle.
/// let mut fb = FunctionBuilder::new("abs", 1);
/// let a = fb.param(0);
/// let flip = fb.new_block(40);
/// let join = fb.new_block(100);
/// let v = fb.fresh();
/// fb.copy_to(v, a);
/// let neg = fb.lt(a, 0i64);
/// fb.branch(neg, flip, join);
/// fb.switch_to(flip);
/// let n = fb.sub(0i64, a);
/// fb.copy_to(v, n);
/// fb.jump(join);
/// fb.switch_to(join);
/// fb.ret(&[v.into()]);
/// let p = Program::new(vec![fb.finish()]);
///
/// let (converted, stats) = if_convert_program(&p, &IfConvertConfig::default());
/// assert_eq!(stats.triangles, 1);
/// // The entry now ends in a jump, not a branch.
/// assert!(matches!(converted.functions[0].blocks[0].term,
///                  isax_ir::Terminator::Jump(_)));
/// ```
pub fn if_convert_program(p: &Program, cfg: &IfConvertConfig) -> (Program, IfConvertStats) {
    let mut stats = IfConvertStats::default();
    let functions = p
        .functions
        .iter()
        .map(|f| {
            let (nf, s) = if_convert_function(f, cfg);
            stats.diamonds += s.diamonds;
            stats.triangles += s.triangles;
            stats.selects += s.selects;
            nf
        })
        .collect();
    (
        Program {
            functions,
            cfu_semantics: p.cfu_semantics.clone(),
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use isax_ir::{verify_function, FunctionBuilder};

    /// max(a, b) via a diamond.
    fn diamond_max() -> Function {
        let mut fb = FunctionBuilder::new("max", 2);
        let (a, b) = (fb.param(0), fb.param(1));
        let yes = fb.new_block(60);
        let no = fb.new_block(40);
        let join = fb.new_block(100);
        let m = fb.fresh();
        let c = fb.gt(a, b);
        fb.branch(c, yes, no);
        fb.switch_to(yes);
        fb.copy_to(m, a);
        fb.jump(join);
        fb.switch_to(no);
        fb.copy_to(m, b);
        fb.jump(join);
        fb.switch_to(join);
        let r = fb.add(m, 1i64);
        fb.ret(&[r.into()]);
        fb.finish()
    }

    #[test]
    fn diamond_becomes_selects() {
        let f = diamond_max();
        let (g, stats) = if_convert_function(&f, &IfConvertConfig::default());
        assert_eq!(stats.diamonds, 1);
        assert_eq!(stats.selects, 1);
        assert!(matches!(g.blocks[0].term, Terminator::Jump(_)));
        assert!(verify_function(&g).is_ok());
        // Semantics preserved.
        use isax_machine_equivalence::*;
        check_equivalent(&f, &g, &[[5, 9], [9, 5], [7, 7], [0, u32::MAX]]);
    }

    #[test]
    fn nested_diamonds_collapse_over_passes() {
        // clamp(v, lo, hi): two chained triangles.
        let mut fb = FunctionBuilder::new("clamp", 3);
        let (v, lo, hi) = (fb.param(0), fb.param(1), fb.param(2));
        let clip_lo = fb.new_block(10);
        let mid = fb.new_block(100);
        let clip_hi = fb.new_block(10);
        let join = fb.new_block(100);
        let out = fb.fresh();
        fb.copy_to(out, v);
        let below = fb.lt(v, lo);
        fb.branch(below, clip_lo, mid);
        fb.switch_to(clip_lo);
        fb.copy_to(out, lo);
        fb.jump(mid);
        fb.switch_to(mid);
        let above = fb.gt(out, hi);
        fb.branch(above, clip_hi, join);
        fb.switch_to(clip_hi);
        fb.copy_to(out, hi);
        fb.jump(join);
        fb.switch_to(join);
        fb.ret(&[out.into()]);
        let f = fb.finish();

        let (g, stats) = if_convert_function(&f, &IfConvertConfig::default());
        assert_eq!(stats.triangles, 2);
        assert!(verify_function(&g).is_ok());
        use isax_machine_equivalence::*;
        check_equivalent(&f, &g, &[[5, 1, 9], [0, 3, 9], [20, 3, 9], [7, 7, 7]]);
    }

    #[test]
    fn stores_block_conversion() {
        let mut fb = FunctionBuilder::new("guarded", 2);
        let (p, v) = (fb.param(0), fb.param(1));
        let write = fb.new_block(10);
        let join = fb.new_block(100);
        let c = fb.ne(v, 0i64);
        fb.branch(c, write, join);
        fb.switch_to(write);
        fb.stw(p, v); // side effect: must not be speculated
        fb.jump(join);
        fb.switch_to(join);
        fb.ret(&[]);
        let f = fb.finish();
        let (g, stats) = if_convert_function(&f, &IfConvertConfig::default());
        assert_eq!(stats.triangles, 0);
        assert_eq!(g.blocks, f.blocks, "guarded store left untouched");
    }

    #[test]
    fn loops_are_left_alone() {
        let mut fb = FunctionBuilder::new("loop", 1);
        let n = fb.param(0);
        let body = fb.new_block(100);
        let exit = fb.new_block(1);
        fb.jump(body);
        fb.switch_to(body);
        let n1 = fb.sub(n, 1i64);
        fb.copy_to(n, n1);
        let c = fb.ne(n, 0i64);
        fb.branch(c, body, exit);
        fb.switch_to(exit);
        fb.ret(&[n.into()]);
        let f = fb.finish();
        let (g, stats) = if_convert_function(&f, &IfConvertConfig::default());
        assert_eq!(stats.diamonds + stats.triangles, 0);
        assert_eq!(g.blocks, f.blocks);
    }

    #[test]
    fn oversized_sides_are_skipped() {
        let mut fb = FunctionBuilder::new("big", 2);
        let (a, b) = (fb.param(0), fb.param(1));
        let side = fb.new_block(10);
        let join = fb.new_block(100);
        let r = fb.fresh();
        fb.copy_to(r, a);
        let c = fb.gt(a, b);
        fb.branch(c, side, join);
        fb.switch_to(side);
        let mut v = a;
        for _ in 0..20 {
            v = fb.add(v, 1i64);
        }
        fb.copy_to(r, v);
        fb.jump(join);
        fb.switch_to(join);
        fb.ret(&[r.into()]);
        let f = fb.finish();
        let (g, stats) = if_convert_function(
            &f,
            &IfConvertConfig {
                max_side_insts: 12,
                passes: 3,
            },
        );
        assert_eq!(stats.triangles, 0);
        assert_eq!(g.blocks, f.blocks);
    }

    /// Minimal interpreter-free equivalence harness (the compiler crate
    /// cannot depend on `isax-machine`): evaluate straight-line CFGs by
    /// walking blocks directly.
    mod isax_machine_equivalence {
        use super::*;

        fn exec(f: &Function, args: &[u32]) -> Vec<u32> {
            let mut regs = vec![0u32; f.vreg_count as usize];
            for (p, &a) in f.params.iter().zip(args) {
                regs[p.index()] = a;
            }
            let mut b = BlockId(0);
            for _ in 0..10_000 {
                for inst in &f.blocks[b.index()].insts {
                    let vals: Vec<u32> = inst
                        .srcs
                        .iter()
                        .map(|o| match o {
                            Operand::Reg(r) => regs[r.index()],
                            Operand::Imm(v) => *v as u32,
                        })
                        .collect();
                    regs[inst.dsts[0].index()] = isax_ir::eval(inst.opcode, &vals);
                }
                match &f.blocks[b.index()].term {
                    Terminator::Jump(t) => b = *t,
                    Terminator::Branch {
                        cond,
                        taken,
                        not_taken,
                    } => {
                        b = if regs[cond.index()] != 0 {
                            *taken
                        } else {
                            *not_taken
                        };
                    }
                    Terminator::Ret(vals) => {
                        return vals
                            .iter()
                            .map(|o| match o {
                                Operand::Reg(r) => regs[r.index()],
                                Operand::Imm(v) => *v as u32,
                            })
                            .collect();
                    }
                }
            }
            panic!("no termination");
        }

        pub fn check_equivalent<const N: usize>(f: &Function, g: &Function, cases: &[[u32; N]]) {
            for case in cases {
                assert_eq!(exec(f, case), exec(g, case), "inputs {case:?}");
            }
        }
    }
}
