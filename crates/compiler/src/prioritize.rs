//! Match prioritization and filtering.
//!
//! "The hardware compiler provides a desirability ordering on the CFUs so
//! that each operation is only assigned to the CFU that the hardware
//! compiler thinks can make the best use of it" (§4.1). Matches are
//! processed CFU-priority-first (selection order), best savings first
//! within a CFU; a match is accepted only when none of its operations has
//! been claimed by an earlier match.

use crate::matching::PatternMatch;
use crate::mdes::Mdes;
use crate::replace::supernodes_acyclic;
use isax_ir::Dfg;
use std::collections::HashSet;

/// Filters `matches` down to a non-overlapping, **jointly replaceable**
/// set, honouring the MDES priority order, then savings.
///
/// Beyond per-operation claiming, each accepted match must keep the
/// block's collapsed dependence graph acyclic together with the matches
/// accepted before it — two individually convex matches can otherwise
/// feed each other and deadlock the schedule.
///
/// The result is sorted by (block, first node) so replacement can proceed
/// block by block.
///
/// # Example
///
/// ```no_run
/// # use isax_compiler::{prioritize, Mdes};
/// # let matches = vec![];
/// # let mdes = Mdes::baseline();
/// # let dfgs: Vec<isax_ir::Dfg> = vec![];
/// let accepted = prioritize(matches, &mdes, &dfgs);
/// ```
pub fn prioritize(mut matches: Vec<PatternMatch>, mdes: &Mdes, dfgs: &[Dfg]) -> Vec<PatternMatch> {
    let priority_of = |cfu: u16| mdes.cfu(cfu).map(|c| c.priority).unwrap_or(usize::MAX);
    // Assignment tiers keep generalization from *displacing* perfect
    // fits: every exact match (of any CFU) outranks every wildcarded
    // match, which outranks every subsumed match. §3.4 describes the
    // failure this prevents — "attributing operations to small subsumed
    // portions of a large CFU, when much more performance could have been
    // gained by attributing them to a separate CFU".
    let tier = |m: &PatternMatch| -> u8 {
        match (m.via_subsumption, m.is_exact) {
            (false, true) => 0,
            (false, false) => 1,
            (true, _) => 2,
        }
    };
    matches.sort_by(|a, b| {
        tier(a)
            .cmp(&tier(b))
            .then(priority_of(a.cfu).cmp(&priority_of(b.cfu)))
            .then(b.savings.cmp(&a.savings))
            .then(a.block.cmp(&b.block))
            .then(a.nodes.cmp(&b.nodes))
    });
    let mut claimed: HashSet<(usize, usize)> = HashSet::new();
    let mut accepted: Vec<PatternMatch> = Vec::new();
    for m in matches {
        if !m.nodes.iter().all(|n| !claimed.contains(&(m.block, n))) {
            continue;
        }
        // Joint feasibility with the matches already accepted in this
        // block.
        let mut groups: Vec<&isax_graph::BitSet> = accepted
            .iter()
            .filter(|a| a.block == m.block)
            .map(|a| &a.nodes)
            .collect();
        groups.push(&m.nodes);
        if !supernodes_acyclic(&dfgs[m.block], &groups) {
            continue;
        }
        for n in m.nodes.iter() {
            claimed.insert((m.block, n));
        }
        accepted.push(m);
    }
    accepted.sort_by(|a, b| {
        a.block
            .cmp(&b.block)
            .then(a.nodes.iter().next().cmp(&b.nodes.iter().next()))
    });
    accepted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mdes::CfuSpec;
    use isax_graph::{BitSet, DiGraph};
    use isax_ir::{DfgLabel, Opcode};

    fn spec(id: u16, priority: usize) -> CfuSpec {
        let mut pattern = DiGraph::new();
        pattern.add_node(DfgLabel {
            opcode: Opcode::Add,
            imms: vec![],
        });
        CfuSpec {
            id,
            name: format!("cfu{id}"),
            pattern,
            latency: 1,
            area: 1.0,
            inputs: 2,
            outputs: 1,
            priority,
            estimated_value: 0,
            subsumed_patterns: vec![],
        }
    }

    fn mk_match(cfu: u16, block: usize, nodes: &[usize], savings: u64, sub: bool) -> PatternMatch {
        PatternMatch {
            cfu,
            block,
            nodes: nodes.iter().copied().collect::<BitSet>(),
            mapping: nodes.to_vec(),
            pattern: DiGraph::new(),
            via_subsumption: sub,
            is_exact: true,
            savings,
        }
    }

    /// DFGs with `blocks` blocks of `n` independent adds each — enough
    /// structure to satisfy the joint-feasibility check without creating
    /// dependences between matches.
    fn dummy_dfgs(blocks: usize, n: usize) -> Vec<Dfg> {
        let mut fb = isax_ir::FunctionBuilder::new("dummy", 2);
        let (a, b) = (fb.param(0), fb.param(1));
        let mut ids = Vec::new();
        for bi in 1..blocks {
            ids.push(fb.new_block(1));
            let _ = bi;
        }
        for _ in 0..n {
            let _ = fb.add(a, b);
        }
        if let Some(&first) = ids.first() {
            fb.jump(first);
        } else {
            fb.ret(&[]);
        }
        for (k, &id) in ids.iter().enumerate() {
            fb.switch_to(id);
            for _ in 0..n {
                let _ = fb.add(a, b);
            }
            if let Some(&next) = ids.get(k + 1) {
                fb.jump(next);
            } else {
                fb.ret(&[]);
            }
        }
        isax_ir::function_dfgs(&fb.finish())
    }

    fn mdes2() -> Mdes {
        Mdes {
            cfus: vec![spec(0, 0), spec(1, 1)],
            max_inputs: 5,
            max_outputs: 3,
            source_app: "t".into(),
        }
    }

    #[test]
    fn higher_priority_cfu_wins_overlap() {
        let m = vec![
            mk_match(1, 0, &[1, 2], 1_000_000, false), // low priority, huge savings
            mk_match(0, 0, &[2, 3], 10, false),        // high priority
        ];
        let acc = prioritize(m, &mdes2(), &dummy_dfgs(2, 8));
        assert_eq!(acc.len(), 1);
        assert_eq!(acc[0].cfu, 0, "priority order beats raw savings");
    }

    #[test]
    fn within_cfu_best_savings_first() {
        let m = vec![
            mk_match(0, 0, &[1, 2], 10, false),
            mk_match(0, 0, &[2, 3], 90, false),
        ];
        let acc = prioritize(m, &mdes2(), &dummy_dfgs(2, 8));
        assert_eq!(acc.len(), 1);
        assert_eq!(acc[0].savings, 90);
    }

    #[test]
    fn exact_beats_subsumed_within_cfu() {
        let m = vec![
            mk_match(0, 0, &[1, 2], 100, true),
            mk_match(0, 0, &[2, 3], 50, false),
        ];
        let acc = prioritize(m, &mdes2(), &dummy_dfgs(2, 8));
        assert_eq!(acc.len(), 1);
        assert!(!acc[0].via_subsumption);
    }

    #[test]
    fn disjoint_matches_all_accepted_and_block_sorted() {
        let m = vec![
            mk_match(0, 1, &[5, 6], 10, false),
            mk_match(0, 0, &[1, 2], 10, false),
            mk_match(1, 0, &[3, 4], 10, false),
        ];
        let acc = prioritize(m, &mdes2(), &dummy_dfgs(2, 8));
        assert_eq!(acc.len(), 3);
        assert!(acc.windows(2).all(|w| w[0].block <= w[1].block));
    }

    #[test]
    fn overlap_across_cfus_in_different_blocks_is_fine() {
        let m = vec![
            mk_match(0, 0, &[1, 2], 10, false),
            mk_match(1, 1, &[1, 2], 10, false), // same node ids, other block
        ];
        let acc = prioritize(m, &mdes2(), &dummy_dfgs(2, 8));
        assert_eq!(acc.len(), 2);
    }
}
