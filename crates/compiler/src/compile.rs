//! The end-to-end compiler driver (Figure 5).
//!
//! "Given the assembly code and MDES, the compiler performs dataflow
//! analysis to generate a DFG, discovers all subgraphs in the DFG that
//! match available CFUs, prioritizes these matches, replaces the matches
//! with custom instructions, and finally performs the typical tasks of
//! register allocation and scheduling."

use crate::matching::{find_matches_with_stats, MatchOptions, MatchStats};
use crate::mdes::Mdes;
use crate::prioritize::prioritize;
use crate::regalloc::allocate_registers;
use crate::replace::{apply_matches, AppliedMatch};
use crate::schedule::{function_cycles, CustomInfo, CustomOpInfo, VliwModel};
use isax_hwlib::HwLibrary;
use isax_ir::{function_dfgs, Program};

/// Compiler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompileOptions {
    /// Matching generality (exact / subsumed / wildcard).
    pub matching: MatchOptions,
    /// Baseline machine shape.
    pub model: VliwModel,
}

/// A fully compiled program with its performance estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledProgram {
    /// The program after replacement (original program when compiled for
    /// the baseline). Custom-instruction semantics are registered inside.
    pub program: Program,
    /// Estimated cycles, Σ over blocks (schedule length × weight).
    pub cycles: u64,
    /// Per-function, per-block schedule lengths.
    pub block_cycles: Vec<Vec<u32>>,
    /// Scheduling facts (latency, cache-port reads) for the emitted
    /// custom opcodes.
    pub custom_info: CustomInfo,
    /// Every replacement performed.
    pub applied: Vec<AppliedMatch>,
    /// Registers spilled by the allocator (expected empty for the
    /// benchmark kernels; reported for honesty).
    pub spills: usize,
    /// Matcher work statistics, summed over all functions in input
    /// order (deterministic; see [`MatchStats`]).
    pub match_stats: MatchStats,
}

impl CompiledProgram {
    /// Replacements that used exact pattern matches.
    pub fn exact_matches(&self) -> usize {
        self.applied.iter().filter(|a| !a.via_subsumption).count()
    }

    /// Replacements that mapped subsumed (contracted) shapes.
    pub fn subsumed_matches(&self) -> usize {
        self.applied.iter().filter(|a| a.via_subsumption).count()
    }
}

/// Compiles a program against a machine description.
///
/// Passing [`Mdes::baseline`] yields the baseline measurement (no
/// replacement, same scheduler) — the denominator of every speedup in the
/// paper.
///
/// # Example
///
/// ```
/// use isax_compiler::{compile, CompileOptions, Mdes};
/// use isax_hwlib::HwLibrary;
/// use isax_ir::{FunctionBuilder, Program};
///
/// let mut fb = FunctionBuilder::new("f", 2);
/// let (a, b) = (fb.param(0), fb.param(1));
/// let t = fb.add(a, b);
/// fb.ret(&[t.into()]);
/// let p = Program::new(vec![fb.finish()]);
///
/// let hw = HwLibrary::micron_018();
/// let out = compile(&p, &Mdes::baseline(), &hw, &CompileOptions::default());
/// assert!(out.cycles >= 1);
/// assert!(out.applied.is_empty());
/// ```
pub fn compile(
    program: &Program,
    mdes: &Mdes,
    hw: &HwLibrary,
    opts: &CompileOptions,
) -> CompiledProgram {
    let mut out_program = Program::new(Vec::with_capacity(program.functions.len()));
    let mut custom_info: CustomInfo = CustomInfo::new();
    let mut applied = Vec::new();
    let mut sem_base: u16 = 0;
    let mut match_stats = MatchStats::default();
    for f in &program.functions {
        let dfgs = function_dfgs(f);
        let (matches, f_stats) = find_matches_with_stats(&dfgs, mdes, hw, &opts.matching);
        match_stats.merge(&f_stats);
        let accepted = {
            let _s = isax_trace::span("compile.prioritize");
            prioritize(matches, mdes, &dfgs)
        };
        let _s = isax_trace::span("compile.replace");
        let mut cf = apply_matches(f, &dfgs, &accepted, mdes, sem_base);
        sem_base = sem_base.max(
            cf.semantics
                .keys()
                .next_back()
                .map(|&k| k + 1)
                .unwrap_or(sem_base),
        );
        for (&id, sem) in &cf.semantics {
            custom_info.insert(
                id,
                CustomOpInfo {
                    latency: cf.sem_latency.get(&id).copied().unwrap_or(1),
                    mem_reads: sem.load_count(),
                },
            );
        }
        out_program
            .cfu_semantics
            .append(&mut std::mem::take(&mut cf.semantics));
        applied.extend(cf.applied);
        out_program.functions.push(cf.function);
    }
    // Schedule + allocate. Functions are independent once replacement
    // has run, so they are processed in parallel and the per-function
    // results folded in input order (identical to the serial loop).
    let _sched = isax_trace::span("compile.schedule");
    let per_function = isax_graph::par::par_map(&out_program.functions, |f| {
        let (c, per_block) = function_cycles(f, hw, &custom_info, &opts.model);
        let spilled = allocate_registers(f).spilled.len();
        (c, per_block, spilled)
    });
    let mut cycles = 0u64;
    let mut block_cycles = Vec::new();
    let mut spills = 0usize;
    for (c, per_block, spilled) in per_function {
        cycles += c;
        block_cycles.push(per_block);
        spills += spilled;
    }
    CompiledProgram {
        program: out_program,
        cycles,
        block_cycles,
        custom_info,
        applied,
        spills,
        match_stats,
    }
}

/// Convenience: baseline cycle count of a program.
pub fn baseline_cycles(program: &Program, hw: &HwLibrary, model: &VliwModel) -> u64 {
    compile(
        program,
        &Mdes::baseline(),
        hw,
        &CompileOptions {
            matching: MatchOptions::exact(),
            model: *model,
        },
    )
    .cycles
}

/// Speedup of `custom` relative to `baseline` cycle counts.
pub fn speedup(baseline: u64, custom: u64) -> f64 {
    if custom == 0 {
        1.0
    } else {
        baseline as f64 / custom as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isax_explore::{explore_app, ExploreConfig};
    use isax_ir::{verify_program, FunctionBuilder};
    use isax_select::{combine, select_greedy, SelectConfig};

    fn hw() -> HwLibrary {
        HwLibrary::micron_018()
    }

    /// Build an app + its own MDES at the given budget.
    fn app_and_mdes(budget: f64) -> (Program, Mdes) {
        let mut fb = FunctionBuilder::new("kern", 3);
        fb.set_entry_weight(10_000);
        let (a, b, k) = (fb.param(0), fb.param(1), fb.param(2));
        let t = fb.xor(a, k);
        let l = fb.shl(t, 5i64);
        let r = fb.shr(t, 27i64);
        let rot = fb.or(l, r);
        let s = fb.add(rot, b);
        let u = fb.and(s, 0xFFFFi64);
        fb.ret(&[u.into()]);
        let p = Program::new(vec![fb.finish()]);
        let dfgs = function_dfgs(&p.functions[0]);
        let found = explore_app(&dfgs, &hw(), &ExploreConfig::default());
        let cfus = combine(&dfgs, &found.candidates, &hw());
        let sel = select_greedy(&cfus, &SelectConfig::with_budget(budget));
        let mdes = Mdes::from_selection("kern", &cfus, &sel, &hw(), 64);
        (p, mdes)
    }

    #[test]
    fn customization_accelerates_the_kernel() {
        let (p, mdes) = app_and_mdes(15.0);
        let base = baseline_cycles(&p, &hw(), &VliwModel::default());
        let custom = compile(&p, &mdes, &hw(), &CompileOptions::default());
        assert!(verify_program(&custom.program).is_ok());
        assert!(
            custom.cycles < base,
            "custom {} must beat baseline {}",
            custom.cycles,
            base
        );
        let s = speedup(base, custom.cycles);
        assert!(s > 1.3, "expected a solid speedup, got {s:.2}");
        assert!(!custom.applied.is_empty());
        assert_eq!(custom.spills, 0);
    }

    #[test]
    fn baseline_compile_is_identity_on_code() {
        let (p, _) = app_and_mdes(15.0);
        let out = compile(&p, &Mdes::baseline(), &hw(), &CompileOptions::default());
        assert_eq!(out.program.functions[0].blocks, p.functions[0].blocks);
        assert!(out.applied.is_empty());
    }

    #[test]
    fn bigger_budget_never_slows_the_program() {
        let budgets = [1.0, 2.0, 4.0, 8.0, 15.0];
        let mut last = u64::MAX;
        for &b in &budgets {
            let (p, mdes) = app_and_mdes(b);
            let out = compile(&p, &mdes, &hw(), &CompileOptions::default());
            assert!(
                out.cycles <= last || out.cycles.abs_diff(last) <= 1,
                "budget {b}: {} vs previous {}",
                out.cycles,
                last
            );
            last = last.min(out.cycles);
        }
    }

    #[test]
    fn semantic_ids_are_unique_across_functions() {
        let mk = |name: &str| {
            let mut fb = FunctionBuilder::new(name, 3);
            fb.set_entry_weight(100);
            let (a, b, c) = (fb.param(0), fb.param(1), fb.param(2));
            let t = fb.and(a, b);
            let u = fb.add(t, c);
            fb.ret(&[u.into()]);
            fb.finish()
        };
        let p = Program::new(vec![mk("f"), mk("g")]);
        let dfgs = function_dfgs(&p.functions[0]);
        let found = explore_app(&dfgs, &hw(), &ExploreConfig::default());
        let cfus = combine(&dfgs, &found.candidates, &hw());
        let sel = select_greedy(&cfus, &SelectConfig::with_budget(4.0));
        let mdes = Mdes::from_selection("f", &cfus, &sel, &hw(), 16);
        let out = compile(&p, &mdes, &hw(), &CompileOptions::default());
        assert!(verify_program(&out.program).is_ok());
        assert!(out.applied.len() >= 2, "both functions got replacements");
    }
}
