//! The end-to-end compiler driver (Figure 5).
//!
//! "Given the assembly code and MDES, the compiler performs dataflow
//! analysis to generate a DFG, discovers all subgraphs in the DFG that
//! match available CFUs, prioritizes these matches, replaces the matches
//! with custom instructions, and finally performs the typical tasks of
//! register allocation and scheduling."

use crate::matching::{find_matches_guarded_with_stats, MatchOptions, MatchStats};
use crate::mdes::Mdes;
use crate::prioritize::prioritize;
use crate::regalloc::allocate_registers;
use crate::replace::{apply_matches, AppliedMatch};
use crate::schedule::{
    function_cycles, function_cycles_metered, sequential_function_cycles, CustomInfo, CustomOpInfo,
    VliwModel,
};
use isax_guard::{Degradation, Guard, Stage};
use isax_hwlib::HwLibrary;
use isax_ir::{function_dfgs, Program};

/// Compiler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompileOptions {
    /// Matching generality (exact / subsumed / wildcard).
    pub matching: MatchOptions,
    /// Baseline machine shape.
    pub model: VliwModel,
}

/// A fully compiled program with its performance estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledProgram {
    /// The program after replacement (original program when compiled for
    /// the baseline). Custom-instruction semantics are registered inside.
    pub program: Program,
    /// Estimated cycles, Σ over blocks (schedule length × weight).
    pub cycles: u64,
    /// Per-function, per-block schedule lengths.
    pub block_cycles: Vec<Vec<u32>>,
    /// Scheduling facts (latency, cache-port reads) for the emitted
    /// custom opcodes.
    pub custom_info: CustomInfo,
    /// Every replacement performed.
    pub applied: Vec<AppliedMatch>,
    /// Registers spilled by the allocator (expected empty for the
    /// benchmark kernels; reported for honesty).
    pub spills: usize,
    /// Matcher work statistics, summed over all functions in input
    /// order (deterministic; see [`MatchStats`]).
    pub match_stats: MatchStats,
    /// Governance events: every stage that returned a truncated-but-sound
    /// partial result (budget/deadline exhaustion) or was replaced by a
    /// fallback after a contained worker panic. Empty whenever the guard
    /// is inactive — the default — and for unconstrained runs.
    pub degradations: Vec<Degradation>,
    /// Provenance events (`Matched`/`Replaced`, keyed by the CFU
    /// pattern's canonical fingerprint), non-empty only when
    /// [`isax_prov::enabled`] is set. Collected per function in input
    /// order, so the log is thread-count-invariant.
    pub prov: isax_prov::ProvLog,
}

impl CompiledProgram {
    /// Replacements that used exact pattern matches.
    pub fn exact_matches(&self) -> usize {
        self.applied.iter().filter(|a| !a.via_subsumption).count()
    }

    /// Replacements that mapped subsumed (contracted) shapes.
    pub fn subsumed_matches(&self) -> usize {
        self.applied.iter().filter(|a| a.via_subsumption).count()
    }
}

/// Compiles a program against a machine description.
///
/// Passing [`Mdes::baseline`] yields the baseline measurement (no
/// replacement, same scheduler) — the denominator of every speedup in the
/// paper.
///
/// # Example
///
/// ```
/// use isax_compiler::{compile, CompileOptions, Mdes};
/// use isax_hwlib::HwLibrary;
/// use isax_ir::{FunctionBuilder, Program};
///
/// let mut fb = FunctionBuilder::new("f", 2);
/// let (a, b) = (fb.param(0), fb.param(1));
/// let t = fb.add(a, b);
/// fb.ret(&[t.into()]);
/// let p = Program::new(vec![fb.finish()]);
///
/// let hw = HwLibrary::micron_018();
/// let out = compile(&p, &Mdes::baseline(), &hw, &CompileOptions::default());
/// assert!(out.cycles >= 1);
/// assert!(out.applied.is_empty());
/// ```
pub fn compile(
    program: &Program,
    mdes: &Mdes,
    hw: &HwLibrary,
    opts: &CompileOptions,
) -> CompiledProgram {
    compile_guarded(program, mdes, hw, opts, &Guard::unlimited())
}

/// [`compile`] under a resource [`Guard`].
///
/// With an inactive guard (no budget, no deadline, no fault plan) this is
/// byte-for-byte the unguarded compiler — the guarded code paths are not
/// even entered. With an active guard, matching and scheduling run under
/// per-item work meters and worker panics are contained:
///
/// * **match** exhaustion truncates a job's embedding enumeration; the
///   matches found so far are kept (fewer replacements, never wrong ones);
/// * **schedule** exhaustion or a panic falls back to the deterministic
///   [`sequential_function_cycles`] schedule for the whole function;
///
/// each event is recorded in [`CompiledProgram::degradations`].
pub fn compile_guarded(
    program: &Program,
    mdes: &Mdes,
    hw: &HwLibrary,
    opts: &CompileOptions,
    guard: &Guard,
) -> CompiledProgram {
    let mut out_program = Program::new(Vec::with_capacity(program.functions.len()));
    let mut custom_info: CustomInfo = CustomInfo::new();
    let mut applied = Vec::new();
    let mut sem_base: u16 = 0;
    let mut match_stats = MatchStats::default();
    let mut degradations: Vec<Degradation> = Vec::new();
    let mut prov = isax_prov::ProvLog::default();
    let prov_on = isax_prov::enabled();
    // Provenance keys CFUs by the canonical fingerprint of their pattern
    // — the same identity exploration and combination used — so a
    // report's explore/select/compile events line up per candidate.
    let cfu_fps: Vec<u64> = if prov_on {
        mdes.cfus
            .iter()
            .map(|c| isax_select::pattern_fingerprint(&c.pattern).0)
            .collect()
    } else {
        Vec::new()
    };
    for f in &program.functions {
        let dfgs = function_dfgs(f);
        let (matches, f_stats, f_degr) =
            find_matches_guarded_with_stats(&dfgs, mdes, hw, &opts.matching, guard);
        match_stats.merge(&f_stats);
        degradations.extend(f_degr.into_iter().map(|mut d| {
            d.detail = format!("fn {}: {}", f.name, d.detail);
            d
        }));
        if prov_on {
            // One `Matched` event per (cfu, block): the count of legal
            // pre-prioritization matches the VF2 pass found there.
            let mut counts: std::collections::BTreeMap<(u16, usize), u64> =
                std::collections::BTreeMap::new();
            for m in &matches {
                *counts.entry((m.cfu, m.block)).or_insert(0) += 1;
            }
            for ((cfu, block), count) in counts {
                prov.record(
                    cfu_fps[cfu as usize],
                    isax_prov::ProvEvent::Matched {
                        function: f.name.clone(),
                        block,
                        count,
                    },
                );
            }
        }
        let accepted = {
            let _s = isax_trace::span("compile.prioritize");
            prioritize(matches, mdes, &dfgs)
        };
        let _s = isax_trace::span("compile.replace");
        let mut cf = apply_matches(f, &dfgs, &accepted, mdes, sem_base);
        if prov_on {
            for a in &cf.applied {
                // `savings` is weight × (sw_latency − cfu_latency), so
                // before = after + savings reconstructs the weighted
                // software cost of the replaced operations.
                let latency = u64::from(mdes.cfu(a.cfu).map(|c| c.latency).unwrap_or(1));
                let cycles_after = dfgs[a.block].weight() * latency;
                prov.record(
                    cfu_fps[a.cfu as usize],
                    isax_prov::ProvEvent::Replaced {
                        function: f.name.clone(),
                        block: a.block,
                        cycles_before: cycles_after + a.savings,
                        cycles_after,
                    },
                );
            }
        }
        sem_base = sem_base.max(
            cf.semantics
                .keys()
                .next_back()
                .map(|&k| k + 1)
                .unwrap_or(sem_base),
        );
        for (&id, sem) in &cf.semantics {
            custom_info.insert(
                id,
                CustomOpInfo {
                    latency: cf.sem_latency.get(&id).copied().unwrap_or(1),
                    mem_reads: sem.load_count(),
                },
            );
        }
        out_program
            .cfu_semantics
            .append(&mut std::mem::take(&mut cf.semantics));
        applied.extend(cf.applied);
        out_program.functions.push(cf.function);
    }
    // Schedule + allocate. Functions are independent once replacement
    // has run, so they are processed in parallel and the per-function
    // results folded in input order (identical to the serial loop).
    let _sched = isax_trace::span("compile.schedule");
    let mut cycles = 0u64;
    let mut block_cycles = Vec::new();
    let mut spills = 0usize;
    if guard.is_active() {
        // Governed path: per-function meters (item = function index, so
        // accounting is identical at any thread count) and panic
        // containment. A function whose meter exhausts — or whose worker
        // panics — is rescheduled with the sequential fallback on the
        // joining thread.
        let per_function =
            isax_graph::par::par_try_map_indexed(out_program.functions.len(), |fi| {
                let f = &out_program.functions[fi];
                let mut meter = guard.meter(Stage::Schedule, fi as u64);
                let (c, per_block, degraded) =
                    function_cycles_metered(f, hw, &custom_info, &opts.model, &mut meter);
                let spilled = allocate_registers(f).spilled.len();
                let degr = if degraded {
                    meter.degradation(format!(
                        "fn {}: list scheduler stopped; whole function rescheduled sequentially",
                        f.name
                    ))
                } else {
                    None
                };
                (c, per_block, spilled, degr)
            });
        for (fi, r) in per_function.into_iter().enumerate() {
            match r {
                Ok((c, per_block, spilled, degr)) => {
                    cycles += c;
                    block_cycles.push(per_block);
                    spills += spilled;
                    degradations.extend(degr);
                }
                Err(e) => {
                    let f = &out_program.functions[fi];
                    let (c, per_block) = sequential_function_cycles(f, hw, &custom_info);
                    let spilled = allocate_registers(f).spilled.len();
                    cycles += c;
                    block_cycles.push(per_block);
                    spills += spilled;
                    let detail = format!("fn {}: {}", f.name, e.message);
                    degradations.push(if e.cancelled {
                        Degradation::cancelled(Stage::Schedule, fi as u64, detail)
                    } else {
                        Degradation::panicked(Stage::Schedule, fi as u64, detail)
                    });
                }
            }
        }
    } else {
        let per_function = isax_graph::par::par_map(&out_program.functions, |f| {
            let (c, per_block) = function_cycles(f, hw, &custom_info, &opts.model);
            let spilled = allocate_registers(f).spilled.len();
            (c, per_block, spilled)
        });
        for (c, per_block, spilled) in per_function {
            cycles += c;
            block_cycles.push(per_block);
            spills += spilled;
        }
    }
    CompiledProgram {
        program: out_program,
        cycles,
        block_cycles,
        custom_info,
        applied,
        spills,
        match_stats,
        degradations,
        prov,
    }
}

/// Convenience: baseline cycle count of a program.
pub fn baseline_cycles(program: &Program, hw: &HwLibrary, model: &VliwModel) -> u64 {
    compile(
        program,
        &Mdes::baseline(),
        hw,
        &CompileOptions {
            matching: MatchOptions::exact(),
            model: *model,
        },
    )
    .cycles
}

/// Speedup of `custom` relative to `baseline` cycle counts.
pub fn speedup(baseline: u64, custom: u64) -> f64 {
    if custom == 0 {
        1.0
    } else {
        baseline as f64 / custom as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isax_explore::{explore_app, ExploreConfig};
    use isax_guard::DegradationKind;
    use isax_ir::{verify_program, FunctionBuilder};
    use isax_select::{combine, select_greedy, SelectConfig};

    fn hw() -> HwLibrary {
        HwLibrary::micron_018()
    }

    /// Build an app + its own MDES at the given budget.
    fn app_and_mdes(budget: f64) -> (Program, Mdes) {
        let mut fb = FunctionBuilder::new("kern", 3);
        fb.set_entry_weight(10_000);
        let (a, b, k) = (fb.param(0), fb.param(1), fb.param(2));
        let t = fb.xor(a, k);
        let l = fb.shl(t, 5i64);
        let r = fb.shr(t, 27i64);
        let rot = fb.or(l, r);
        let s = fb.add(rot, b);
        let u = fb.and(s, 0xFFFFi64);
        fb.ret(&[u.into()]);
        let p = Program::new(vec![fb.finish()]);
        let dfgs = function_dfgs(&p.functions[0]);
        let found = explore_app(&dfgs, &hw(), &ExploreConfig::default());
        let cfus = combine(&dfgs, &found.candidates, &hw());
        let sel = select_greedy(&cfus, &SelectConfig::with_budget(budget));
        let mdes = Mdes::from_selection("kern", &cfus, &sel, &hw(), 64);
        (p, mdes)
    }

    #[test]
    fn customization_accelerates_the_kernel() {
        let (p, mdes) = app_and_mdes(15.0);
        let base = baseline_cycles(&p, &hw(), &VliwModel::default());
        let custom = compile(&p, &mdes, &hw(), &CompileOptions::default());
        assert!(verify_program(&custom.program).is_ok());
        assert!(
            custom.cycles < base,
            "custom {} must beat baseline {}",
            custom.cycles,
            base
        );
        let s = speedup(base, custom.cycles);
        assert!(s > 1.3, "expected a solid speedup, got {s:.2}");
        assert!(!custom.applied.is_empty());
        assert_eq!(custom.spills, 0);
    }

    #[test]
    fn baseline_compile_is_identity_on_code() {
        let (p, _) = app_and_mdes(15.0);
        let out = compile(&p, &Mdes::baseline(), &hw(), &CompileOptions::default());
        assert_eq!(out.program.functions[0].blocks, p.functions[0].blocks);
        assert!(out.applied.is_empty());
    }

    #[test]
    fn bigger_budget_never_slows_the_program() {
        let budgets = [1.0, 2.0, 4.0, 8.0, 15.0];
        let mut last = u64::MAX;
        for &b in &budgets {
            let (p, mdes) = app_and_mdes(b);
            let out = compile(&p, &mdes, &hw(), &CompileOptions::default());
            assert!(
                out.cycles <= last || out.cycles.abs_diff(last) <= 1,
                "budget {b}: {} vs previous {}",
                out.cycles,
                last
            );
            last = last.min(out.cycles);
        }
    }

    #[test]
    fn inactive_guard_compiles_identically() {
        let (p, mdes) = app_and_mdes(15.0);
        let plain = compile(&p, &mdes, &hw(), &CompileOptions::default());
        let guarded = compile_guarded(
            &p,
            &mdes,
            &hw(),
            &CompileOptions::default(),
            &Guard::unlimited(),
        );
        assert_eq!(plain, guarded);
        assert!(plain.degradations.is_empty());
    }

    #[test]
    fn schedule_budget_exhaustion_degrades_to_sequential_and_is_recorded() {
        let (p, mdes) = app_and_mdes(15.0);
        let out = compile_guarded(
            &p,
            &mdes,
            &hw(),
            &CompileOptions::default(),
            &Guard::unlimited().with_units(2),
        );
        let sched: Vec<_> = out
            .degradations
            .iter()
            .filter(|d| d.stage == Stage::Schedule)
            .collect();
        assert_eq!(sched.len(), 1, "one function, one schedule degradation");
        assert_eq!(sched[0].item, 0);
        // The emitted cycle estimate is the deterministic sequential one.
        let (seq, _) =
            sequential_function_cycles(&out.program.functions[0], &hw(), &out.custom_info);
        assert_eq!(out.cycles, seq);
        assert!(verify_program(&out.program).is_ok());
    }

    #[test]
    fn injected_schedule_panic_is_contained_with_sequential_fallback() {
        use isax_guard::{DegradationKind, FaultKind, FaultPlan};
        let (p, mdes) = app_and_mdes(15.0);
        let guard = Guard::unlimited().with_fault(FaultPlan {
            stage: Stage::Schedule,
            kind: FaultKind::Panic,
            nth: 0,
        });
        let out = compile_guarded(&p, &mdes, &hw(), &CompileOptions::default(), &guard);
        assert_eq!(out.degradations.len(), 1);
        let d = &out.degradations[0];
        assert_eq!(d.stage, Stage::Schedule);
        assert_eq!(d.kind, DegradationKind::Panicked);
        assert!(d.detail.contains("injected panic"), "detail: {}", d.detail);
        let (seq, _) =
            sequential_function_cycles(&out.program.functions[0], &hw(), &out.custom_info);
        assert_eq!(out.cycles, seq);
    }

    #[test]
    fn match_budget_exhaustion_keeps_sound_prefix_of_matches() {
        let (p, mdes) = app_and_mdes(15.0);
        let full = compile(&p, &mdes, &hw(), &CompileOptions::default());
        // 1 VF2 state is never enough to finish any job: every job
        // degrades, zero matches survive, and the program compiles as if
        // for the baseline — sound, merely incomplete.
        let out = compile_guarded(
            &p,
            &mdes,
            &hw(),
            &CompileOptions::default(),
            &Guard::unlimited().with_units(1),
        );
        assert!(out
            .degradations
            .iter()
            .any(|d| d.stage == Stage::Match && d.kind == DegradationKind::BudgetExhausted));
        assert!(out.applied.len() <= full.applied.len());
        assert!(verify_program(&out.program).is_ok());
        assert!(
            out.cycles >= full.cycles,
            "fewer replacements never speed it up"
        );
    }

    #[test]
    fn semantic_ids_are_unique_across_functions() {
        let mk = |name: &str| {
            let mut fb = FunctionBuilder::new(name, 3);
            fb.set_entry_weight(100);
            let (a, b, c) = (fb.param(0), fb.param(1), fb.param(2));
            let t = fb.and(a, b);
            let u = fb.add(t, c);
            fb.ret(&[u.into()]);
            fb.finish()
        };
        let p = Program::new(vec![mk("f"), mk("g")]);
        let dfgs = function_dfgs(&p.functions[0]);
        let found = explore_app(&dfgs, &hw(), &ExploreConfig::default());
        let cfus = combine(&dfgs, &found.candidates, &hw());
        let sel = select_greedy(&cfus, &SelectConfig::with_budget(4.0));
        let mdes = Mdes::from_selection("f", &cfus, &sel, &hw(), 16);
        let out = compile(&p, &mdes, &hw(), &CompileOptions::default());
        assert!(verify_program(&out.program).is_ok());
        assert!(out.applied.len() >= 2, "both functions got replacements");
    }
}
