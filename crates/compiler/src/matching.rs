//! CFU pattern matching in application dataflow graphs.
//!
//! "Discovering the subgraphs in the DFG can be viewed as the subgraph
//! isomorphism problem ... To perform subgraph identification, the vflib
//! graph matching library is employed" (§4.1). Here the `isax-graph` VF2
//! engine plays vflib's role. Matching runs in three generality levels:
//!
//! * **exact** — node labels (opcode + hardwired immediates) must agree;
//! * **subsumed** — the contraction closure of each CFU is matched too and
//!   mapped onto the subsuming hardware (identity inputs);
//! * **wildcard** — node compatibility relaxes to opcode *classes*,
//!   modelling multifunction CFUs (Figures 8 and 9).
//!
//! Every reported match is convex (replaceable), within the machine's
//! port limits, and annotated with its estimated cycle savings.

use crate::mdes::Mdes;
use isax_graph::{canon, par, vf2, BitSet, DiGraph};
use isax_guard::{Degradation, Guard, Meter, Stage};
use isax_hwlib::HwLibrary;
use isax_ir::{Dfg, DfgLabel};
use std::collections::HashMap;
/// Node-compatibility level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatchMode {
    /// Opcode and immediates must match exactly.
    #[default]
    Exact,
    /// Opcode classes match (multifunction hardware); immediates
    /// generalize.
    Wildcard,
}

/// Matching configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MatchOptions {
    /// Node-compatibility level.
    pub mode: MatchMode,
    /// Also match each CFU's contraction closure (subsumed subgraphs).
    pub allow_subsumed: bool,
}

impl MatchOptions {
    /// Exact matching only — the baseline compiler configuration.
    pub fn exact() -> Self {
        MatchOptions::default()
    }

    /// Exact plus subsumed-subgraph matching.
    pub fn with_subsumed() -> Self {
        MatchOptions {
            mode: MatchMode::Exact,
            allow_subsumed: true,
        }
    }

    /// Opcode-class wildcards plus subsumed matching — the most general
    /// configuration in Figures 8/9.
    pub fn generalized() -> Self {
        MatchOptions {
            mode: MatchMode::Wildcard,
            allow_subsumed: true,
        }
    }
}

/// One legal occurrence of a CFU in a block's dataflow graph.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternMatch {
    /// The CFU this subgraph executes on.
    pub cfu: u16,
    /// Block index (within the function's DFG list).
    pub block: usize,
    /// Covered instruction indices.
    pub nodes: BitSet,
    /// `mapping[p]` = DFG node matched to pattern node `p`.
    pub mapping: Vec<usize>,
    /// The concrete pattern that matched (the CFU's own pattern or one of
    /// its contractions).
    pub pattern: DiGraph<DfgLabel>,
    /// True when the match came from the contraction closure.
    pub via_subsumption: bool,
    /// True when every matched node's label equals the pattern's exactly
    /// (a wildcard-mode match may happen to be exact; exact matches are
    /// preferred during prioritization so generalization never displaces
    /// a perfect fit).
    pub is_exact: bool,
    /// Estimated cycles saved: block weight × (software cycles − CFU
    /// latency).
    pub savings: u64,
}

/// Cap on matches enumerated per (pattern, block); prevents pathological
/// blow-ups on highly regular blocks.
const MATCH_CAP: usize = 512;

/// Matcher work statistics: how often the VF2 engine actually ran versus
/// how often the compat-key prefilter proved no embedding could exist.
///
/// Per-job statistics are summed at the parallel join point in input
/// order, so the totals are identical run-to-run regardless of thread
/// count — safe to include in compared artifacts such as
/// `BENCH_pipeline.json`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// VF2 searches actually performed.
    pub vf2_calls: u64,
    /// (pattern, block) pairs skipped by the multiset prefilter.
    pub prefilter_skips: u64,
    /// Pairs skipped because the pattern was larger than the block.
    pub size_skips: u64,
    /// Legal matches reported (after convexity/port/savings filters).
    pub matches_found: u64,
}

impl MatchStats {
    /// Accumulates another job's statistics.
    pub fn merge(&mut self, other: &MatchStats) {
        self.vf2_calls += other.vf2_calls;
        self.prefilter_skips += other.prefilter_skips;
        self.size_skips += other.size_skips;
        self.matches_found += other.matches_found;
    }
}

/// The compat-key multiset prefilter, exposed for soundness testing: true
/// when `pattern`'s key multiset is contained in `target`'s, i.e. when a
/// VF2 embedding *may* exist. [`find_matches`] skips the VF2 call exactly
/// when this returns false, so this returning false for any pattern VF2
/// would have matched is a matcher bug (see
/// `crates/compiler/tests/proptest_matching.rs`).
pub fn prefilter_admits(
    mode: MatchMode,
    pattern: &DiGraph<DfgLabel>,
    target: &DiGraph<DfgLabel>,
) -> bool {
    let pattern_counts = key_counts(mode, pattern.node_ids().map(|n| &pattern[n]));
    let target_counts = key_counts(
        mode,
        target
            .node_ids()
            .map(|n| &target[n])
            .filter(|l| !l.opcode.is_custom() && !l.opcode.is_store()),
    );
    could_embed(&pattern_counts, &target_counts)
}

/// Coarse label key such that `compatible(mode, p, t)` implies
/// `compat_key(mode, p) == compat_key(mode, t)`. Used by the multiset
/// prefilter: a pattern whose key multiset is not contained in the
/// block's cannot match, so its VF2 call is skipped entirely.
fn compat_key(mode: MatchMode, l: &DfgLabel) -> u64 {
    // Memory nodes require exact opcode equality in every mode.
    if l.opcode.is_memory() {
        return canon::hash_str(&format!("mem:{}", l.opcode.mnemonic()));
    }
    match mode {
        MatchMode::Exact => l.key(),
        MatchMode::Wildcard => {
            // Mirrors `DfgLabel::matches_class`: opcode class plus the
            // immediate *ports* (values generalize away).
            let mut s = format!("cls:{:?}", l.opcode.class());
            for (p, _) in &l.imms {
                s.push('#');
                s.push_str(&p.to_string());
            }
            canon::hash_str(&s)
        }
    }
}

/// Counts compatibility keys over a set of labels.
fn key_counts<'a>(
    mode: MatchMode,
    labels: impl Iterator<Item = &'a DfgLabel>,
) -> HashMap<u64, usize> {
    let mut m = HashMap::new();
    for l in labels {
        *m.entry(compat_key(mode, l)).or_insert(0) += 1;
    }
    m
}

/// True when every pattern key occurs in the target at least as often —
/// a necessary condition for any VF2 embedding to exist.
fn could_embed(pattern: &HashMap<u64, usize>, target: &HashMap<u64, usize>) -> bool {
    pattern
        .iter()
        .all(|(k, &c)| target.get(k).copied().unwrap_or(0) >= c)
}

fn compatible(mode: MatchMode, p: &DfgLabel, t: &DfgLabel) -> bool {
    if t.opcode.is_custom() || t.opcode.is_store() {
        return false;
    }
    // Loads appear in patterns only when the hardware library enables the
    // §6 memory relaxation; they never generalize (an `ldb` unit cannot
    // service an `ldw`), so memory nodes require exact equality in every
    // mode.
    if p.opcode.is_memory() || t.opcode.is_memory() {
        return p.opcode == t.opcode;
    }
    match mode {
        MatchMode::Exact => p.matches_exact(t),
        MatchMode::Wildcard => p.matches_class(t),
    }
}

/// One matchable pattern of a CFU: the graph, whether it comes from the
/// contraction closure (a subsumed shape), and its label-key multiset
/// for the [`could_embed`] prefilter.
type PreparedPattern<'a> = (&'a DiGraph<DfgLabel>, bool, HashMap<u64, usize>);

/// Finds every legal match of every CFU in the given function DFGs.
///
/// Matches are returned grouped by CFU priority (the MDES order), ready
/// for [`crate::prioritize::prioritize`].
///
/// # Example
///
/// ```
/// use isax_compiler::{find_matches, MatchOptions, Mdes};
/// use isax_hwlib::HwLibrary;
/// use isax_ir::function_dfgs;
/// # use isax_explore::{explore_app, ExploreConfig};
/// # use isax_select::{combine, select_greedy, SelectConfig};
/// # let mut fb = isax_ir::FunctionBuilder::new("k", 2);
/// # fb.set_entry_weight(100);
/// # let (a, b) = (fb.param(0), fb.param(1));
/// # let t = fb.xor(a, b);
/// # let u = fb.add(t, b);
/// # fb.ret(&[u.into()]);
/// # let f = fb.finish();
/// # let dfgs = function_dfgs(&f);
/// # let hw = HwLibrary::micron_018();
/// # let found = explore_app(&dfgs, &hw, &ExploreConfig::default());
/// # let cfus = combine(&dfgs, &found.candidates, &hw);
/// # let sel = select_greedy(&cfus, &SelectConfig::with_budget(4.0));
/// # let mdes = Mdes::from_selection("k", &cfus, &sel, &hw, 16);
/// let matches = find_matches(&dfgs, &mdes, &hw, &MatchOptions::exact());
/// assert!(!matches.is_empty());
/// ```
pub fn find_matches(
    dfgs: &[Dfg],
    mdes: &Mdes,
    hw: &HwLibrary,
    opts: &MatchOptions,
) -> Vec<PatternMatch> {
    find_matches_with_stats(dfgs, mdes, hw, opts).0
}

/// [`find_matches`] plus the deterministic [`MatchStats`] for the run.
pub fn find_matches_with_stats(
    dfgs: &[Dfg],
    mdes: &Mdes,
    hw: &HwLibrary,
    opts: &MatchOptions,
) -> (Vec<PatternMatch>, MatchStats) {
    let _span = isax_trace::span("compile.match");
    let ctx = MatchCtx::new(dfgs, mdes, hw, opts);
    let per_job = par::par_map(&ctx.jobs, |&(ci, block)| ctx.run_job(ci, block, None));
    // Join point: fold per-job statistics in input order (jobs is already
    // CFU-major serial order), keeping the totals deterministic.
    let mut stats = MatchStats::default();
    let mut matches = Vec::new();
    for (out, job_stats) in per_job {
        stats.merge(&job_stats);
        matches.extend(out);
    }
    emit_match_counters(&stats);
    (matches, stats)
}

/// [`find_matches_with_stats`] under a [`Guard`]: each (CFU, block) job
/// gets its own meter (item ordinal = job index in CFU-major order)
/// charging one unit per VF2 state-space node visited; worker panics are
/// contained per job. Truncations and contained faults come back as
/// [`Degradation`] records aggregated in job order.
///
/// With an inactive guard this dispatches straight to
/// [`find_matches_with_stats`] — the historical code path, byte for
/// byte.
pub fn find_matches_guarded_with_stats(
    dfgs: &[Dfg],
    mdes: &Mdes,
    hw: &HwLibrary,
    opts: &MatchOptions,
    guard: &Guard,
) -> (Vec<PatternMatch>, MatchStats, Vec<Degradation>) {
    if !guard.is_active() {
        let (matches, stats) = find_matches_with_stats(dfgs, mdes, hw, opts);
        return (matches, stats, Vec::new());
    }
    let _span = isax_trace::span("compile.match");
    let ctx = MatchCtx::new(dfgs, mdes, hw, opts);
    let per_job = par::par_try_map_indexed(ctx.jobs.len(), |ji| {
        let (ci, block) = ctx.jobs[ji];
        let mut meter = guard.meter(Stage::Match, ji as u64);
        meter.touch();
        let (out, job_stats) = ctx.run_job(ci, block, Some(&mut meter));
        let degradation = meter.degradation(format!(
            "cfu {} in block {}: kept {} matches, then stopped enumerating embeddings",
            ctx.mdes.cfus[ci].id,
            block,
            out.len(),
        ));
        (out, job_stats, degradation)
    });
    let mut stats = MatchStats::default();
    let mut matches = Vec::new();
    let mut degradations = Vec::new();
    for (ji, item) in per_job.into_iter().enumerate() {
        match item {
            Ok((out, job_stats, d)) => {
                stats.merge(&job_stats);
                matches.extend(out);
                degradations.extend(d);
            }
            Err(e) => {
                degradations.push(if e.cancelled {
                    Degradation::cancelled(Stage::Match, ji as u64, e.message)
                } else {
                    Degradation::panicked(Stage::Match, ji as u64, e.message)
                });
            }
        }
    }
    emit_match_counters(&stats);
    (matches, stats, degradations)
}

fn emit_match_counters(stats: &MatchStats) {
    isax_trace::counter("match.vf2_calls", stats.vf2_calls);
    isax_trace::counter("match.prefilter_skips", stats.prefilter_skips);
    isax_trace::counter("match.found", stats.matches_found);
}

/// Shared preparation for one matching run: prebuilt targets, prefilter
/// multisets, per-CFU pattern lists and the CFU-major job list. Both the
/// ungoverned and the guarded fan-out run the same job body, so a
/// governed run with enough budget is byte-identical to an ungoverned
/// one.
struct MatchCtx<'a> {
    dfgs: &'a [Dfg],
    mdes: &'a Mdes,
    hw: &'a HwLibrary,
    opts: &'a MatchOptions,
    targets: Vec<DiGraph<DfgLabel>>,
    target_counts: Vec<HashMap<u64, usize>>,
    cfu_patterns: Vec<Vec<PreparedPattern<'a>>>,
    /// Every (CFU, block) pair in CFU-major order — exactly the serial
    /// nesting order, and the deterministic job ordinal space for
    /// matching meters.
    jobs: Vec<(usize, usize)>,
}

impl<'a> MatchCtx<'a> {
    fn new(dfgs: &'a [Dfg], mdes: &'a Mdes, hw: &'a HwLibrary, opts: &'a MatchOptions) -> Self {
        let targets: Vec<DiGraph<DfgLabel>> = dfgs.iter().map(Dfg::to_digraph).collect();
        // Per-block label-key multisets for the prefilter; nodes that can
        // never be matched (custom instructions, stores) are left out.
        let target_counts: Vec<HashMap<u64, usize>> = targets
            .iter()
            .map(|t| {
                key_counts(
                    opts.mode,
                    t.node_ids()
                        .map(|n| &t[n])
                        .filter(|l| !l.opcode.is_custom() && !l.opcode.is_store()),
                )
            })
            .collect();
        // Patterns (own + contraction closure) per CFU, each with its key
        // multiset.
        let cfu_patterns: Vec<Vec<PreparedPattern<'a>>> = mdes
            .cfus
            .iter()
            .map(|cfu| {
                let mut patterns: Vec<(&DiGraph<DfgLabel>, bool)> = vec![(&cfu.pattern, false)];
                if opts.allow_subsumed {
                    patterns.extend(cfu.subsumed_patterns.iter().map(|p| (p, true)));
                }
                patterns
                    .into_iter()
                    .map(|(p, via)| {
                        let counts = key_counts(opts.mode, p.node_ids().map(|n| &p[n]));
                        (p, via, counts)
                    })
                    .collect()
            })
            .collect();
        let jobs: Vec<(usize, usize)> = (0..mdes.cfus.len())
            .flat_map(|c| (0..dfgs.len()).map(move |b| (c, b)))
            .collect();
        MatchCtx {
            dfgs,
            mdes,
            hw,
            opts,
            targets,
            target_counts,
            cfu_patterns,
            jobs,
        }
    }

    /// One (CFU, block) matching job. With a meter, each VF2 search is
    /// capped at the meter's remaining units and its visited states are
    /// charged back, so the matches found are a deterministic prefix of
    /// the ungoverned enumeration.
    fn run_job(
        &self,
        ci: usize,
        block: usize,
        mut meter: Option<&mut Meter>,
    ) -> (Vec<PatternMatch>, MatchStats) {
        let cfu = &self.mdes.cfus[ci];
        let dfg = &self.dfgs[block];
        let target = &self.targets[block];
        let mut out = Vec::new();
        let mut stats = MatchStats::default();
        // One node set may match several patterns (or the same pattern
        // with permuted commutative ports): keep the best description
        // (exact before subsumed, then first found).
        let mut seen: std::collections::HashSet<BitSet> = std::collections::HashSet::new();
        for (pattern, via_subsumption, pattern_counts) in &self.cfu_patterns[ci] {
            let (pattern, via_subsumption) = (*pattern, *via_subsumption);
            if pattern.node_count() > dfg.len() {
                stats.size_skips += 1;
                continue;
            }
            if !could_embed(pattern_counts, &self.target_counts[block]) {
                stats.prefilter_skips += 1;
                continue; // no embedding can exist: skip the VF2 call
            }
            let state_cap = match meter.as_ref() {
                Some(m) => {
                    if m.exhausted() || m.remaining() == 0 {
                        break; // budget gone: skip the remaining patterns
                    }
                    m.remaining()
                }
                None => u64::MAX,
            };
            stats.vf2_calls += 1;
            let (found, search) = vf2::Matcher::new(pattern, target)
                .node_compat(|p, t| compatible(self.opts.mode, p, t))
                .commutative(|p| p.opcode.is_commutative())
                .max_matches(MATCH_CAP)
                .max_states(state_cap)
                .find_all_with_stats();
            if let Some(m) = meter.as_deref_mut() {
                let _ = m.charge(search.states);
                if search.truncated {
                    // The search hit the remaining-budget cap; push the
                    // meter past its limit so exhaustion is recorded.
                    let _ = m.charge(1);
                }
            }
            for mapping in found {
                let nodes: BitSet = mapping.iter().map(|n| n.index()).collect();
                if seen.contains(&nodes) {
                    continue;
                }
                if !dfg.is_convex(&nodes) {
                    continue;
                }
                if dfg.input_count(&nodes) > self.mdes.max_inputs as usize
                    || dfg.output_count(&nodes) > self.mdes.max_outputs as usize
                    || dfg.output_count(&nodes) == 0
                {
                    continue;
                }
                // Loads contribute nothing: the baseline issues them
                // on the parallel memory slot, and a load-bearing
                // unit reserves the same port for as many cycles (see
                // `Candidate::sw_cycles`).
                let sw: u64 = nodes
                    .iter()
                    .map(|v| {
                        let inst = dfg.inst(v);
                        if inst.opcode.is_load() {
                            0
                        } else {
                            self.hw.sw_latency_of(inst) as u64
                        }
                    })
                    .sum();
                let savings = dfg.weight() * sw.saturating_sub(cfu.latency as u64);
                if savings == 0 {
                    continue;
                }
                seen.insert(nodes.clone());
                let is_exact = mapping
                    .iter()
                    .zip(pattern.node_ids())
                    .all(|(&t, p)| pattern[p].matches_exact(&target[t]));
                out.push(PatternMatch {
                    cfu: cfu.id,
                    block,
                    nodes,
                    mapping: mapping.iter().map(|n| n.index()).collect(),
                    pattern: pattern.clone(),
                    via_subsumption,
                    is_exact,
                    savings,
                });
            }
        }
        stats.matches_found = out.len() as u64;
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mdes::CfuSpec;
    use isax_ir::{function_dfgs, FunctionBuilder, Opcode};
    use isax_select::contraction_closure;

    fn hw() -> HwLibrary {
        HwLibrary::micron_018()
    }

    fn lab(op: Opcode) -> DfgLabel {
        DfgLabel {
            opcode: op,
            imms: vec![],
        }
    }

    /// Hand-written MDES with a single and→add CFU.
    fn mdes_and_add(subsumed: bool) -> Mdes {
        let mut pattern = DiGraph::new();
        let a = pattern.add_node(lab(Opcode::And));
        let b = pattern.add_node(lab(Opcode::Add));
        pattern.add_edge(a, b, 0);
        let subsumed_patterns = if subsumed {
            contraction_closure(&pattern, 32)
        } else {
            Vec::new()
        };
        Mdes {
            cfus: vec![CfuSpec {
                id: 0,
                name: "add-and".into(),
                pattern,
                latency: 1,
                area: 1.12,
                inputs: 3,
                outputs: 1,
                priority: 0,
                estimated_value: 0,
                subsumed_patterns,
            }],
            max_inputs: 5,
            max_outputs: 3,
            source_app: "test".into(),
        }
    }

    #[test]
    fn exact_match_found_with_savings() {
        let mut fb = FunctionBuilder::new("f", 3);
        fb.set_entry_weight(50);
        let (a, b, c) = (fb.param(0), fb.param(1), fb.param(2));
        let t = fb.and(a, b);
        let u = fb.add(t, c);
        fb.ret(&[u.into()]);
        let dfgs = function_dfgs(&fb.finish());
        let m = find_matches(&dfgs, &mdes_and_add(false), &hw(), &MatchOptions::exact());
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].savings, 50);
        assert!(!m[0].via_subsumption);
    }

    #[test]
    fn subsumed_match_maps_smaller_shape() {
        // Program has a lone and: only matchable via the closure.
        let mut fb = FunctionBuilder::new("f", 2);
        fb.set_entry_weight(10);
        let (a, b) = (fb.param(0), fb.param(1));
        let t = fb.and(a, b);
        let u = fb.xor(t, b); // consumer so `and` escapes realistically
        fb.ret(&[u.into()]);
        let dfgs = function_dfgs(&fb.finish());
        let exact = find_matches(&dfgs, &mdes_and_add(true), &hw(), &MatchOptions::exact());
        assert!(exact.is_empty(), "no and->add shape in the program");
        let gen = find_matches(
            &dfgs,
            &mdes_and_add(true),
            &hw(),
            &MatchOptions::with_subsumed(),
        );
        // A lone `and` saves 0 cycles (1 sw vs 1 hw) so it is dropped; but
        // nothing else matches either. Use a two-op contraction instead:
        assert!(gen.iter().all(|m| !m.nodes.is_empty()));
    }

    #[test]
    fn subsumed_two_op_contraction_matches() {
        // CFU is and->add->shl(var); program has and->shl: the closure
        // member matches and runs on the big CFU.
        let mut pattern = DiGraph::new();
        let a = pattern.add_node(lab(Opcode::And));
        let b = pattern.add_node(lab(Opcode::Add));
        let c = pattern.add_node(lab(Opcode::Shl));
        pattern.add_edge(a, b, 0);
        pattern.add_edge(b, c, 0);
        let mdes = Mdes {
            cfus: vec![CfuSpec {
                id: 0,
                name: "and-add-shl".into(),
                pattern: pattern.clone(),
                latency: 1,
                area: 2.7,
                inputs: 4,
                outputs: 1,
                priority: 0,
                estimated_value: 0,
                subsumed_patterns: contraction_closure(&pattern, 32),
            }],
            max_inputs: 5,
            max_outputs: 3,
            source_app: "test".into(),
        };
        let mut fb = FunctionBuilder::new("f", 3);
        fb.set_entry_weight(10);
        let (a, b, s) = (fb.param(0), fb.param(1), fb.param(2));
        let t = fb.and(a, b);
        let u = fb.shl(t, s);
        fb.ret(&[u.into()]);
        let dfgs = function_dfgs(&fb.finish());
        let m = find_matches(&dfgs, &mdes, &hw(), &MatchOptions::with_subsumed());
        assert_eq!(m.len(), 1);
        assert!(m[0].via_subsumption);
        assert_eq!(m[0].nodes.len(), 2);
    }

    #[test]
    fn wildcard_mode_matches_opcode_classes() {
        // CFU built for and->add also covers or->sub under opcode classes.
        let mut fb = FunctionBuilder::new("f", 3);
        fb.set_entry_weight(10);
        let (a, b, c) = (fb.param(0), fb.param(1), fb.param(2));
        let t = fb.or(a, b);
        let u = fb.sub(t, c);
        fb.ret(&[u.into()]);
        let dfgs = function_dfgs(&fb.finish());
        let exact = find_matches(&dfgs, &mdes_and_add(false), &hw(), &MatchOptions::exact());
        assert!(exact.is_empty());
        let wild = find_matches(
            &dfgs,
            &mdes_and_add(false),
            &hw(),
            &MatchOptions {
                mode: MatchMode::Wildcard,
                allow_subsumed: false,
            },
        );
        assert_eq!(wild.len(), 1);
    }

    #[test]
    fn nonconvex_occurrences_are_rejected() {
        // and -> xor -> add where the CFU covers {and, add}: the value
        // passes through the external xor, so replacement is illegal.
        let mut fb = FunctionBuilder::new("f", 2);
        fb.set_entry_weight(10);
        let (a, b) = (fb.param(0), fb.param(1));
        let t = fb.and(a, b);
        let x = fb.xor(t, b);
        let u = fb.add(x, t); // add reads both xor and the and directly
        fb.ret(&[u.into()]);
        let dfgs = function_dfgs(&fb.finish());
        // Pattern: and feeding add directly (port 1).
        let mut pattern = DiGraph::new();
        let pa = pattern.add_node(lab(Opcode::And));
        let pb = pattern.add_node(lab(Opcode::Add));
        pattern.add_edge(pa, pb, 1);
        let mdes = Mdes {
            cfus: vec![CfuSpec {
                id: 0,
                name: "x".into(),
                pattern,
                latency: 1,
                area: 1.0,
                inputs: 3,
                outputs: 1,
                priority: 0,
                estimated_value: 0,
                subsumed_patterns: vec![],
            }],
            max_inputs: 5,
            max_outputs: 3,
            source_app: "t".into(),
        };
        let m = find_matches(&dfgs, &mdes, &hw(), &MatchOptions::exact());
        assert!(m.is_empty(), "non-convex match must be rejected");
    }

    #[test]
    fn port_limits_are_enforced() {
        let mut fb = FunctionBuilder::new("f", 6);
        fb.set_entry_weight(10);
        // add with 2 external + and with 2 more = 3 inputs; set limit 2.
        let (a, b, c) = (fb.param(0), fb.param(1), fb.param(2));
        let t = fb.and(a, b);
        let u = fb.add(t, c);
        fb.ret(&[u.into()]);
        let dfgs = function_dfgs(&fb.finish());
        let mut mdes = mdes_and_add(false);
        mdes.max_inputs = 2;
        let m = find_matches(&dfgs, &mdes, &hw(), &MatchOptions::exact());
        assert!(m.is_empty());
    }

    #[test]
    fn matches_never_cover_custom_or_memory_nodes() {
        let mut fb = FunctionBuilder::new("f", 2);
        fb.set_entry_weight(10);
        let (p, b) = (fb.param(0), fb.param(1));
        let t = fb.ldw(p); // memory
        let u = fb.add(t, b);
        fb.ret(&[u.into()]);
        let dfgs = function_dfgs(&fb.finish());
        // Wildcard pattern of class Move would otherwise class-match; make
        // sure loads are refused even in wildcard mode.
        let m = find_matches(
            &dfgs,
            &mdes_and_add(true),
            &hw(),
            &MatchOptions::generalized(),
        );
        for mm in &m {
            assert!(!mm.nodes.contains(0), "load must never be matched");
        }
    }
}
