//! Operation list scheduling for the baseline VLIW.
//!
//! The evaluation machine is "a four-wide VLIW that can issue one integer,
//! one floating-point, one memory, and one branch instruction each cycle"
//! (§5). Custom function units "require an integer issue slot to execute,
//! thus an integer operation and a CFU cannot execute in the same cycle" —
//! this is what makes measured speedups attributable to the custom
//! instructions rather than to extra issue width. Multi-cycle CFUs are
//! pipelined (they hold the slot for one cycle; results arrive after their
//! latency).
//!
//! The scheduler is a classic cycle-driven list scheduler with
//! critical-path (height) priority, honouring data edges (producer
//! latency), memory ordering edges, and zero-latency anti/output edges.

use isax_guard::Meter;
use isax_hwlib::HwLibrary;
use isax_ir::{Dfg, FuKind, Opcode, Terminator};
use std::collections::BTreeMap;

/// Issue-width description of the VLIW.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VliwModel {
    /// Integer ALU slots (shared by custom function units).
    pub int_slots: u8,
    /// Floating-point slots.
    pub float_slots: u8,
    /// Memory slots.
    pub mem_slots: u8,
    /// Branch slots.
    pub branch_slots: u8,
}

impl Default for VliwModel {
    fn default() -> Self {
        VliwModel {
            int_slots: 1,
            float_slots: 1,
            mem_slots: 1,
            branch_slots: 1,
        }
    }
}

impl VliwModel {
    fn slots(&self, fu: FuKind) -> u32 {
        match fu {
            FuKind::Int => self.int_slots as u32,
            FuKind::Float => self.float_slots as u32,
            FuKind::Mem => self.mem_slots as u32,
            FuKind::Branch => self.branch_slots as u32,
        }
    }
}

/// A scheduled basic block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockSchedule {
    /// Issue cycle of each instruction (indexed like the block).
    pub issue: Vec<u32>,
    /// Total cycles the block occupies (including the terminator).
    pub cycles: u32,
}

/// Scheduling-relevant facts about one emitted custom opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CustomOpInfo {
    /// Pipelined result latency in cycles (from the executing CFU).
    pub latency: u32,
    /// Loads inside the unit: the unit reserves the machine's single
    /// cache port for this many cycles from issue (§6 memory relaxation;
    /// zero for pure units).
    pub mem_reads: u32,
}

impl Default for CustomOpInfo {
    fn default() -> Self {
        CustomOpInfo {
            latency: 1,
            mem_reads: 0,
        }
    }
}

/// Scheduling facts for every custom opcode in a program.
pub type CustomInfo = BTreeMap<u16, CustomOpInfo>;

/// Latency of one instruction: custom latencies come from the machine
/// description via the semantic-id table, everything else from the
/// baseline ISA.
pub fn inst_latency(op: Opcode, hw: &HwLibrary, custom: &CustomInfo) -> u32 {
    match op {
        Opcode::Custom(id) => custom.get(&id).copied().unwrap_or_default().latency,
        _ => hw.sw_latency(op),
    }
}

/// Cache-port cycles an instruction reserves at issue.
fn mem_reads(op: Opcode, custom: &CustomInfo) -> u32 {
    match op {
        Opcode::Custom(id) => custom.get(&id).copied().unwrap_or_default().mem_reads,
        op if op.is_memory() => 1,
        _ => 0,
    }
}

/// Schedules one block's DFG onto the VLIW.
///
/// # Example
///
/// ```
/// use isax_compiler::{schedule_block, VliwModel};
/// use isax_hwlib::HwLibrary;
/// use isax_ir::{function_dfgs, FunctionBuilder};
///
/// // Three independent adds still take three cycles: one integer slot.
/// let mut fb = FunctionBuilder::new("f", 2);
/// let (a, b) = (fb.param(0), fb.param(1));
/// let x = fb.add(a, b);
/// let y = fb.add(a, b);
/// let z = fb.add(a, b);
/// fb.ret(&[x.into(), y.into(), z.into()]);
/// let f = fb.finish();
/// let dfgs = function_dfgs(&f);
///
/// let s = schedule_block(&dfgs[0], &f.blocks[0].term, &HwLibrary::micron_018(),
///                        &Default::default(), &VliwModel::default());
/// assert_eq!(s.cycles, 3);
/// ```
pub fn schedule_block(
    dfg: &Dfg,
    term: &Terminator,
    hw: &HwLibrary,
    custom: &CustomInfo,
    model: &VliwModel,
) -> BlockSchedule {
    schedule_block_impl(dfg, term, hw, custom, model, None)
        .expect("unmetered scheduling cannot exhaust")
}

/// [`schedule_block`] under a work-unit [`Meter`]: one unit per cycle the
/// list scheduler advances plus one per instruction issued. Returns `None`
/// when the meter refuses a charge — the partial schedule is discarded so
/// callers fall back to [`sequential_schedule_block`], which is cheap and
/// deterministic.
pub fn schedule_block_metered(
    dfg: &Dfg,
    term: &Terminator,
    hw: &HwLibrary,
    custom: &CustomInfo,
    model: &VliwModel,
    meter: &mut Meter,
) -> Option<BlockSchedule> {
    schedule_block_impl(dfg, term, hw, custom, model, Some(meter))
}

fn schedule_block_impl(
    dfg: &Dfg,
    term: &Terminator,
    hw: &HwLibrary,
    custom: &CustomInfo,
    model: &VliwModel,
    mut meter: Option<&mut Meter>,
) -> Option<BlockSchedule> {
    let n = dfg.len();
    let lat: Vec<u32> = (0..n)
        .map(|v| inst_latency(dfg.inst(v).opcode, hw, custom))
        .collect();
    // Height priority: longest path to any sink.
    let mut height = vec![0u32; n];
    for v in (0..n).rev() {
        let mut h = lat[v];
        for &(d, _) in dfg.data_succs(v) {
            h = h.max(lat[v] + height[d]);
        }
        for &d in dfg.order_succs(v) {
            h = h.max(lat[v] + height[d]);
        }
        for &d in dfg.anti_succs(v) {
            h = h.max(height[d]);
        }
        height[v] = h;
    }
    let mut issue = vec![u32::MAX; n];
    let mut scheduled = 0usize;
    let mut cycle = 0u32;
    let mut max_finish = 0u32;
    // Memory-bearing custom units reserve the cache port past their issue
    // cycle (§6 relaxation): nothing may use the Mem slot before this.
    let mut mem_reserved_until = 0u32;
    while scheduled < n {
        // One work unit per cycle the scheduler considers.
        if let Some(m) = meter.as_deref_mut() {
            if !m.charge(1) {
                return None;
            }
        }
        // Capacity per FU kind this cycle.
        let mut free: BTreeMap<FuKind, u32> = BTreeMap::new();
        for fu in [FuKind::Int, FuKind::Float, FuKind::Mem, FuKind::Branch] {
            free.insert(fu, model.slots(fu));
        }
        if cycle < mem_reserved_until {
            free.insert(FuKind::Mem, 0);
        }
        // Ready ops, best height first (stable on index). Issuing an op
        // can make an anti-dependent op ready *in the same cycle*
        // (read-before-write), so iterate to a fixpoint within the cycle.
        loop {
            let mut ready: Vec<usize> = (0..n)
                .filter(|&v| issue[v] == u32::MAX && ready_at(dfg, v, &issue, &lat) <= cycle)
                .collect();
            ready.sort_by_key(|&v| (std::cmp::Reverse(height[v]), v));
            let mut progressed = false;
            for v in ready {
                let op = dfg.inst(v).opcode;
                let fu = op.fu();
                let reads = mem_reads(op, custom);
                // A memory-bearing custom needs its Int slot *and* the
                // cache port.
                let needs_mem = fu != FuKind::Mem && reads > 0;
                if needs_mem && *free.get(&FuKind::Mem).unwrap() == 0 {
                    continue;
                }
                let slots = free.get_mut(&fu).expect("all kinds present");
                if *slots > 0 {
                    // One work unit per instruction issued.
                    if let Some(m) = meter.as_deref_mut() {
                        if !m.charge(1) {
                            return None;
                        }
                    }
                    *slots -= 1;
                    issue[v] = cycle;
                    max_finish = max_finish.max(cycle + lat[v]);
                    scheduled += 1;
                    progressed = true;
                    if needs_mem {
                        *free.get_mut(&FuKind::Mem).unwrap() = 0;
                        mem_reserved_until = mem_reserved_until.max(cycle + reads);
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        cycle += 1;
        // Safety: cycle can never exceed serial issue plus max latency.
        debug_assert!(
            cycle as usize <= n * 12 + 16,
            "scheduler failed to progress"
        );
    }
    // The block ends when every result has landed, every operation has
    // issued, and — for conditional branches — the branch has issued a
    // cycle after its condition became available. Jumps and returns ride
    // in the final bundle's branch slot for free.
    let last_issue = issue.iter().copied().max().unwrap_or(0);
    let term_ready = term_ready_at(dfg, term, &issue, &lat);
    let cycles = if n == 0 {
        1
    } else {
        max_finish.max(last_issue + 1).max(term_ready + 1)
    };
    Some(BlockSchedule { issue, cycles })
}

/// Cycle by which the terminator's condition (if any) has landed: the last
/// in-block definition of the branch register, plus its latency.
fn term_ready_at(dfg: &Dfg, term: &Terminator, issue: &[u32], lat: &[u32]) -> u32 {
    match term {
        Terminator::Branch { cond, .. } => {
            // Last definition of the condition register in this block.
            (0..dfg.len())
                .rev()
                .find(|&v| dfg.inst(v).dsts.contains(cond))
                .map(|v| issue[v] + lat[v])
                .unwrap_or(0)
        }
        Terminator::Jump(_) | Terminator::Ret(_) => 0,
    }
}

/// Degradation fallback: a purely sequential schedule that issues one
/// instruction per cycle in program order, leaving full latency (and cache
/// port reservation) gaps between consecutive issues.
///
/// It is legal by construction — program order respects every data, memory
/// ordering, and anti edge inside a block, each bundle holds one
/// instruction, and memory-port windows cannot overlap because the issue
/// pointer advances by at least `mem_reads` each step. Crucially it needs
/// no search, so it is computed in O(n) with **zero** work units, and it is
/// a pure function of the block — `isax-check` recomputes it exactly when
/// a schedule-stage degradation names the enclosing function.
pub fn sequential_schedule_block(
    dfg: &Dfg,
    term: &Terminator,
    hw: &HwLibrary,
    custom: &CustomInfo,
) -> BlockSchedule {
    let n = dfg.len();
    let lat: Vec<u32> = (0..n)
        .map(|v| inst_latency(dfg.inst(v).opcode, hw, custom))
        .collect();
    let mut issue = vec![0u32; n];
    let mut t = 0u32;
    let mut max_finish = 0u32;
    for v in 0..n {
        issue[v] = t;
        max_finish = max_finish.max(t + lat[v]);
        let op = dfg.inst(v).opcode;
        t += lat[v].max(1).max(mem_reads(op, custom));
    }
    let last_issue = issue.last().copied().unwrap_or(0);
    let term_ready = term_ready_at(dfg, term, &issue, &lat);
    let cycles = if n == 0 {
        1
    } else {
        max_finish.max(last_issue + 1).max(term_ready + 1)
    };
    BlockSchedule { issue, cycles }
}

fn ready_at(dfg: &Dfg, v: usize, issue: &[u32], lat: &[u32]) -> u32 {
    let mut t = 0;
    for &(u, _) in dfg.data_preds(v) {
        if issue[u] == u32::MAX {
            return u32::MAX;
        }
        t = t.max(issue[u] + lat[u]);
    }
    for &u in dfg.order_preds(v) {
        if issue[u] == u32::MAX {
            return u32::MAX;
        }
        t = t.max(issue[u] + lat[u]);
    }
    for &u in dfg.anti_preds(v) {
        if issue[u] == u32::MAX {
            return u32::MAX;
        }
        t = t.max(issue[u]);
    }
    t
}

/// Estimated cycle count of a whole function: Σ blocks (schedule length ×
/// profile weight). This is the paper's performance metric; speedup is the
/// ratio of two estimates.
pub fn function_cycles(
    f: &isax_ir::Function,
    hw: &HwLibrary,
    custom: &CustomInfo,
    model: &VliwModel,
) -> (u64, Vec<u32>) {
    let dfgs = isax_ir::function_dfgs(f);
    let mut total = 0u64;
    let mut per_block = Vec::with_capacity(dfgs.len());
    for (bi, dfg) in dfgs.iter().enumerate() {
        let s = schedule_block(dfg, &f.blocks[bi].term, hw, custom, model);
        per_block.push(s.cycles);
        total += s.cycles as u64 * f.blocks[bi].weight;
    }
    (total, per_block)
}

/// [`function_cycles`] computed entirely with [`sequential_schedule_block`]:
/// the deterministic degradation fallback used when the list scheduler's
/// work budget runs out mid-function.
pub fn sequential_function_cycles(
    f: &isax_ir::Function,
    hw: &HwLibrary,
    custom: &CustomInfo,
) -> (u64, Vec<u32>) {
    let dfgs = isax_ir::function_dfgs(f);
    let mut total = 0u64;
    let mut per_block = Vec::with_capacity(dfgs.len());
    for (bi, dfg) in dfgs.iter().enumerate() {
        let s = sequential_schedule_block(dfg, &f.blocks[bi].term, hw, custom);
        per_block.push(s.cycles);
        total += s.cycles as u64 * f.blocks[bi].weight;
    }
    (total, per_block)
}

/// [`function_cycles`] under a work-unit [`Meter`].
///
/// Degradation is at **function granularity**: if any block exhausts the
/// meter, the whole function is recomputed with
/// [`sequential_function_cycles`] and the third return value is `true`.
/// This keeps the degraded output a pure function of the IR (independent
/// of *where* in the function the budget ran dry mid-schedule), which is
/// what lets `isax-check` verify it by exact recomputation.
pub fn function_cycles_metered(
    f: &isax_ir::Function,
    hw: &HwLibrary,
    custom: &CustomInfo,
    model: &VliwModel,
    meter: &mut Meter,
) -> (u64, Vec<u32>, bool) {
    meter.touch();
    let dfgs = isax_ir::function_dfgs(f);
    let mut total = 0u64;
    let mut per_block = Vec::with_capacity(dfgs.len());
    for (bi, dfg) in dfgs.iter().enumerate() {
        match schedule_block_metered(dfg, &f.blocks[bi].term, hw, custom, model, meter) {
            Some(s) => {
                per_block.push(s.cycles);
                total += s.cycles as u64 * f.blocks[bi].weight;
            }
            None => {
                let (t, pb) = sequential_function_cycles(f, hw, custom);
                return (t, pb, true);
            }
        }
    }
    (total, per_block, false)
}

/// The terminator is not represented in the DFG; re-export of the type for
/// downstream convenience.
pub type BlockTerminator = Terminator;

#[cfg(test)]
mod tests {
    use super::*;
    use isax_ir::{function_dfgs, FunctionBuilder};

    fn hw() -> HwLibrary {
        HwLibrary::micron_018()
    }

    fn none() -> CustomInfo {
        CustomInfo::new()
    }

    #[test]
    fn dependent_chain_serializes() {
        let mut fb = FunctionBuilder::new("f", 2);
        let (a, b) = (fb.param(0), fb.param(1));
        let x = fb.add(a, b);
        let y = fb.add(x, b);
        let z = fb.add(y, b);
        fb.ret(&[z.into()]);
        let f = fb.finish();
        let dfgs = function_dfgs(&f);
        let s = schedule_block(
            &dfgs[0],
            &f.blocks[0].term,
            &hw(),
            &none(),
            &VliwModel::default(),
        );
        assert_eq!(s.cycles, 3);
        assert_eq!(s.issue, vec![0, 1, 2]);
    }

    #[test]
    fn memory_overlaps_with_integer() {
        // load (2 cycles) in the mem slot while adds use the int slot.
        let mut fb = FunctionBuilder::new("f", 2);
        let (p, b) = (fb.param(0), fb.param(1));
        let v = fb.ldw(p); // mem slot, 2 cycles
        let x = fb.add(b, b); // int slot, independent
        let y = fb.add(x, b);
        let z = fb.add(v, y);
        fb.ret(&[z.into()]);
        let f = fb.finish();
        let dfgs = function_dfgs(&f);
        let s = schedule_block(
            &dfgs[0],
            &f.blocks[0].term,
            &hw(),
            &none(),
            &VliwModel::default(),
        );
        // ld@0 (done at 2), add@0, add@1, add@2 -> ends at 3.
        assert_eq!(s.cycles, 3);
        assert_eq!(s.issue[0], 0);
        assert_eq!(s.issue[1], 0, "int op issues alongside the load");
    }

    #[test]
    fn custom_op_occupies_int_slot() {
        let mut fb = FunctionBuilder::new("f", 2);
        let (a, b) = (fb.param(0), fb.param(1));
        // Hand-place a custom op and an add: they cannot dual-issue.
        fb.push(isax_ir::Inst::new(
            Opcode::Custom(0),
            vec![isax_ir::VReg(2)],
            vec![a.into(), b.into()],
        ));
        let x = fb.add(a, b);
        fb.ret(&[x.into(), isax_ir::VReg(2).into()]);
        let f = fb.finish();
        let dfgs = function_dfgs(&f);
        let mut lat = CustomInfo::new();
        lat.insert(
            0u16,
            CustomOpInfo {
                latency: 1,
                mem_reads: 0,
            },
        );
        let s = schedule_block(
            &dfgs[0],
            &f.blocks[0].term,
            &hw(),
            &lat,
            &VliwModel::default(),
        );
        assert_ne!(s.issue[0], s.issue[1], "one integer slot only");
        assert_eq!(s.cycles, 2);
    }

    #[test]
    fn pipelined_custom_latency_is_respected() {
        let mut fb = FunctionBuilder::new("f", 2);
        let (a, b) = (fb.param(0), fb.param(1));
        fb.push(isax_ir::Inst::new(
            Opcode::Custom(0),
            vec![isax_ir::VReg(2)],
            vec![a.into(), b.into()],
        ));
        let y = fb.add(isax_ir::VReg(2), b); // depends on the custom op
        fb.ret(&[y.into()]);
        let f = fb.finish();
        let dfgs = function_dfgs(&f);
        let mut lat = CustomInfo::new();
        lat.insert(
            0u16,
            CustomOpInfo {
                latency: 3,
                mem_reads: 0,
            },
        );
        let s = schedule_block(
            &dfgs[0],
            &f.blocks[0].term,
            &hw(),
            &lat,
            &VliwModel::default(),
        );
        assert_eq!(s.issue[1], 3, "consumer waits for the 3-cycle CFU");
        assert_eq!(s.cycles, 4);
    }

    #[test]
    fn memory_bearing_custom_reserves_the_cache_port() {
        // cfu0 contains two loads; an independent ldw cannot issue until
        // the unit releases the port.
        let mut fb = FunctionBuilder::new("f", 2);
        let (a, b) = (fb.param(0), fb.param(1));
        fb.push(isax_ir::Inst::new(
            Opcode::Custom(0),
            vec![isax_ir::VReg(2)],
            vec![a.into(), b.into()],
        ));
        let _x = fb.ldw(b);
        fb.ret(&[isax_ir::VReg(2).into()]);
        let f = fb.finish();
        let dfgs = function_dfgs(&f);
        let mut info = CustomInfo::new();
        info.insert(
            0u16,
            CustomOpInfo {
                latency: 2,
                mem_reads: 2,
            },
        );
        let s = schedule_block(
            &dfgs[0],
            &f.blocks[0].term,
            &hw(),
            &info,
            &VliwModel::default(),
        );
        assert_eq!(s.issue[0], 0, "custom issues first");
        assert!(
            s.issue[1] >= 2,
            "the load waits for the reserved port, issued at {}",
            s.issue[1]
        );
        // A pure custom releases the port immediately.
        let mut pure = CustomInfo::new();
        pure.insert(
            0u16,
            CustomOpInfo {
                latency: 2,
                mem_reads: 0,
            },
        );
        let s2 = schedule_block(
            &dfgs[0],
            &f.blocks[0].term,
            &hw(),
            &pure,
            &VliwModel::default(),
        );
        assert_eq!(s2.issue[1], 0, "load dual-issues with the pure custom");
    }

    #[test]
    fn anti_dependence_allows_same_cycle_but_not_earlier() {
        let mut fb = FunctionBuilder::new("f", 2);
        let (a, b) = (fb.param(0), fb.param(1));
        let _x = fb.ldw(a); // 0: mem slot, reads a
        fb.copy_to(a, b); // 1: int slot, redefines a (anti 0 -> 1)
        fb.ret(&[a.into()]);
        let f = fb.finish();
        let dfgs = function_dfgs(&f);
        let s = schedule_block(
            &dfgs[0],
            &f.blocks[0].term,
            &hw(),
            &none(),
            &VliwModel::default(),
        );
        // Different slots: both can go in cycle 0 (read-before-write).
        assert_eq!(s.issue[0], 0);
        assert_eq!(s.issue[1], 0);
    }

    #[test]
    fn empty_block_takes_one_cycle() {
        let mut fb = FunctionBuilder::new("f", 0);
        fb.ret(&[]);
        let f = fb.finish();
        let dfgs = function_dfgs(&f);
        let s = schedule_block(
            &dfgs[0],
            &f.blocks[0].term,
            &hw(),
            &none(),
            &VliwModel::default(),
        );
        assert_eq!(s.cycles, 1);
    }

    #[test]
    fn function_cycles_weights_blocks() {
        let mut fb = FunctionBuilder::new("f", 2);
        let (a, b) = (fb.param(0), fb.param(1));
        let heavy = fb.new_block(100);
        let exit = fb.new_block(1);
        let x = fb.add(a, b); // entry: 1 inst
        fb.jump(heavy);
        fb.switch_to(heavy);
        let y = fb.add(x, b);
        let z = fb.add(y, b);
        fb.jump(exit);
        fb.switch_to(exit);
        fb.ret(&[z.into()]);
        let f = fb.finish();
        let (total, per_block) = function_cycles(&f, &hw(), &none(), &VliwModel::default());
        assert_eq!(per_block.len(), 3);
        assert_eq!(
            total,
            (per_block[0] as u64) + per_block[1] as u64 * 100 + per_block[2] as u64
        );
    }

    #[test]
    fn metered_schedule_matches_unmetered_when_budget_suffices() {
        use isax_guard::{Meter, Stage};
        let mut fb = FunctionBuilder::new("f", 2);
        let (a, b) = (fb.param(0), fb.param(1));
        let x = fb.add(a, b);
        let y = fb.add(x, b);
        let z = fb.add(y, b);
        fb.ret(&[z.into()]);
        let f = fb.finish();
        let dfgs = function_dfgs(&f);
        let plain = schedule_block(
            &dfgs[0],
            &f.blocks[0].term,
            &hw(),
            &none(),
            &VliwModel::default(),
        );
        let mut meter = Meter::with_limit(Stage::Schedule, 0, 1_000);
        let metered = schedule_block_metered(
            &dfgs[0],
            &f.blocks[0].term,
            &hw(),
            &none(),
            &VliwModel::default(),
            &mut meter,
        )
        .expect("budget suffices");
        assert_eq!(plain, metered);
        // 3 cycles advanced + 3 instructions issued.
        assert_eq!(meter.spent(), 6);
    }

    #[test]
    fn metered_schedule_exhausts_and_sequential_fallback_is_legal() {
        use isax_guard::{Meter, Stage};
        let mut fb = FunctionBuilder::new("f", 2);
        let (p, b) = (fb.param(0), fb.param(1));
        let v = fb.ldw(p);
        let x = fb.add(b, b);
        let y = fb.add(x, v);
        fb.ret(&[y.into()]);
        let f = fb.finish();
        let dfgs = function_dfgs(&f);
        let mut meter = Meter::with_limit(Stage::Schedule, 0, 2);
        assert!(schedule_block_metered(
            &dfgs[0],
            &f.blocks[0].term,
            &hw(),
            &none(),
            &VliwModel::default(),
            &mut meter,
        )
        .is_none());
        assert!(meter.exhausted());
        let s = sequential_schedule_block(&dfgs[0], &f.blocks[0].term, &hw(), &none());
        // One instruction per cycle, in program order, with latency gaps:
        // every consumer issues at or after its producer's finish time.
        for v in 0..dfgs[0].len() {
            for &(u, _) in dfgs[0].data_preds(v) {
                let lat_u = inst_latency(dfgs[0].inst(u).opcode, &hw(), &none());
                assert!(s.issue[v] >= s.issue[u] + lat_u);
            }
        }
        let list = schedule_block(
            &dfgs[0],
            &f.blocks[0].term,
            &hw(),
            &none(),
            &VliwModel::default(),
        );
        assert!(
            s.cycles >= list.cycles,
            "fallback never beats the list scheduler"
        );
    }

    #[test]
    fn function_cycles_metered_degrades_to_sequential_whole_function() {
        use isax_guard::{Meter, Stage};
        let mut fb = FunctionBuilder::new("f", 2);
        let (a, b) = (fb.param(0), fb.param(1));
        let exit = fb.new_block(1);
        let x = fb.add(a, b);
        let y = fb.add(x, b);
        fb.jump(exit);
        fb.switch_to(exit);
        let z = fb.add(y, b);
        fb.ret(&[z.into()]);
        let f = fb.finish();
        let mut meter = Meter::with_limit(Stage::Schedule, 0, 3);
        let (total, per_block, degraded) =
            function_cycles_metered(&f, &hw(), &none(), &VliwModel::default(), &mut meter);
        assert!(degraded);
        let (seq_total, seq_pb) = sequential_function_cycles(&f, &hw(), &none());
        assert_eq!((total, per_block), (seq_total, seq_pb));
        // Ample budget reproduces the unmetered result exactly.
        let mut wide = Meter::with_limit(Stage::Schedule, 0, 10_000);
        let (t2, pb2, d2) =
            function_cycles_metered(&f, &hw(), &none(), &VliwModel::default(), &mut wide);
        let (t0, pb0) = function_cycles(&f, &hw(), &none(), &VliwModel::default());
        assert!(!d2);
        assert_eq!((t2, pb2), (t0, pb0));
    }

    #[test]
    fn wider_machine_exploits_parallelism() {
        let mut fb = FunctionBuilder::new("f", 2);
        let (a, b) = (fb.param(0), fb.param(1));
        let x = fb.add(a, b);
        let y = fb.sub(a, b);
        let z = fb.xor(a, b);
        fb.ret(&[x.into(), y.into(), z.into()]);
        let f = fb.finish();
        let dfgs = function_dfgs(&f);
        let narrow = schedule_block(
            &dfgs[0],
            &f.blocks[0].term,
            &hw(),
            &none(),
            &VliwModel::default(),
        );
        let wide = schedule_block(
            &dfgs[0],
            &f.blocks[0].term,
            &hw(),
            &none(),
            &VliwModel {
                int_slots: 3,
                ..VliwModel::default()
            },
        );
        assert_eq!(narrow.cycles, 3);
        assert_eq!(wide.cycles, 1);
    }
}
