//! Selection invariants on random candidate pools.

use isax_graph::{BitSet, DiGraph};
use isax_ir::{DfgLabel, Opcode};
use isax_select::{
    select_greedy, select_knapsack, select_multifunction, CfuCandidate, Occurrence, SelectConfig,
};
use proptest::prelude::*;

fn mk_candidate(seedling: &(u8, f64, Vec<(u8, u8, u16)>)) -> CfuCandidate {
    let (shape, area, occs) = seedling;
    let ops = [
        Opcode::Add,
        Opcode::Xor,
        Opcode::Shl,
        Opcode::And,
        Opcode::Sub,
    ];
    let mut pattern = DiGraph::new();
    let mut prev = None;
    for k in 0..(*shape % 3 + 1) {
        let n = pattern.add_node(DfgLabel {
            opcode: ops[(*shape as usize + k as usize) % ops.len()],
            imms: vec![],
        });
        if let Some(p) = prev {
            pattern.add_edge(p, n, 0);
        }
        prev = Some(n);
    }
    let fingerprint = isax_select::pattern_fingerprint(&pattern);
    CfuCandidate {
        pattern,
        fingerprint,
        delay: 0.4,
        area: *area,
        inputs: 2,
        outputs: 1,
        hw_cycles: 1,
        occurrences: occs
            .iter()
            .map(|&(dfg, start, weight)| Occurrence {
                dfg: dfg as usize % 4,
                nodes: (start as usize..start as usize + 2).collect::<BitSet>(),
                weight: weight as u64 + 1,
                savings_per_exec: 1 + (start % 3) as u64,
            })
            .collect(),
        subsumes: vec![],
        wildcard_partners: vec![],
    }
}

fn pool() -> impl Strategy<Value = Vec<CfuCandidate>> {
    proptest::collection::vec(
        (
            any::<u8>(),
            0.05f64..6.0,
            proptest::collection::vec((any::<u8>(), 0u8..40, any::<u16>()), 1..4),
        ),
        1..12,
    )
    .prop_map(|seeds| seeds.iter().map(mk_candidate).collect())
}

/// Recomputes the true (non-overlapping) value of a selection by claiming
/// operations in priority order, independent of the selector's own
/// bookkeeping.
fn recount(cands: &[CfuCandidate], chosen: &[isax_select::SelectedCfu]) -> u64 {
    let mut claimed = std::collections::HashSet::new();
    let mut total = 0;
    for sc in chosen {
        for o in &cands[sc.candidate].occurrences {
            if o.nodes.iter().all(|n| !claimed.contains(&(o.dfg, n))) {
                total += o.value();
                for n in o.nodes.iter() {
                    claimed.insert((o.dfg, n));
                }
            }
        }
    }
    total
}

/// Reconstruction of the recorded regression
/// (`proptest_select.proptest-regressions`, case 32c45c00): a single
/// one-node `Add` candidate whose two occurrences overlap on node 10
/// (`{10, 11}` worth 2 and `{9, 10}` worth 1). A selector that sums
/// occurrence values without simulating the claim double-counts the
/// shared node and reports 3 where only 2 is realizable. Kept as a
/// deterministic unit test because the vendored proptest cannot replay
/// upstream seeds.
#[test]
fn recorded_regression_overlapping_occurrences() {
    let mut pattern = DiGraph::new();
    pattern.add_node(DfgLabel {
        opcode: Opcode::Add,
        imms: vec![],
    });
    let fingerprint = isax_select::pattern_fingerprint(&pattern);
    let cands = vec![CfuCandidate {
        pattern,
        fingerprint,
        delay: 0.4,
        area: 0.05,
        inputs: 2,
        outputs: 1,
        hw_cycles: 1,
        occurrences: vec![
            Occurrence {
                dfg: 0,
                nodes: [10usize, 11].into_iter().collect::<BitSet>(),
                weight: 1,
                savings_per_exec: 2,
            },
            Occurrence {
                dfg: 0,
                nodes: [9usize, 10].into_iter().collect::<BitSet>(),
                weight: 1,
                savings_per_exec: 1,
            },
        ],
        subsumes: vec![],
        wildcard_partners: vec![],
    }];
    let cfg = SelectConfig::with_budget(12.737170404614092);
    for (name, sel) in [
        ("greedy", select_greedy(&cands, &cfg)),
        ("dp", select_knapsack(&cands, &cfg)),
        ("multi", select_multifunction(&cands, &cfg)),
    ] {
        let recounted = recount(&cands, &sel.chosen);
        assert_eq!(sel.total_value, recounted, "{name} value claim");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_env_cases(192))]

    /// All three selectors respect the budget, never select duplicates,
    /// and report values that an independent recount confirms.
    #[test]
    fn selectors_are_honest(cands in pool(), budget in 0.0f64..20.0) {
        let cfg = SelectConfig::with_budget(budget);
        for (name, sel) in [
            ("greedy", select_greedy(&cands, &cfg)),
            ("dp", select_knapsack(&cands, &cfg)),
            ("multi", select_multifunction(&cands, &cfg)),
        ] {
            prop_assert!(sel.total_area <= budget + 1e-9, "{name} overspent");
            let mut seen = std::collections::HashSet::new();
            for sc in &sel.chosen {
                prop_assert!(seen.insert(sc.candidate), "{name} picked twice");
                prop_assert!(sc.candidate < cands.len());
            }
            let recounted = recount(&cands, &sel.chosen);
            prop_assert_eq!(sel.total_value, recounted, "{} value claim", name);
        }
    }

    /// A bigger budget never yields less greedy value.
    #[test]
    fn greedy_value_is_monotone_in_budget(cands in pool(), b in 0.5f64..10.0) {
        let lo = select_greedy(&cands, &SelectConfig::with_budget(b));
        let hi = select_greedy(&cands, &SelectConfig::with_budget(b * 2.0));
        prop_assert!(hi.total_value >= lo.total_value);
    }
}
