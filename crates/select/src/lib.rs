//! Candidate combination and custom-function-unit selection.
//!
//! This crate implements §3.3–§3.4 of the paper: discovered candidate
//! subgraphs are [grouped](combine) into CFU candidates by
//! commutativity-aware graph equivalence; [subsumption](subsume) and
//! [`wildcard`] relationships between CFUs are recorded; and a
//! [greedy value/cost knapsack](greedy) (or the slower
//! [dynamic-programming variant](knapsack)) picks the CFU set for a given
//! die-area budget, iteratively re-pricing candidates as their operations
//! are claimed.
//!
//! The output — a prioritized CFU list — is what the machine description
//! generator in `isax-compiler` turns into a compiler-consumable MDES.
//!
//! # Example: full hardware-compiler front half
//!
//! ```
//! use isax_explore::{explore_app, ExploreConfig};
//! use isax_hwlib::HwLibrary;
//! use isax_ir::{function_dfgs, FunctionBuilder};
//! use isax_select::{combine, mark_subsumptions, find_wildcard_partners,
//!                   select_greedy, SelectConfig};
//!
//! let mut fb = FunctionBuilder::new("kernel", 3);
//! fb.set_entry_weight(5_000);
//! let (a, b, k) = (fb.param(0), fb.param(1), fb.param(2));
//! let t = fb.xor(a, k);
//! let u = fb.shl(t, 5i64);
//! let v = fb.add(u, b);
//! fb.ret(&[v.into()]);
//! let dfgs = function_dfgs(&fb.finish());
//!
//! let hw = HwLibrary::micron_018();
//! let found = explore_app(&dfgs, &hw, &ExploreConfig::default());
//! let mut cfus = combine(&dfgs, &found.candidates, &hw);
//! mark_subsumptions(&mut cfus, 128);
//! find_wildcard_partners(&mut cfus);
//! let sel = select_greedy(&cfus, &SelectConfig::with_budget(3.0));
//! assert!(!sel.chosen.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod combine;
pub mod greedy;
pub mod knapsack;
pub mod multifunction;
pub mod subsume;
pub mod wildcard;

pub use combine::{combine, pattern_fingerprint, patterns_equivalent, CfuCandidate, Occurrence};
pub use greedy::{
    select_greedy, select_greedy_metered, Objective, SelectConfig, SelectedCfu, Selection,
};
pub use knapsack::select_knapsack;
pub use multifunction::{select_multifunction, wildcard_families};
pub use subsume::{contraction_closure, mark_subsumptions, DEFAULT_CLOSURE_CAP};
pub use wildcard::find_wildcard_partners;
