//! Multifunction CFU selection — the paper's stated future work.
//!
//! §6: "In the future, we plan to ... incorporate multi-function CFUs
//! into the selection process." Figures 8/9 estimate the *potential* of
//! opcode-class hardware without charging for it; this module closes the
//! loop: wildcard-partner families are offered to the greedy selector as
//! single **merged units** whose cost models shared hardware — the
//! dominant datapath plus a mux/decode increment per additional member —
//! and whose value combines every member's occurrences.
//!
//! A family is a connected component of the wildcard-partner graph (all
//! members share one structure, differing at single nodes). Selecting a
//! family selects every member CFU; the machine description then carries
//! them as ordinary units, so the compiler needs no changes.

use crate::combine::CfuCandidate;
use crate::greedy::{SelectConfig, SelectedCfu, Selection};
use std::collections::HashSet;

/// One merged selection unit: a single CFU or a wildcard family.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Unit {
    /// Member candidate indices (one = plain CFU).
    members: Vec<usize>,
}

/// Connected components of the wildcard-partner graph with two or more
/// members.
pub fn wildcard_families(cands: &[CfuCandidate]) -> Vec<Vec<usize>> {
    let mut seen = vec![false; cands.len()];
    let mut families = Vec::new();
    for start in 0..cands.len() {
        if seen[start] || cands[start].wildcard_partners.is_empty() {
            continue;
        }
        let mut stack = vec![start];
        let mut comp = Vec::new();
        seen[start] = true;
        while let Some(i) = stack.pop() {
            comp.push(i);
            for &j in &cands[i].wildcard_partners {
                if !seen[j] {
                    seen[j] = true;
                    stack.push(j);
                }
            }
        }
        comp.sort_unstable();
        families.push(comp);
    }
    families
}

/// Hardware cost of a family: the most expensive member's datapath plus a
/// fraction of each additional member (operand muxes, opcode decode).
fn family_area(members: &[usize], cands: &[CfuCandidate], cfg: &SelectConfig) -> f64 {
    let mut areas: Vec<f64> = members.iter().map(|&i| cands[i].area).collect();
    areas.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    let mut total = areas.first().copied().unwrap_or(0.0);
    for extra in &areas[1..] {
        total += extra * cfg.wildcard_cost_factor;
    }
    total.max(0.05)
}

/// Greedy selection over single CFUs **and** wildcard families.
///
/// Uses the same value/cost objective and operation-claiming model as
/// [`crate::select_greedy`]; a family's value is the summed live value of
/// all members (members never overlap on operations — they are distinct
/// patterns — but occurrences can, and claiming handles that).
///
/// # Example
///
/// ```
/// use isax_explore::{explore_app, ExploreConfig};
/// use isax_hwlib::HwLibrary;
/// use isax_ir::{function_dfgs, FunctionBuilder};
/// use isax_select::{combine, find_wildcard_partners, SelectConfig};
/// use isax_select::multifunction::select_multifunction;
///
/// let mut fb = FunctionBuilder::new("f", 3);
/// fb.set_entry_weight(1_000);
/// let (a, b, c) = (fb.param(0), fb.param(1), fb.param(2));
/// let t1 = fb.xor(a, b);
/// let u1 = fb.add(t1, c);   // xor -> add
/// let t2 = fb.xor(u1, b);
/// let u2 = fb.sub(t2, c);   // xor -> sub : a wildcard family
/// fb.ret(&[u2.into()]);
/// let dfgs = function_dfgs(&fb.finish());
/// let hw = HwLibrary::micron_018();
/// let found = explore_app(&dfgs, &hw, &ExploreConfig::default());
/// let mut cfus = combine(&dfgs, &found.candidates, &hw);
/// find_wildcard_partners(&mut cfus);
/// let sel = select_multifunction(&cfus, &SelectConfig::with_budget(3.0));
/// assert!(!sel.chosen.is_empty());
/// ```
pub fn select_multifunction(cands: &[CfuCandidate], cfg: &SelectConfig) -> Selection {
    // Units: every single CFU, plus one merged unit per family.
    let mut units: Vec<Unit> = (0..cands.len())
        .map(|i| Unit { members: vec![i] })
        .collect();
    for fam in wildcard_families(cands) {
        if fam.len() >= 2 {
            units.push(Unit { members: fam });
        }
    }
    let mut claimed: HashSet<(usize, usize)> = HashSet::new();
    let mut selected_cands: HashSet<usize> = HashSet::new();
    let mut out = Selection::default();
    let mut remaining = cfg.budget;
    loop {
        let mut best: Option<(usize, u64, f64)> = None;
        'unit: for (u, unit) in units.iter().enumerate() {
            // Skip units with any already-selected member.
            if unit.members.iter().any(|m| selected_cands.contains(m)) {
                continue;
            }
            let cost = if unit.members.len() == 1 {
                cands[unit.members[0]].area.max(0.05)
            } else {
                family_area(&unit.members, cands, cfg)
            };
            if cost > remaining {
                continue;
            }
            // Live value: occurrences may overlap *across members* of one
            // family, so claim greedily within the evaluation.
            let mut tentative: HashSet<(usize, usize)> = HashSet::new();
            let mut value = 0u64;
            for &m in &unit.members {
                for o in &cands[m].occurrences {
                    let free = o.nodes.iter().all(|n| {
                        !claimed.contains(&(o.dfg, n)) && !tentative.contains(&(o.dfg, n))
                    });
                    if free {
                        value += o.value();
                        for n in o.nodes.iter() {
                            tentative.insert((o.dfg, n));
                        }
                    }
                }
            }
            if value == 0 {
                continue 'unit;
            }
            let better = match best {
                None => true,
                Some((bu, bv, bc)) => {
                    let (lhs, rhs) = match cfg.objective {
                        crate::greedy::Objective::ValuePerArea => {
                            (value as f64 * bc, bv as f64 * cost)
                        }
                        crate::greedy::Objective::Value => (value as f64, bv as f64),
                    };
                    lhs > rhs || (lhs == rhs && (cost < bc || (cost == bc && u < bu)))
                }
            };
            if better {
                best = Some((u, value, cost));
            }
        }
        let Some((u, _value, cost)) = best else {
            break;
        };
        // Claim and record each member.
        let members = units[u].members.clone();
        let per_member_cost = cost / members.len() as f64;
        for &m in &members {
            let mut member_value = 0u64;
            for o in &cands[m].occurrences {
                if o.nodes.iter().all(|n| !claimed.contains(&(o.dfg, n))) {
                    member_value += o.value();
                    for n in o.nodes.iter() {
                        claimed.insert((o.dfg, n));
                    }
                }
            }
            out.total_value += member_value;
            out.chosen.push(SelectedCfu {
                candidate: m,
                priority: out.chosen.len(),
                estimated_value: member_value,
                charged_area: per_member_cost,
            });
            selected_cands.insert(m);
        }
        remaining -= cost;
        out.total_area += cost;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combine::{combine, Occurrence};
    use crate::greedy::select_greedy;
    use crate::wildcard::find_wildcard_partners;
    use isax_explore::{explore_app, ExploreConfig};
    use isax_graph::{BitSet, DiGraph};
    use isax_hwlib::HwLibrary;
    use isax_ir::{function_dfgs, DfgLabel, FunctionBuilder, Opcode};

    fn cand(ops: &[Opcode], area: f64, occs: Vec<(Vec<usize>, u64)>) -> CfuCandidate {
        let mut pattern = DiGraph::new();
        let mut prev = None;
        for &op in ops {
            let n = pattern.add_node(DfgLabel {
                opcode: op,
                imms: vec![],
            });
            if let Some(p) = prev {
                pattern.add_edge(p, n, 0);
            }
            prev = Some(n);
        }
        let fingerprint = crate::combine::pattern_fingerprint(&pattern);
        CfuCandidate {
            pattern,
            fingerprint,
            delay: 0.4,
            area,
            inputs: 2,
            outputs: 1,
            hw_cycles: 1,
            occurrences: occs
                .into_iter()
                .map(|(nodes, value)| Occurrence {
                    dfg: 0,
                    nodes: nodes.into_iter().collect::<BitSet>(),
                    weight: value,
                    savings_per_exec: 1,
                })
                .collect(),
            subsumes: vec![],
            wildcard_partners: vec![],
        }
    }

    #[test]
    fn families_are_connected_components() {
        let mut a = cand(&[Opcode::Xor, Opcode::Add], 1.0, vec![(vec![0, 1], 10)]);
        let mut b = cand(&[Opcode::Xor, Opcode::Sub], 1.0, vec![(vec![2, 3], 10)]);
        let mut c = cand(&[Opcode::And, Opcode::Sub], 1.0, vec![(vec![4, 5], 10)]);
        let d = cand(&[Opcode::Mul], 17.0, vec![(vec![6], 10)]);
        a.wildcard_partners = vec![1];
        b.wildcard_partners = vec![0, 2];
        c.wildcard_partners = vec![1];
        let fams = wildcard_families(&[a, b, c, d]);
        assert_eq!(fams, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn family_is_cheaper_than_separate_members() {
        // Two partners at 4.0 adders each: separately 8.0, merged
        // 4.0 + 0.4 = 4.4 — the family fits a 5-adder budget.
        let mut a = cand(&[Opcode::Xor, Opcode::Add], 4.0, vec![(vec![0, 1], 100)]);
        let mut b = cand(&[Opcode::Xor, Opcode::Sub], 4.0, vec![(vec![2, 3], 90)]);
        a.wildcard_partners = vec![1];
        b.wildcard_partners = vec![0];
        let cands = [a, b];
        let cfg = SelectConfig::with_budget(5.0);
        let multi = select_multifunction(&cands, &cfg);
        assert_eq!(multi.chosen.len(), 2, "whole family selected");
        assert!(multi.total_area <= 5.0);
        assert_eq!(multi.total_value, 190);
        // Plain greedy also gets both here thanks to the partner
        // discount; multifunction must never do worse.
        let plain = select_greedy(&cands, &cfg);
        assert!(multi.total_value >= plain.total_value);
    }

    #[test]
    fn overlapping_family_occurrences_are_not_double_counted() {
        // Both members claim the same operations.
        let mut a = cand(&[Opcode::Xor, Opcode::Add], 1.0, vec![(vec![0, 1], 50)]);
        let mut b = cand(&[Opcode::Xor, Opcode::Sub], 1.0, vec![(vec![0, 1], 40)]);
        a.wildcard_partners = vec![1];
        b.wildcard_partners = vec![0];
        let sel = select_multifunction(&[a, b], &SelectConfig::with_budget(10.0));
        assert_eq!(sel.total_value, 50, "only one member may claim ops 0-1");
    }

    #[test]
    fn end_to_end_multifunction_beats_or_ties_plain_greedy() {
        // A kernel whose add/sub halves form a natural family.
        let mut fb = FunctionBuilder::new("k", 3);
        fb.set_entry_weight(10_000);
        let (a, b, c) = (fb.param(0), fb.param(1), fb.param(2));
        let t1 = fb.xor(a, c);
        let u1 = fb.add(t1, b);
        let t2 = fb.xor(u1, c);
        let u2 = fb.sub(t2, b);
        let t3 = fb.xor(u2, c);
        let u3 = fb.add(t3, b);
        fb.ret(&[u3.into()]);
        let dfgs = function_dfgs(&fb.finish());
        let hw = HwLibrary::micron_018();
        let found = explore_app(&dfgs, &hw, &ExploreConfig::default());
        let mut cfus = combine(&dfgs, &found.candidates, &hw);
        find_wildcard_partners(&mut cfus);
        for budget in [1.0, 2.0, 4.0, 15.0] {
            let cfg = SelectConfig::with_budget(budget);
            let plain = select_greedy(&cfus, &cfg);
            let multi = select_multifunction(&cfus, &cfg);
            assert!(
                multi.total_value >= plain.total_value,
                "budget {budget}: multi {} < plain {}",
                multi.total_value,
                plain.total_value
            );
            assert!(multi.total_area <= budget + 1e-9);
        }
    }

    #[test]
    fn empty_input_selects_nothing() {
        let sel = select_multifunction(&[], &SelectConfig::with_budget(10.0));
        assert!(sel.chosen.is_empty());
    }
}
