//! Wildcard CFUs: candidates identical except at a single node.
//!
//! "Wildcards are CFUs with identical subgraphs except for different
//! operations at one node. Combining two CFUs with similar structure like
//! this allows us to cheaply add another CFU without greatly increasing
//! the associated cost, as much of the hardware can be shared" (§3.3).
//!
//! Detection wildcards one node at a time: replace node `v`'s label with a
//! sentinel, fingerprint the result, and bucket candidates by that
//! fingerprint; bucket collisions are confirmed by exact isomorphism of
//! the sentinel-labelled graphs. The evaluation's stronger *opcode-class*
//! generalization (Figures 8 and 9) lives in the compiler's matching mode;
//! this module supplies the partner structure selection uses to discount
//! shared hardware.

use crate::combine::CfuCandidate;
use isax_graph::{canon, par, vf2, DiGraph, Fingerprint, NodeId};
use isax_ir::DfgLabel;
use std::collections::HashMap;

/// Replaces one node's label with the wildcard sentinel.
fn wildcarded(g: &DiGraph<DfgLabel>, v: NodeId) -> DiGraph<WildLabel> {
    g.map(|n, l| {
        if n == v {
            WildLabel::Wild {
                arity: l.opcode.arity(),
            }
        } else {
            WildLabel::Exact(l.clone())
        }
    })
}

/// A label that may be the wildcard sentinel.
#[derive(Debug, Clone, PartialEq, Eq)]
enum WildLabel {
    Exact(DfgLabel),
    /// The wildcard node; arity is kept so a two-input node never pairs
    /// with a one-input node.
    Wild {
        arity: usize,
    },
}

impl WildLabel {
    fn key(&self) -> u64 {
        match self {
            WildLabel::Exact(l) => l.key(),
            WildLabel::Wild { arity } => canon::hash_str(&format!("*{arity}")),
        }
    }

    fn commutative(&self) -> bool {
        match self {
            WildLabel::Exact(l) => l.opcode.is_commutative(),
            // Conservative: treat the wildcard as commutative so that a
            // commutative replacement is not missed; exactness is restored
            // by the isomorphism verification.
            WildLabel::Wild { .. } => true,
        }
    }
}

fn wild_fingerprint(g: &DiGraph<WildLabel>) -> Fingerprint {
    canon::fingerprint(
        g,
        WildLabel::key,
        WildLabel::commutative,
        &Default::default(),
    )
}

/// Fills in [`CfuCandidate::wildcard_partners`]: `i` and `j` are partners
/// when their patterns are isomorphic after wildcarding one node on each
/// side.
///
/// # Example
///
/// ```
/// use isax_explore::{explore_app, ExploreConfig};
/// use isax_hwlib::HwLibrary;
/// use isax_ir::{function_dfgs, FunctionBuilder};
/// use isax_select::{combine, wildcard::find_wildcard_partners};
///
/// let mut fb = FunctionBuilder::new("f", 3);
/// let (a, b, c) = (fb.param(0), fb.param(1), fb.param(2));
/// let t1 = fb.and(a, b);
/// let u1 = fb.add(t1, c);   // and -> add
/// let t2 = fb.and(u1, b);
/// let u2 = fb.sub(t2, c);   // and -> sub : wildcard partner of and -> add
/// fb.ret(&[u2.into()]);
/// let dfgs = function_dfgs(&fb.finish());
/// let hw = HwLibrary::micron_018();
/// let found = explore_app(&dfgs, &hw, &ExploreConfig::default());
/// let mut cfus = combine(&dfgs, &found.candidates, &hw);
/// find_wildcard_partners(&mut cfus);
///
/// let aa = cfus.iter().position(|c| c.describe() == "add-and").unwrap();
/// let as_ = cfus.iter().position(|c| c.describe() == "and-sub").unwrap();
/// assert!(cfus[aa].wildcard_partners.contains(&as_));
/// assert!(cfus[as_].wildcard_partners.contains(&aa));
/// ```
pub fn find_wildcard_partners(cands: &mut [CfuCandidate]) {
    // Bucket (candidate, wildcarded node) by fingerprint.
    let mut buckets: HashMap<(usize, Fingerprint), Vec<(usize, NodeId)>> = HashMap::new();
    let mut wild_graphs: HashMap<(usize, u32), DiGraph<WildLabel>> = HashMap::new();
    for (i, c) in cands.iter().enumerate() {
        for v in c.pattern.node_ids() {
            let wg = wildcarded(&c.pattern, v);
            let fp = wild_fingerprint(&wg);
            buckets
                .entry((c.pattern.node_count(), fp))
                .or_default()
                .push((i, v));
            wild_graphs.insert((i, v.0), wg);
        }
    }
    // Buckets are independent; the quadratic isomorphism confirmation
    // within each runs in parallel. The confirmed pairs are merged and
    // the per-candidate lists sorted, so the output does not depend on
    // bucket or thread order.
    let bucket_members: Vec<Vec<(usize, NodeId)>> = buckets.into_values().collect();
    let view: &[CfuCandidate] = cands;
    let pair_lists = par::par_map(&bucket_members, |members| {
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for (ai, &(i, vi)) in members.iter().enumerate() {
            for &(j, vj) in members.iter().skip(ai + 1) {
                if i == j {
                    continue;
                }
                let gi = &wild_graphs[&(i, vi.0)];
                let gj = &wild_graphs[&(j, vj.0)];
                // The two labels at the wildcard position must differ,
                // otherwise the candidates would already be one group.
                let li = &view[i].pattern[vi];
                let lj = &view[j].pattern[vj];
                if li == lj {
                    continue;
                }
                if vf2::are_isomorphic(gi, gj, |a, b| a == b, WildLabel::commutative) {
                    pairs.push((i, j));
                }
            }
        }
        pairs
    });
    let mut partners: Vec<Vec<usize>> = vec![Vec::new(); cands.len()];
    for (i, j) in pair_lists.into_iter().flatten() {
        partners[i].push(j);
        partners[j].push(i);
    }
    for (c, mut p) in cands.iter_mut().zip(partners) {
        p.sort_unstable();
        p.dedup();
        c.wildcard_partners = p;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combine::combine;
    use isax_explore::{explore_app, ExploreConfig};
    use isax_hwlib::HwLibrary;
    use isax_ir::{function_dfgs, FunctionBuilder};

    fn analyzed(fb: FunctionBuilder) -> Vec<CfuCandidate> {
        let dfgs = function_dfgs(&fb.finish());
        let hw = HwLibrary::micron_018();
        let found = explore_app(&dfgs, &hw, &ExploreConfig::default());
        let mut cfus = combine(&dfgs, &found.candidates, &hw);
        find_wildcard_partners(&mut cfus);
        cfus
    }

    #[test]
    fn add_sub_chains_are_partners() {
        let mut fb = FunctionBuilder::new("f", 3);
        let (a, b, c) = (fb.param(0), fb.param(1), fb.param(2));
        let t1 = fb.xor(a, b);
        let u1 = fb.add(t1, c);
        let t2 = fb.xor(u1, b);
        let u2 = fb.sub(t2, c);
        fb.ret(&[u2.into()]);
        let cfus = analyzed(fb);
        let xa = cfus.iter().position(|c| c.describe() == "add-xor").unwrap();
        let xs = cfus.iter().position(|c| c.describe() == "sub-xor").unwrap();
        assert!(cfus[xa].wildcard_partners.contains(&xs));
    }

    #[test]
    fn two_node_differences_are_not_partners() {
        let mut fb = FunctionBuilder::new("f", 3);
        let (a, b, c) = (fb.param(0), fb.param(1), fb.param(2));
        let t1 = fb.xor(a, b);
        let u1 = fb.add(t1, c); // xor -> add
        let t2 = fb.and(u1, b);
        let u2 = fb.sub(t2, c); // and -> sub : differs at both nodes
        fb.ret(&[u2.into()]);
        let cfus = analyzed(fb);
        let xa = cfus.iter().position(|c| c.describe() == "add-xor").unwrap();
        let as_ = cfus.iter().position(|c| c.describe() == "and-sub").unwrap();
        assert!(!cfus[xa].wildcard_partners.contains(&as_));
    }

    #[test]
    fn singleton_opcodes_are_partners() {
        let mut fb = FunctionBuilder::new("f", 2);
        let (a, b) = (fb.param(0), fb.param(1));
        let x = fb.and(a, b);
        let y = fb.or(x, b);
        fb.ret(&[y.into()]);
        let cfus = analyzed(fb);
        let and1 = cfus
            .iter()
            .position(|c| c.size() == 1 && c.describe() == "and")
            .unwrap();
        let or1 = cfus
            .iter()
            .position(|c| c.size() == 1 && c.describe() == "or")
            .unwrap();
        assert!(cfus[and1].wildcard_partners.contains(&or1));
    }

    #[test]
    fn partner_relation_is_symmetric() {
        let mut fb = FunctionBuilder::new("f", 3);
        let (a, b, c) = (fb.param(0), fb.param(1), fb.param(2));
        let t1 = fb.shl(a, 4i64);
        let u1 = fb.add(t1, b);
        let t2 = fb.shl(c, 4i64);
        let u2 = fb.xor(t2, b);
        let z = fb.or(u1, u2);
        fb.ret(&[z.into()]);
        let cfus = analyzed(fb);
        for (i, c) in cfus.iter().enumerate() {
            for &j in &c.wildcard_partners {
                assert!(
                    cfus[j].wildcard_partners.contains(&i),
                    "partner lists must be symmetric"
                );
            }
        }
    }
}
