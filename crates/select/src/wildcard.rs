//! Wildcard CFUs: candidates identical except at a single node.
//!
//! "Wildcards are CFUs with identical subgraphs except for different
//! operations at one node. Combining two CFUs with similar structure like
//! this allows us to cheaply add another CFU without greatly increasing
//! the associated cost, as much of the hardware can be shared" (§3.3).
//!
//! Detection wildcards one node at a time: key node `v`'s position with a
//! sentinel and bucket candidates by the resulting cheap structural key
//! ([`canon::multiset_key`] — sound for commutativity-aware isomorphism);
//! bucket collisions are confirmed by exact isomorphism of lazily built
//! sentinel-labelled graphs. The evaluation's stronger *opcode-class*
//! generalization (Figures 8 and 9) lives in the compiler's matching mode;
//! this module supplies the partner structure selection uses to discount
//! shared hardware.

use crate::combine::CfuCandidate;
use isax_graph::{canon, par, vf2, DiGraph, NodeId};
use isax_ir::DfgLabel;
use std::collections::HashMap;

/// Replaces one node's label with the wildcard sentinel.
fn wildcarded(g: &DiGraph<DfgLabel>, v: NodeId) -> DiGraph<WildLabel> {
    g.map(|n, l| {
        if n == v {
            WildLabel::Wild {
                arity: l.opcode.arity(),
            }
        } else {
            WildLabel::Exact(l.clone())
        }
    })
}

/// A label that may be the wildcard sentinel.
#[derive(Debug, Clone, PartialEq, Eq)]
enum WildLabel {
    Exact(DfgLabel),
    /// The wildcard node; arity is kept so a two-input node never pairs
    /// with a one-input node.
    Wild {
        arity: usize,
    },
}

impl WildLabel {
    /// Only the differential tests key materialized wildcard graphs;
    /// production bucketing uses [`wild_key_indexed`].
    #[cfg(test)]
    fn key(&self) -> u64 {
        match self {
            WildLabel::Exact(l) => l.key(),
            WildLabel::Wild { arity } => canon::hash_str(&format!("*{arity}")),
        }
    }

    fn commutative(&self) -> bool {
        match self {
            WildLabel::Exact(l) => l.opcode.is_commutative(),
            // Conservative: treat the wildcard as commutative so that a
            // commutative replacement is not missed; exactness is restored
            // by the isomorphism verification.
            WildLabel::Wild { .. } => true,
        }
    }
}

/// Cheap structural key of `pattern` as if node `wild` carried the
/// wildcard sentinel, without building the sentinel-labelled graph: the
/// multiset key runs on cached per-node label keys with the wildcard's
/// key (and conservative commutativity) overridden in place. Equal to
/// `multiset_key(&wildcarded(pattern, wild), ...)` — wildcarding changes
/// labels only, never the edge structure — so isomorphic wildcardings
/// always share a bucket; exactness comes from the VF2 confirmation.
fn wild_key_indexed(
    pattern: &DiGraph<DfgLabel>,
    keys: &[u64],
    comm: &[bool],
    wild: NodeId,
    wild_key: u64,
) -> u64 {
    canon::multiset_key(
        pattern,
        |n| if n == wild { wild_key } else { keys[n.index()] },
        // Wild is conservatively commutative.
        |n| n == wild || comm[n.index()],
    )
}

/// Fills in [`CfuCandidate::wildcard_partners`]: `i` and `j` are partners
/// when their patterns are isomorphic after wildcarding one node on each
/// side.
///
/// # Example
///
/// ```
/// use isax_explore::{explore_app, ExploreConfig};
/// use isax_hwlib::HwLibrary;
/// use isax_ir::{function_dfgs, FunctionBuilder};
/// use isax_select::{combine, wildcard::find_wildcard_partners};
///
/// let mut fb = FunctionBuilder::new("f", 3);
/// let (a, b, c) = (fb.param(0), fb.param(1), fb.param(2));
/// let t1 = fb.and(a, b);
/// let u1 = fb.add(t1, c);   // and -> add
/// let t2 = fb.and(u1, b);
/// let u2 = fb.sub(t2, c);   // and -> sub : wildcard partner of and -> add
/// fb.ret(&[u2.into()]);
/// let dfgs = function_dfgs(&fb.finish());
/// let hw = HwLibrary::micron_018();
/// let found = explore_app(&dfgs, &hw, &ExploreConfig::default());
/// let mut cfus = combine(&dfgs, &found.candidates, &hw);
/// find_wildcard_partners(&mut cfus);
///
/// let aa = cfus.iter().position(|c| c.describe() == "add-and").unwrap();
/// let as_ = cfus.iter().position(|c| c.describe() == "and-sub").unwrap();
/// assert!(cfus[aa].wildcard_partners.contains(&as_));
/// assert!(cfus[as_].wildcard_partners.contains(&aa));
/// ```
pub fn find_wildcard_partners(cands: &mut [CfuCandidate]) {
    // Bucket (candidate, wildcarded node) by the cheap structural key.
    // The keys come from cached label keys with the wildcard position
    // overridden in place — no sentinel-labelled graph is materialized
    // here, no WL refinement runs, and each candidate's labels are
    // string-hashed once instead of once per (node, wildcard) pair.
    let mut buckets: HashMap<(usize, u64), Vec<(usize, NodeId)>, canon::PremixedState> =
        HashMap::default();
    let mut wild_keys: HashMap<usize, u64> = HashMap::new();
    // One edge's contribution to the multiset-key edge accumulator.
    let edge_term = |src_key: u64, dst_key: u64, dst_comm: bool, port: u8| {
        let p = if dst_comm {
            canon::COMMUTATIVE_PORT
        } else {
            port as u64
        };
        canon::mix(canon::combine(canon::combine(src_key, dst_key), p))
    };
    for (i, c) in cands.iter().enumerate() {
        let g = &c.pattern;
        let keys: Vec<u64> = g.node_ids().map(|n| g[n].key()).collect();
        let comm: Vec<bool> = g.node_ids().map(|n| g[n].opcode.is_commutative()).collect();
        // Base accumulators over the unmodified pattern; each wildcard
        // position derives its key from these by swapping out just the
        // wildcarded node's contributions (it is conservatively
        // commutative, so its incoming ports normalize), instead of
        // rescanning the whole graph per position.
        let node_total = keys
            .iter()
            .fold(0u64, |a, &k| a.wrapping_add(canon::mix(k)));
        let edge_total = g.edges().fold(0u64, |a, e| {
            a.wrapping_add(edge_term(
                keys[e.src.index()],
                keys[e.dst.index()],
                comm[e.dst.index()],
                e.port,
            ))
        });
        let counts = canon::combine(g.node_count() as u64, g.edge_count() as u64);
        for v in g.node_ids() {
            let arity = g[v].opcode.arity();
            let wild_key = *wild_keys
                .entry(arity)
                .or_insert_with(|| canon::hash_str(&format!("*{arity}")));
            let node_acc = node_total
                .wrapping_sub(canon::mix(keys[v.index()]))
                .wrapping_add(canon::mix(wild_key));
            let mut edge_acc = edge_total;
            for e in g.succs(v) {
                edge_acc = edge_acc
                    .wrapping_sub(edge_term(
                        keys[e.src.index()],
                        keys[e.dst.index()],
                        comm[e.dst.index()],
                        e.port,
                    ))
                    .wrapping_add(edge_term(
                        wild_key,
                        keys[e.dst.index()],
                        comm[e.dst.index()],
                        e.port,
                    ));
            }
            for e in g.preds(v) {
                edge_acc = edge_acc
                    .wrapping_sub(edge_term(
                        keys[e.src.index()],
                        keys[e.dst.index()],
                        comm[e.dst.index()],
                        e.port,
                    ))
                    .wrapping_add(edge_term(keys[e.src.index()], wild_key, true, e.port));
            }
            let key = canon::mix(canon::combine(counts, node_acc.wrapping_add(edge_acc)));
            debug_assert_eq!(
                key,
                wild_key_indexed(g, &keys, &comm, v, wild_key),
                "incremental wildcard key must match the full rescan"
            );
            buckets
                .entry((g.node_count(), key))
                .or_default()
                .push((i, v));
        }
    }
    // Buckets are independent; the quadratic isomorphism confirmation
    // within each runs in parallel. Sentinel-labelled graphs are built
    // lazily, only for members of multi-entry buckets that actually reach
    // the VF2 check. The confirmed pairs are merged and the per-candidate
    // lists sorted, so the output does not depend on bucket or thread
    // order.
    let bucket_members: Vec<Vec<(usize, NodeId)>> = buckets
        .into_values()
        .filter(|members| members.len() > 1)
        .collect();
    let view: &[CfuCandidate] = cands;
    let pair_lists = par::par_map(&bucket_members, |members| {
        let mut graphs: HashMap<(usize, u32), DiGraph<WildLabel>> = HashMap::new();
        let mut confirmed: std::collections::HashSet<(usize, usize)> =
            std::collections::HashSet::new();
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for (ai, &(i, vi)) in members.iter().enumerate() {
            for &(j, vj) in members.iter().skip(ai + 1) {
                if i == j {
                    continue;
                }
                // The two labels at the wildcard position must differ,
                // otherwise the candidates would already be one group.
                let li = &view[i].pattern[vi];
                let lj = &view[j].pattern[vj];
                if li == lj {
                    continue;
                }
                // A pair already confirmed via another wildcard position
                // needs no second VF2 run; the output lists dedup anyway.
                let pair = if i < j { (i, j) } else { (j, i) };
                if confirmed.contains(&pair) {
                    continue;
                }
                graphs
                    .entry((i, vi.0))
                    .or_insert_with(|| wildcarded(&view[i].pattern, vi));
                graphs
                    .entry((j, vj.0))
                    .or_insert_with(|| wildcarded(&view[j].pattern, vj));
                let gi = &graphs[&(i, vi.0)];
                let gj = &graphs[&(j, vj.0)];
                if vf2::are_isomorphic(gi, gj, |a, b| a == b, WildLabel::commutative) {
                    confirmed.insert(pair);
                    pairs.push((i, j));
                }
            }
        }
        pairs
    });
    let mut partners: Vec<Vec<usize>> = vec![Vec::new(); cands.len()];
    for (i, j) in pair_lists.into_iter().flatten() {
        partners[i].push(j);
        partners[j].push(i);
    }
    for (c, mut p) in cands.iter_mut().zip(partners) {
        p.sort_unstable();
        p.dedup();
        c.wildcard_partners = p;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combine::combine;
    use isax_explore::{explore_app, ExploreConfig};
    use isax_hwlib::HwLibrary;
    use isax_ir::{function_dfgs, FunctionBuilder};

    fn analyzed(fb: FunctionBuilder) -> Vec<CfuCandidate> {
        let dfgs = function_dfgs(&fb.finish());
        let hw = HwLibrary::micron_018();
        let found = explore_app(&dfgs, &hw, &ExploreConfig::default());
        let mut cfus = combine(&dfgs, &found.candidates, &hw);
        find_wildcard_partners(&mut cfus);
        cfus
    }

    #[test]
    fn indexed_key_matches_materialized_wildcarding() {
        let mut fb = FunctionBuilder::new("w", 3);
        let (a, b, c) = (fb.param(0), fb.param(1), fb.param(2));
        let t = fb.xor(a, b);
        let u = fb.shl(t, 3i64);
        let v = fb.sub(u, c);
        fb.ret(&[v.into()]);
        let cfus = analyzed(fb);
        for cand in &cfus {
            let keys: Vec<u64> = cand
                .pattern
                .node_ids()
                .map(|n| cand.pattern[n].key())
                .collect();
            let comm: Vec<bool> = cand
                .pattern
                .node_ids()
                .map(|n| cand.pattern[n].opcode.is_commutative())
                .collect();
            for v in cand.pattern.node_ids() {
                let arity = cand.pattern[v].opcode.arity();
                let wild_key = canon::hash_str(&format!("*{arity}"));
                let fast = wild_key_indexed(&cand.pattern, &keys, &comm, v, wild_key);
                let w = wildcarded(&cand.pattern, v);
                let slow = canon::multiset_key(&w, |n| w[n].key(), |n| w[n].commutative());
                assert_eq!(fast, slow, "indexed wildcard key must match materialized");
            }
        }
    }

    #[test]
    fn add_sub_chains_are_partners() {
        let mut fb = FunctionBuilder::new("f", 3);
        let (a, b, c) = (fb.param(0), fb.param(1), fb.param(2));
        let t1 = fb.xor(a, b);
        let u1 = fb.add(t1, c);
        let t2 = fb.xor(u1, b);
        let u2 = fb.sub(t2, c);
        fb.ret(&[u2.into()]);
        let cfus = analyzed(fb);
        let xa = cfus.iter().position(|c| c.describe() == "add-xor").unwrap();
        let xs = cfus.iter().position(|c| c.describe() == "sub-xor").unwrap();
        assert!(cfus[xa].wildcard_partners.contains(&xs));
    }

    #[test]
    fn two_node_differences_are_not_partners() {
        let mut fb = FunctionBuilder::new("f", 3);
        let (a, b, c) = (fb.param(0), fb.param(1), fb.param(2));
        let t1 = fb.xor(a, b);
        let u1 = fb.add(t1, c); // xor -> add
        let t2 = fb.and(u1, b);
        let u2 = fb.sub(t2, c); // and -> sub : differs at both nodes
        fb.ret(&[u2.into()]);
        let cfus = analyzed(fb);
        let xa = cfus.iter().position(|c| c.describe() == "add-xor").unwrap();
        let as_ = cfus.iter().position(|c| c.describe() == "and-sub").unwrap();
        assert!(!cfus[xa].wildcard_partners.contains(&as_));
    }

    #[test]
    fn singleton_opcodes_are_partners() {
        let mut fb = FunctionBuilder::new("f", 2);
        let (a, b) = (fb.param(0), fb.param(1));
        let x = fb.and(a, b);
        let y = fb.or(x, b);
        fb.ret(&[y.into()]);
        let cfus = analyzed(fb);
        let and1 = cfus
            .iter()
            .position(|c| c.size() == 1 && c.describe() == "and")
            .unwrap();
        let or1 = cfus
            .iter()
            .position(|c| c.size() == 1 && c.describe() == "or")
            .unwrap();
        assert!(cfus[and1].wildcard_partners.contains(&or1));
    }

    #[test]
    fn partner_relation_is_symmetric() {
        let mut fb = FunctionBuilder::new("f", 3);
        let (a, b, c) = (fb.param(0), fb.param(1), fb.param(2));
        let t1 = fb.shl(a, 4i64);
        let u1 = fb.add(t1, b);
        let t2 = fb.shl(c, 4i64);
        let u2 = fb.xor(t2, b);
        let z = fb.or(u1, u2);
        fb.ret(&[z.into()]);
        let cfus = analyzed(fb);
        for (i, c) in cfus.iter().enumerate() {
            for &j in &c.wildcard_partners {
                assert!(
                    cfus[j].wildcard_partners.contains(&i),
                    "partner lists must be symmetric"
                );
            }
        }
    }
}
