//! Candidate combination: grouping isomorphic subgraphs into CFU
//! candidates.
//!
//! "After discovery, it is a straightforward process to group identical
//! candidate subgraphs together into candidate CFUs. A simple test which
//! checks graph equivalence, while taking into account commutativity,
//! accomplishes this" (§3.3). Grouping is done with a commutativity-aware
//! structural fingerprint; fingerprint collisions are verified by exact
//! VF2 isomorphism, so grouping is sound regardless of hash behaviour.
//!
//! The combined profile weights of a group's occurrences give the CFU's
//! estimated cycle savings, which drives [selection](crate::greedy).

use isax_explore::Candidate;
use isax_graph::{canon, vf2, BitSet, DiGraph, Fingerprint};
use isax_hwlib::HwLibrary;
use isax_ir::{Dfg, DfgLabel};

/// One placement of a CFU candidate in the application.
#[derive(Debug, Clone, PartialEq)]
pub struct Occurrence {
    /// Index of the DFG (block) the subgraph lives in.
    pub dfg: usize,
    /// The instruction indices forming the subgraph.
    pub nodes: BitSet,
    /// Profile weight of the containing block.
    pub weight: u64,
    /// Cycles saved by one hardware execution of this occurrence
    /// (software cycles − CFU cycles, never negative).
    pub savings_per_exec: u64,
}

impl Occurrence {
    /// Estimated total cycles saved by mapping this occurrence.
    pub fn value(&self) -> u64 {
        self.weight * self.savings_per_exec
    }
}

/// A candidate custom function unit: one hardware pattern plus every place
/// in the application it (exactly) occurs.
#[derive(Debug, Clone, PartialEq)]
pub struct CfuCandidate {
    /// The hardware pattern (data edges, opcode + immediate labels).
    pub pattern: DiGraph<DfgLabel>,
    /// Commutativity-aware structural fingerprint of the pattern.
    pub fingerprint: Fingerprint,
    /// Critical-path delay, in cycle fractions.
    pub delay: f64,
    /// Area in adders.
    pub area: f64,
    /// Register input ports (maximum over occurrences).
    pub inputs: usize,
    /// Register output ports (maximum over occurrences).
    pub outputs: usize,
    /// Execution cycles of the pipelined unit.
    pub hw_cycles: u32,
    /// Every exact occurrence in the application.
    pub occurrences: Vec<Occurrence>,
    /// Indices (into the combined candidate list) of CFU candidates this
    /// one subsumes via identity contraction. Filled by
    /// [`crate::subsume::mark_subsumptions`].
    pub subsumes: Vec<usize>,
    /// Indices of candidates identical to this one except at a single
    /// node ("wildcards"). Filled by
    /// [`crate::wildcard::find_wildcard_partners`].
    pub wildcard_partners: Vec<usize>,
}

impl CfuCandidate {
    /// Estimated value with every occurrence live (initial selection
    /// metric).
    pub fn estimated_value(&self) -> u64 {
        self.occurrences.iter().map(Occurrence::value).sum()
    }

    /// Number of primitive operations in the pattern.
    pub fn size(&self) -> usize {
        self.pattern.node_count()
    }

    /// Short mnemonic description, e.g. `"xor-shl-or"`.
    pub fn describe(&self) -> String {
        let mut names: Vec<&str> = self
            .pattern
            .node_ids()
            .map(|n| self.pattern[n].opcode.mnemonic())
            .collect();
        names.sort_unstable();
        names.join("-")
    }
}

/// Computes the commutativity-aware fingerprint of a pattern with exact
/// labels.
pub fn pattern_fingerprint(pattern: &DiGraph<DfgLabel>) -> Fingerprint {
    canon::fingerprint(
        pattern,
        DfgLabel::key,
        |l| l.opcode.is_commutative(),
        &canon::CanonConfig::default(),
    )
}

/// Tests exact pattern equivalence (commutativity-aware isomorphism).
pub fn patterns_equivalent(a: &DiGraph<DfgLabel>, b: &DiGraph<DfgLabel>) -> bool {
    vf2::are_isomorphic(a, b, DfgLabel::matches_exact, |l| l.opcode.is_commutative())
}

/// True if `a` and `b` are *literally* the same graph — same labels in the
/// same node order, same edge set. A cheap sufficient (not necessary)
/// condition for [`patterns_equivalent`], used to skip the VF2 search in
/// the common case where two pipelines produced a pattern the same way
/// (e.g. contraction of the same node set in a different order, which
/// preserves relative node order).
pub(crate) fn patterns_identical_fast(a: &DiGraph<DfgLabel>, b: &DiGraph<DfgLabel>) -> bool {
    if a.node_count() != b.node_count() {
        return false;
    }
    if a.node_ids().zip(b.node_ids()).any(|(x, y)| a[x] != b[y]) {
        return false;
    }
    let mut ea: Vec<(usize, usize, u8)> = a
        .edges()
        .map(|e| (e.src.index(), e.dst.index(), e.port))
        .collect();
    let mut eb: Vec<(usize, usize, u8)> = b
        .edges()
        .map(|e| (e.src.index(), e.dst.index(), e.port))
        .collect();
    if ea.len() != eb.len() {
        return false;
    }
    ea.sort_unstable();
    eb.sort_unstable();
    ea == eb
}

/// Groups discovered candidates into CFU candidates.
///
/// `dfgs` must be the same slice exploration ran over (occurrence indices
/// refer into it).
///
/// # Example
///
/// ```
/// use isax_explore::{explore_app, ExploreConfig};
/// use isax_hwlib::HwLibrary;
/// use isax_ir::{function_dfgs, FunctionBuilder};
/// use isax_select::combine;
///
/// // The same and→add shape appears twice.
/// let mut fb = FunctionBuilder::new("f", 3);
/// let (a, b, c) = (fb.param(0), fb.param(1), fb.param(2));
/// let t1 = fb.and(a, b);
/// let u1 = fb.add(t1, c);
/// let t2 = fb.and(u1, c);
/// let u2 = fb.add(t2, a);
/// fb.ret(&[u2.into()]);
/// let dfgs = function_dfgs(&fb.finish());
///
/// let hw = HwLibrary::micron_018();
/// let found = explore_app(&dfgs, &hw, &ExploreConfig::default());
/// let cfus = combine(&dfgs, &found.candidates, &hw);
/// let and_add = cfus.iter().find(|c| c.describe() == "add-and").unwrap();
/// assert_eq!(and_add.occurrences.len(), 2);
/// ```
pub fn combine(dfgs: &[Dfg], candidates: &[Candidate], hw: &HwLibrary) -> Vec<CfuCandidate> {
    let mut groups: Vec<CfuCandidate> = Vec::new();
    let mut by_fp: std::collections::HashMap<Fingerprint, Vec<usize>, canon::PremixedState> =
        std::collections::HashMap::default();
    // One refinement scratch for the whole batch; `fingerprint_keys` is
    // bit-identical to `pattern_fingerprint` but allocation-free per call.
    let mut scratch = canon::CanonScratch::default();
    let cfg = canon::CanonConfig::default();
    for cand in candidates {
        let dfg = &dfgs[cand.dfg];
        let pattern = cand.pattern(dfg);
        scratch
            .base
            .extend(pattern.node_ids().map(|v| canon::mix(pattern[v].key())));
        scratch.comm.extend(
            pattern
                .node_ids()
                .map(|v| pattern[v].opcode.is_commutative()),
        );
        let fp = canon::fingerprint_keys(&pattern, &cfg, &mut scratch);
        let hw_cycles = hw.cfu_cycles(cand.delay);
        let sw = cand.sw_cycles(dfg, hw) as u64;
        let savings = (sw).saturating_sub(hw_cycles as u64);
        let occ = Occurrence {
            dfg: cand.dfg,
            nodes: cand.nodes.clone(),
            weight: dfg.weight(),
            savings_per_exec: savings,
        };
        let bucket = by_fp.entry(fp).or_default();
        let mut placed = false;
        for &gi in bucket.iter() {
            if patterns_equivalent(&groups[gi].pattern, &pattern) {
                let g = &mut groups[gi];
                g.inputs = g.inputs.max(cand.inputs);
                g.outputs = g.outputs.max(cand.outputs);
                // Width-aware costing can price isomorphic embeddings
                // differently (each carries its own inferred widths); one
                // unit must serve every occurrence, so it is built for
                // the widest — the group keeps the maximum delay/area.
                // In default mode every member prices identically and
                // this never fires, keeping outputs byte-identical.
                if hw.width_aware {
                    g.delay = g.delay.max(cand.delay);
                    g.area = g.area.max(cand.area);
                }
                g.occurrences.push(occ.clone());
                placed = true;
                break;
            }
        }
        if !placed {
            bucket.push(groups.len());
            groups.push(CfuCandidate {
                pattern,
                fingerprint: fp,
                delay: cand.delay,
                area: cand.area,
                inputs: cand.inputs,
                outputs: cand.outputs,
                hw_cycles,
                occurrences: vec![occ],
                subsumes: Vec::new(),
                wildcard_partners: Vec::new(),
            });
        }
    }
    if hw.width_aware {
        // The group delay settled only after every member arrived:
        // refresh the cycle count and re-derive each occurrence's
        // savings from the group-level (widest-member) unit.
        for g in &mut groups {
            g.hw_cycles = hw.cfu_cycles(g.delay);
            for occ in &mut g.occurrences {
                let sw: u64 = occ
                    .nodes
                    .iter()
                    .map(|v| {
                        let inst = dfgs[occ.dfg].inst(v);
                        if inst.opcode.is_load() {
                            0
                        } else {
                            hw.sw_latency_of(inst) as u64
                        }
                    })
                    .sum();
                occ.savings_per_exec = sw.saturating_sub(g.hw_cycles as u64);
            }
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use isax_explore::{explore_app, ExploreConfig};
    use isax_ir::{function_dfgs, FunctionBuilder};

    fn hw() -> HwLibrary {
        HwLibrary::micron_018()
    }

    /// Two blocks containing the same shl-and-add shape (the paper's
    /// 7-10-13-16 / 8-11-14-17 example), with different weights.
    fn twin_program_dfgs() -> Vec<Dfg> {
        let mut fb = FunctionBuilder::new("f", 3);
        let (a, b, c) = (fb.param(0), fb.param(1), fb.param(2));
        let heavy = fb.new_block(1000);
        let exit = fb.new_block(1);
        let t = fb.shl(a, 2i64);
        let u = fb.and(t, b);
        let v = fb.add(u, c);
        fb.jump(heavy);
        fb.switch_to(heavy);
        let t2 = fb.shl(v, 2i64);
        let u2 = fb.and(t2, a);
        let v2 = fb.add(u2, b);
        fb.jump(exit);
        fb.switch_to(exit);
        fb.ret(&[v2.into()]);
        function_dfgs(&fb.finish())
    }

    #[test]
    fn twin_subgraphs_are_grouped_with_summed_value() {
        let dfgs = twin_program_dfgs();
        let found = explore_app(&dfgs, &hw(), &ExploreConfig::default());
        let cfus = combine(&dfgs, &found.candidates, &hw());
        let full = cfus
            .iter()
            .find(|c| c.describe() == "add-and-shl")
            .expect("shl-and-add CFU exists");
        assert_eq!(full.occurrences.len(), 2);
        // Weight 1 (entry) + weight 1000 (heavy); savings per exec:
        // sw = 3 cycles, hw = 1 cycle -> 2.
        assert_eq!(full.occurrences[0].savings_per_exec, 2);
        assert_eq!(full.estimated_value(), 2 * 1001);
    }

    #[test]
    fn commutative_twins_group_despite_port_swap() {
        let mut fb = FunctionBuilder::new("g", 4);
        let (a, b, c, d) = (fb.param(0), fb.param(1), fb.param(2), fb.param(3));
        // xor feeds port 0 of the and here ...
        let x1 = fb.xor(a, b);
        let y1 = fb.and(x1, c);
        // ... and port 1 there (and is commutative).
        let x2 = fb.xor(c, d);
        let y2 = fb.and(a, x2);
        let z = fb.or(y1, y2);
        fb.ret(&[z.into()]);
        let dfgs = function_dfgs(&fb.finish());
        let found = explore_app(&dfgs, &hw(), &ExploreConfig::default());
        let cfus = combine(&dfgs, &found.candidates, &hw());
        let xa = cfus.iter().filter(|c| c.describe() == "and-xor").count();
        assert_eq!(xa, 1, "both orientations group into one CFU");
        let g = cfus.iter().find(|c| c.describe() == "and-xor").unwrap();
        assert_eq!(g.occurrences.len(), 2);
    }

    #[test]
    fn noncommutative_port_swap_stays_separate() {
        let mut fb = FunctionBuilder::new("h", 4);
        let (a, b, c, d) = (fb.param(0), fb.param(1), fb.param(2), fb.param(3));
        let x1 = fb.xor(a, b);
        let y1 = fb.sub(x1, c); // xor on minuend side
        let x2 = fb.xor(c, d);
        let y2 = fb.sub(a, x2); // xor on subtrahend side
        let z = fb.or(y1, y2);
        fb.ret(&[z.into()]);
        let dfgs = function_dfgs(&fb.finish());
        let found = explore_app(&dfgs, &hw(), &ExploreConfig::default());
        let cfus = combine(&dfgs, &found.candidates, &hw());
        let subs: Vec<_> = cfus.iter().filter(|c| c.describe() == "sub-xor").collect();
        assert_eq!(subs.len(), 2, "sub is not commutative: two distinct CFUs");
    }

    #[test]
    fn different_immediates_do_not_group() {
        let mut fb = FunctionBuilder::new("imm", 2);
        let (a, b) = (fb.param(0), fb.param(1));
        let t1 = fb.shl(a, 2i64);
        let u1 = fb.add(t1, b);
        let t2 = fb.shl(u1, 7i64);
        let u2 = fb.add(t2, a);
        fb.ret(&[u2.into()]);
        let dfgs = function_dfgs(&fb.finish());
        let found = explore_app(&dfgs, &hw(), &ExploreConfig::default());
        let cfus = combine(&dfgs, &found.candidates, &hw());
        // Of the three two-node chains two are shl->add (with amounts 2
        // and 7) and one is add->shl; the hardwired immediates keep the
        // shl->add pair apart.
        let shl_feeds_add: Vec<_> = cfus
            .iter()
            .filter(|c| {
                c.size() == 2
                    && c.describe() == "add-shl"
                    && c.pattern
                        .edges()
                        .all(|e| c.pattern[e.src].opcode == isax_ir::Opcode::Shl)
            })
            .collect();
        assert_eq!(shl_feeds_add.len(), 2, "shift amounts are hardwired");
    }

    #[test]
    fn savings_never_negative() {
        // A lone multiply: sw 3 cycles, hw 2 cycles -> saves 1; a lone add
        // saves 0; never underflows.
        let mut fb = FunctionBuilder::new("m", 2);
        let (a, b) = (fb.param(0), fb.param(1));
        let m = fb.mul(a, b);
        let s = fb.add(m, b);
        fb.ret(&[s.into()]);
        let dfgs = function_dfgs(&fb.finish());
        let found = explore_app(&dfgs, &hw(), &ExploreConfig::default());
        let cfus = combine(&dfgs, &found.candidates, &hw());
        for c in &cfus {
            for o in &c.occurrences {
                if c.size() == 1 && c.pattern[isax_graph::NodeId(0)].opcode == isax_ir::Opcode::Add
                {
                    assert_eq!(o.savings_per_exec, 0);
                }
            }
        }
        let mul_only = cfus
            .iter()
            .find(|c| c.size() == 1 && c.describe() == "mul")
            .unwrap();
        assert_eq!(mul_only.occurrences[0].savings_per_exec, 1);
    }
}
