//! Dynamic-programming CFU selection (the paper's ablation variant).
//!
//! §3.4: "In an attempt to improve the selection heuristic, a version
//! based on dynamic programming was implemented. The dynamic programming
//! heuristic generally does better (roughly 5–10% on average) than greedy
//! solutions, however it suffers from a much slower runtime."
//!
//! The DP treats selection as a classic 0/1 knapsack over the candidates'
//! *initial* (interaction-free) values with areas quantized to
//! quarter-adders, then re-evaluates the chosen set with the same
//! operation-claiming model the greedy uses, so reported values are
//! honest. It remains a heuristic — the true problem has interacting
//! values — but it escapes the greedy's worst local choices.

use crate::combine::CfuCandidate;
use crate::greedy::{SelectConfig, SelectedCfu, Selection};
use std::collections::HashSet;

/// Area quantum for the DP table, in adders.
const QUANTUM: f64 = 0.25;

/// Runs knapsack-style selection under the given budget.
///
/// `cfg.objective` is ignored (the DP maximizes total value by
/// construction); the subsumed/wildcard discounts are applied when
/// re-costing the chosen set.
///
/// # Example
///
/// ```
/// use isax_explore::{explore_app, ExploreConfig};
/// use isax_hwlib::HwLibrary;
/// use isax_ir::{function_dfgs, FunctionBuilder};
/// use isax_select::{combine, select_knapsack, SelectConfig};
///
/// let mut fb = FunctionBuilder::new("f", 2);
/// fb.set_entry_weight(100);
/// let (a, b) = (fb.param(0), fb.param(1));
/// let t = fb.and(a, b);
/// let u = fb.add(t, b);
/// fb.ret(&[u.into()]);
/// let dfgs = function_dfgs(&fb.finish());
/// let hw = HwLibrary::micron_018();
/// let found = explore_app(&dfgs, &hw, &ExploreConfig::default());
/// let cfus = combine(&dfgs, &found.candidates, &hw);
/// let sel = select_knapsack(&cfus, &SelectConfig::with_budget(2.0));
/// assert!(sel.total_area <= 2.0 + 1e-9);
/// ```
pub fn select_knapsack(cands: &[CfuCandidate], cfg: &SelectConfig) -> Selection {
    let capacity = (cfg.budget / QUANTUM).floor() as usize;
    if capacity == 0 || cands.is_empty() {
        return Selection::default();
    }
    let weight =
        |c: &CfuCandidate| -> usize { ((c.area.max(0.05) / QUANTUM).ceil() as usize).max(1) };
    // dp[w] = (best value, chosen set as indices) — keep choices via a
    // parent table to avoid cloning vectors in the inner loop.
    let n = cands.len();
    let mut dp = vec![0u64; capacity + 1];
    let mut take = vec![vec![false; capacity + 1]; n];
    for (i, c) in cands.iter().enumerate() {
        let w = weight(c);
        let v = c.estimated_value();
        if v == 0 {
            continue;
        }
        for cap in (w..=capacity).rev() {
            let candidate_value = dp[cap - w] + v;
            if candidate_value > dp[cap] {
                dp[cap] = candidate_value;
                take[i][cap] = true;
            }
        }
        // Standard 0/1 knapsack processes items outer, capacity inner;
        // the take matrix needs back-tracking with the same item order.
    }
    // Backtrack.
    let mut chosen_idx = Vec::new();
    let mut cap = capacity;
    for i in (0..n).rev() {
        if take[i][cap] {
            chosen_idx.push(i);
            cap -= weight(&cands[i]);
        }
    }
    chosen_idx.reverse();
    // Re-evaluate with interaction (claiming) in descending initial value
    // order, which becomes the replacement priority.
    chosen_idx.sort_by_key(|&i| std::cmp::Reverse(cands[i].estimated_value()));
    let mut claimed: HashSet<(usize, usize)> = HashSet::new();
    let mut out = Selection::default();
    for &i in &chosen_idx {
        let mut value = 0u64;
        for o in &cands[i].occurrences {
            if o.nodes.iter().all(|nd| !claimed.contains(&(o.dfg, nd))) {
                value += o.value();
                for nd in o.nodes.iter() {
                    claimed.insert((o.dfg, nd));
                }
            }
        }
        let area = cands[i].area.max(0.05);
        out.total_area += area;
        out.total_value += value;
        out.chosen.push(SelectedCfu {
            candidate: i,
            priority: out.chosen.len(),
            estimated_value: value,
            charged_area: area,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combine::Occurrence;
    use crate::greedy::select_greedy;
    use isax_graph::{BitSet, DiGraph};
    use isax_ir::{DfgLabel, Opcode};

    fn cand(area: f64, occs: Vec<(Vec<usize>, u64, u64)>) -> CfuCandidate {
        let mut pattern = DiGraph::new();
        pattern.add_node(DfgLabel {
            opcode: Opcode::Add,
            imms: vec![],
        });
        let fingerprint = crate::combine::pattern_fingerprint(&pattern);
        CfuCandidate {
            pattern,
            fingerprint,
            delay: 0.3,
            area,
            inputs: 2,
            outputs: 1,
            hw_cycles: 1,
            occurrences: occs
                .into_iter()
                .map(|(nodes, weight, savings)| Occurrence {
                    dfg: 0,
                    nodes: nodes.into_iter().collect::<BitSet>(),
                    weight,
                    savings_per_exec: savings,
                })
                .collect(),
            subsumes: vec![],
            wildcard_partners: vec![],
        }
    }

    #[test]
    fn dp_beats_greedy_ratio_on_the_classic_trap() {
        // Greedy-by-ratio takes the dense small item and then cannot fit
        // the optimal pair.
        let trap = cand(1.0, vec![(vec![0], 100, 1)]); // ratio 100
        let big1 = cand(2.0, vec![(vec![1], 120, 1)]); // ratio 60
        let big2 = cand(2.0, vec![(vec![2], 120, 1)]); // ratio 60
        let cands = [trap, big1, big2];
        let cfg = SelectConfig::with_budget(4.0);
        let greedy = select_greedy(&cands, &cfg);
        let dp = select_knapsack(&cands, &cfg);
        assert_eq!(greedy.total_value, 100 + 120);
        assert_eq!(dp.total_value, 240, "DP picks the two big items");
        assert!(dp.total_value > greedy.total_value);
    }

    #[test]
    fn dp_respects_budget_exactly() {
        let a = cand(1.5, vec![(vec![0], 10, 1)]);
        let b = cand(1.5, vec![(vec![1], 10, 1)]);
        let c = cand(1.5, vec![(vec![2], 10, 1)]);
        let sel = select_knapsack(&[a, b, c], &SelectConfig::with_budget(3.0));
        assert_eq!(sel.chosen.len(), 2);
        assert!(sel.total_area <= 3.0 + 1e-9);
    }

    #[test]
    fn dp_reports_interaction_aware_values() {
        // Both candidates cover the same op: only one may claim it.
        let a = cand(1.0, vec![(vec![7], 50, 2)]);
        let b = cand(1.0, vec![(vec![7], 50, 1)]);
        let sel = select_knapsack(&[a, b], &SelectConfig::with_budget(10.0));
        // Even if the DP packs both, the claimed value counts once.
        assert_eq!(sel.total_value, 100);
    }

    #[test]
    fn zero_budget_selects_nothing() {
        let a = cand(1.0, vec![(vec![0], 10, 1)]);
        let sel = select_knapsack(&[a], &SelectConfig::with_budget(0.0));
        assert!(sel.chosen.is_empty());
    }
}
