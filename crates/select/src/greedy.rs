//! CFU selection: the greedy value/cost knapsack of Figure 4.
//!
//! Selection resembles 0/1 knapsack — CFUs have values (estimated cycle
//! savings) and weights (die area) — with the crucial twist that "the
//! values of all the other CFUs change once a CFU is selected": an
//! operation can appear in many candidates but may only be claimed by one.
//! The paper's heuristic greedily takes the best value/cost candidate,
//! claims the operations of its surviving occurrences, re-derives every
//! other candidate's value from its still-live occurrences, and repeats
//! until the budget is exhausted.
//!
//! Once a CFU is selected, candidates it subsumes (or wildcards of it)
//! become nearly free: "the costs of the subsumed subgraphs and wildcards
//! are updated to reflect that they can now be added for very little
//! overhead" (§3.4).

use crate::combine::CfuCandidate;
use std::collections::HashSet;

/// What the greedy comparator maximizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// `value / cost` — the paper's default; wins at low budgets.
    ValuePerArea,
    /// Raw value — the ablation variant; wins at high budgets.
    Value,
}

/// Selection parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectConfig {
    /// Total area budget, in adder units (the x-axis of Figure 7).
    pub budget: f64,
    /// Greedy objective.
    pub objective: Objective,
    /// Area charged for a candidate some already-selected CFU subsumes:
    /// the hardware exists; only decode overhead remains.
    pub subsumed_cost: f64,
    /// Fraction of a candidate's area charged when a wildcard partner is
    /// already selected (shared datapath, extra opcode mux).
    pub wildcard_cost_factor: f64,
}

impl SelectConfig {
    /// Budget-only constructor with the paper's defaults.
    pub fn with_budget(budget: f64) -> Self {
        SelectConfig {
            budget,
            objective: Objective::ValuePerArea,
            subsumed_cost: 0.05,
            wildcard_cost_factor: 0.10,
        }
    }
}

/// One selected CFU, in selection (priority) order.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectedCfu {
    /// Index into the candidate list passed to selection.
    pub candidate: usize,
    /// Selection rank (0 = chosen first). "Custom instruction replacement
    /// in the compiler happens in the same order that CFUs are selected."
    pub priority: usize,
    /// Interaction-aware value at the moment of selection (cycles saved).
    pub estimated_value: u64,
    /// Area actually charged against the budget (discounted for subsumed
    /// and wildcard candidates).
    pub charged_area: f64,
}

/// The result of a selection run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Selection {
    /// Chosen CFUs in priority order.
    pub chosen: Vec<SelectedCfu>,
    /// Total charged area.
    pub total_area: f64,
    /// Total estimated cycles saved.
    pub total_value: u64,
    /// Resource-governance records: non-empty iff the selection was cut
    /// short by a work budget or a contained fault. The chosen list is
    /// then a sound prefix of the ungoverned greedy order.
    pub degradations: Vec<isax_guard::Degradation>,
    /// Provenance events (`SelectedAsCfu`/`SubsumedBy`/`Wildcarded`),
    /// non-empty only when [`isax_prov::enabled`] is set. Derived from
    /// the chosen list by `Customizer::select`, after the algorithm runs,
    /// so recording can never influence the selection.
    pub prov: isax_prov::ProvLog,
}

impl Selection {
    /// Indices of the chosen candidates, in priority order.
    pub fn candidate_indices(&self) -> Vec<usize> {
        self.chosen.iter().map(|c| c.candidate).collect()
    }
}

/// Floor on any candidate's cost, so zero-area patterns (pure wiring)
/// cannot produce infinite value/cost ratios.
const MIN_COST: f64 = 0.05;

/// Value the candidate would actually deliver if selected now: simulate
/// the claiming pass over its occurrences, so occurrences of the *same*
/// candidate that overlap each other (e.g. a pattern repeated with one
/// shared operation) are not double counted.
fn live_value(c: &CfuCandidate, claimed: &HashSet<(usize, usize)>) -> u64 {
    let mut tentative: HashSet<(usize, usize)> = HashSet::new();
    let mut total = 0;
    for o in &c.occurrences {
        let free = o
            .nodes
            .iter()
            .all(|n| !claimed.contains(&(o.dfg, n)) && !tentative.contains(&(o.dfg, n)));
        if free {
            total += o.value();
            for n in o.nodes.iter() {
                tentative.insert((o.dfg, n));
            }
        }
    }
    total
}

fn charged_cost(idx: usize, cands: &[CfuCandidate], selected: &[usize], cfg: &SelectConfig) -> f64 {
    let area = cands[idx].area.max(MIN_COST);
    if selected.iter().any(|&s| cands[s].subsumes.contains(&idx)) {
        return cfg.subsumed_cost.max(MIN_COST);
    }
    if selected
        .iter()
        .any(|&s| cands[s].wildcard_partners.contains(&idx))
    {
        return (area * cfg.wildcard_cost_factor).max(MIN_COST);
    }
    area
}

/// Runs the greedy selection of Figure 4.
///
/// # Example
///
/// ```
/// use isax_explore::{explore_app, ExploreConfig};
/// use isax_hwlib::HwLibrary;
/// use isax_ir::{function_dfgs, FunctionBuilder};
/// use isax_select::{combine, select_greedy, SelectConfig};
///
/// let mut fb = FunctionBuilder::new("f", 3);
/// fb.set_entry_weight(1_000);
/// let (a, b, c) = (fb.param(0), fb.param(1), fb.param(2));
/// let t = fb.xor(a, b);
/// let u = fb.shl(t, 2i64);
/// let v = fb.add(u, c);
/// fb.ret(&[v.into()]);
/// let dfgs = function_dfgs(&fb.finish());
/// let hw = HwLibrary::micron_018();
/// let found = explore_app(&dfgs, &hw, &ExploreConfig::default());
/// let cfus = combine(&dfgs, &found.candidates, &hw);
///
/// let sel = select_greedy(&cfus, &SelectConfig::with_budget(4.0));
/// assert!(!sel.chosen.is_empty());
/// assert!(sel.total_area <= 4.0);
/// ```
pub fn select_greedy(cands: &[CfuCandidate], cfg: &SelectConfig) -> Selection {
    let mut meter = isax_guard::Meter::unlimited(isax_guard::Stage::Select, 0);
    select_greedy_metered(cands, cfg, &mut meter)
}

/// [`select_greedy`] under a work-unit meter: one unit per candidate
/// evaluation in the greedy scan. On exhaustion the scan stops and the
/// CFUs already chosen are returned — a prefix of the ungoverned greedy
/// order, which is always a sound (if smaller) selection. The caller
/// turns the meter's state into a [`isax_guard::Degradation`] record.
pub fn select_greedy_metered(
    cands: &[CfuCandidate],
    cfg: &SelectConfig,
    meter: &mut isax_guard::Meter,
) -> Selection {
    meter.touch();
    let mut claimed: HashSet<(usize, usize)> = HashSet::new();
    let mut selected_idx: Vec<usize> = Vec::new();
    let mut out = Selection::default();
    let mut remaining = cfg.budget;
    'rounds: loop {
        let mut best: Option<(usize, u64, f64)> = None; // (idx, value, cost)
        for (i, c) in cands.iter().enumerate() {
            if selected_idx.contains(&i) {
                continue;
            }
            // A candidate evaluation (cost + live value) is one work
            // unit. Exhaustion mid-scan discards the partial scan: the
            // chosen list stays a prefix of complete greedy rounds.
            if !meter.charge(1) {
                break 'rounds;
            }
            let cost = charged_cost(i, cands, &selected_idx, cfg);
            if cost > remaining {
                continue;
            }
            let value = live_value(c, &claimed);
            if value == 0 {
                continue;
            }
            let better = match best {
                None => true,
                Some((bi, bv, bc)) => {
                    let (a, b) = match cfg.objective {
                        Objective::ValuePerArea => (value as f64 * bc, bv as f64 * cost),
                        Objective::Value => (value as f64, bv as f64),
                    };
                    a > b || (a == b && (cost < bc || (cost == bc && i < bi)))
                }
            };
            if better {
                best = Some((i, value, cost));
            }
        }
        let Some((idx, value, cost)) = best else {
            break;
        };
        // Claim the operations of the surviving occurrences.
        for o in &cands[idx].occurrences {
            if o.nodes.iter().all(|n| !claimed.contains(&(o.dfg, n))) {
                for n in o.nodes.iter() {
                    claimed.insert((o.dfg, n));
                }
            }
        }
        remaining -= cost;
        out.total_area += cost;
        out.total_value += value;
        out.chosen.push(SelectedCfu {
            candidate: idx,
            priority: out.chosen.len(),
            estimated_value: value,
            charged_area: cost,
        });
        selected_idx.push(idx);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combine::{combine, Occurrence};
    use isax_explore::{explore_app, ExploreConfig};
    use isax_graph::{BitSet, DiGraph};
    use isax_hwlib::HwLibrary;
    use isax_ir::{function_dfgs, DfgLabel, FunctionBuilder, Opcode};

    /// Hand-built candidate for focused selection tests.
    fn cand(ops: &[Opcode], area: f64, occs: Vec<(usize, Vec<usize>, u64, u64)>) -> CfuCandidate {
        let mut pattern = DiGraph::new();
        let mut prev = None;
        for &op in ops {
            let n = pattern.add_node(DfgLabel {
                opcode: op,
                imms: vec![],
            });
            if let Some(p) = prev {
                pattern.add_edge(p, n, 0);
            }
            prev = Some(n);
        }
        let fingerprint = crate::combine::pattern_fingerprint(&pattern);
        CfuCandidate {
            pattern,
            fingerprint,
            delay: 0.5,
            area,
            inputs: 2,
            outputs: 1,
            hw_cycles: 1,
            occurrences: occs
                .into_iter()
                .map(|(dfg, nodes, weight, savings)| Occurrence {
                    dfg,
                    nodes: nodes.into_iter().collect::<BitSet>(),
                    weight,
                    savings_per_exec: savings,
                })
                .collect(),
            subsumes: vec![],
            wildcard_partners: vec![],
        }
    }

    #[test]
    fn metered_selection_is_a_prefix_of_the_ungoverned_order() {
        let cands: Vec<CfuCandidate> = (0..6)
            .map(|i| {
                cand(
                    &[Opcode::Shl, Opcode::And],
                    0.5,
                    vec![(0, vec![10 * i, 10 * i + 1], 50 + i as u64, 2)],
                )
            })
            .collect();
        let cfg = SelectConfig::with_budget(100.0);
        let full = select_greedy(&cands, &cfg);
        assert_eq!(full.chosen.len(), 6);
        assert!(full.degradations.is_empty());
        // One full round over 6 candidates costs 6 units; allow two
        // complete rounds, then exhaust during the third.
        let mut meter = isax_guard::Meter::with_limit(isax_guard::Stage::Select, 0, 13);
        let partial = select_greedy_metered(&cands, &cfg, &mut meter);
        assert!(meter.exhausted());
        assert_eq!(partial.chosen.len(), 2, "two complete greedy rounds");
        assert_eq!(
            &full.chosen[..2],
            &partial.chosen[..],
            "prefix of the ungoverned greedy order"
        );
    }

    #[test]
    fn zero_budget_meter_selects_nothing_but_terminates() {
        let cands = vec![cand(&[Opcode::Shl], 0.5, vec![(0, vec![1], 10, 1)])];
        let mut meter = isax_guard::Meter::with_limit(isax_guard::Stage::Select, 0, 0);
        let sel = select_greedy_metered(&cands, &SelectConfig::with_budget(10.0), &mut meter);
        assert!(sel.chosen.is_empty());
        assert!(meter.exhausted());
    }

    #[test]
    fn claiming_prevents_double_counting() {
        // The paper's example: 7-10-13-16 selected first must zero out
        // 7-10-13 (all of its ops are claimed).
        let big = cand(
            &[Opcode::Shl, Opcode::And, Opcode::Add, Opcode::Xor],
            1.5,
            vec![(0, vec![7, 10, 13, 16], 100, 3)],
        );
        let small = cand(
            &[Opcode::Shl, Opcode::And, Opcode::Add],
            1.4,
            vec![(0, vec![7, 10, 13], 100, 2)],
        );
        let sel = select_greedy(&[big, small], &SelectConfig::with_budget(100.0));
        assert_eq!(
            sel.chosen.len(),
            1,
            "the overlapped candidate has no value left"
        );
        assert_eq!(sel.chosen[0].candidate, 0);
        assert_eq!(sel.total_value, 300);
    }

    #[test]
    fn partial_overlap_updates_value() {
        // Figure 4: after CFU 2 claims op 3, CFU 1 keeps only its
        // non-overlapping occurrence value.
        let cfu2 = cand(
            &[Opcode::And, Opcode::Add],
            0.5,
            vec![(0, vec![1, 7], 10, 2), (0, vec![3, 9], 5, 2)],
        );
        let cfu1 = cand(
            &[Opcode::Xor, Opcode::Or],
            0.5,
            vec![(0, vec![3, 4], 8, 2), (0, vec![20, 21], 8, 2)],
        );
        let sel = select_greedy(
            &[cfu2.clone(), cfu1.clone()],
            &SelectConfig::with_budget(100.0),
        );
        assert_eq!(sel.chosen.len(), 2);
        // cfu2 first (value 30 > 32? no: cfu1 initial value 32) —
        // whichever is first, the other's overlapping occurrence dies.
        let total: u64 = sel.chosen.iter().map(|c| c.estimated_value).sum();
        // Optimal here: cfu1 first (32), then cfu2 loses occurrence {3,9}
        // (op 3 claimed): 20. Or cfu2 first (30) then cfu1 gets 16.
        assert_eq!(total, 32 + 20);
    }

    #[test]
    fn budget_is_enforced() {
        let a = cand(
            &[Opcode::Add, Opcode::Add],
            2.0,
            vec![(0, vec![0, 1], 100, 1)],
        );
        let b = cand(
            &[Opcode::Sub, Opcode::Sub],
            2.0,
            vec![(0, vec![2, 3], 90, 1)],
        );
        let c = cand(
            &[Opcode::And, Opcode::Or],
            2.0,
            vec![(0, vec![4, 5], 80, 1)],
        );
        let sel = select_greedy(&[a, b, c], &SelectConfig::with_budget(4.0));
        assert_eq!(sel.chosen.len(), 2);
        assert!(sel.total_area <= 4.0);
    }

    #[test]
    fn ratio_beats_value_at_low_budget() {
        // A huge but inefficient CFU vs two small efficient ones.
        let huge = cand(
            &[Opcode::Add; 5],
            5.0,
            vec![(0, vec![0, 1, 2, 3, 4], 100, 4)],
        );
        let small1 = cand(
            &[Opcode::Xor, Opcode::Shl],
            0.2,
            vec![(0, vec![10, 11], 100, 1)],
        );
        let small2 = cand(
            &[Opcode::Or, Opcode::Shr],
            0.2,
            vec![(0, vec![12, 13], 100, 1)],
        );
        let cands = [huge, small1, small2];

        let ratio = select_greedy(&cands, &SelectConfig::with_budget(5.0));
        // ratio picks the two smalls first (ratio 500 each vs 80), then
        // cannot afford the huge one.
        assert_eq!(ratio.total_value, 200);

        let value = select_greedy(
            &cands,
            &SelectConfig {
                objective: Objective::Value,
                ..SelectConfig::with_budget(5.0)
            },
        );
        // value grabs the huge one (400) and has no room left.
        assert_eq!(value.total_value, 400);
    }

    #[test]
    fn subsumed_candidates_become_cheap_after_selection() {
        let mut big = cand(
            &[Opcode::And, Opcode::Add, Opcode::Shl],
            10.0,
            vec![(0, vec![0, 1, 2], 100, 2)],
        );
        big.subsumes = vec![1];
        let small = cand(
            &[Opcode::And, Opcode::Shl],
            9.0,
            vec![(0, vec![5, 6], 50, 1)],
        );
        // Budget fits the big one plus *discounted* small, not 10 + 9.
        let sel = select_greedy(&[big, small], &SelectConfig::with_budget(11.0));
        assert_eq!(sel.chosen.len(), 2);
        assert!(sel.chosen[1].charged_area < 1.0);
    }

    #[test]
    fn wildcard_partners_are_discounted() {
        let mut a = cand(
            &[Opcode::Xor, Opcode::Add],
            4.0,
            vec![(0, vec![0, 1], 100, 1)],
        );
        a.wildcard_partners = vec![1];
        let mut b = cand(
            &[Opcode::Xor, Opcode::Sub],
            4.0,
            vec![(0, vec![5, 6], 60, 1)],
        );
        b.wildcard_partners = vec![0];
        let sel = select_greedy(&[a, b], &SelectConfig::with_budget(5.0));
        assert_eq!(sel.chosen.len(), 2, "partner fits thanks to the discount");
        assert!((sel.chosen[1].charged_area - 0.4).abs() < 1e-9);
    }

    #[test]
    fn zero_value_candidates_are_never_selected() {
        let useless = cand(&[Opcode::Mov], 0.0, vec![(0, vec![0], 100, 0)]);
        let sel = select_greedy(&[useless], &SelectConfig::with_budget(10.0));
        assert!(sel.chosen.is_empty());
    }

    #[test]
    fn end_to_end_selection_from_real_kernel() {
        let mut fb = FunctionBuilder::new("k", 3);
        fb.set_entry_weight(10_000);
        let (a, b, k) = (fb.param(0), fb.param(1), fb.param(2));
        let t = fb.xor(a, k);
        let l = fb.shl(t, 5i64);
        let r = fb.shr(t, 27i64);
        let rot = fb.or(l, r);
        let s = fb.add(rot, b);
        fb.ret(&[s.into()]);
        let dfgs = function_dfgs(&fb.finish());
        let hw = HwLibrary::micron_018();
        let found = explore_app(&dfgs, &hw, &ExploreConfig::default());
        let cfus = combine(&dfgs, &found.candidates, &hw);
        let sel = select_greedy(&cfus, &SelectConfig::with_budget(15.0));
        assert!(!sel.chosen.is_empty());
        // Ratio-greedy prefers the tiny rotate diamond (2 cycles saved at
        // ~0.16 adders) over the full 5-op subgraph (4 cycles at ~1.3
        // adders), then picks up the remaining or+add pair.
        let top = &cfus[sel.chosen[0].candidate];
        assert_eq!(top.describe(), "shl-shr-xor");
        assert_eq!(sel.chosen[0].estimated_value, 2 * 10_000);
        // The or+add remainder is claimed next; together they recover 3 of
        // the 4 available cycles per iteration.
        assert_eq!(sel.total_value, 3 * 10_000);
    }
}
