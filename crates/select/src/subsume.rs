//! Subsumed subgraphs via identity contraction.
//!
//! "Subsumed subgraphs take advantage of the fact that most atomic
//! operations have an associated identity input, allowing values to pass
//! through a node without changing" (§3.3). If hardware implements
//! `AND → ADD → SHL`, it can also execute `AND → SHL` by feeding the ADD a
//! zero: the ADD is *bypassed*.
//!
//! A **contraction step** removes one bypassable node from a pattern and
//! rewires the value that passes through it. The **contraction closure**
//! of a CFU pattern is every smaller pattern reachable by such steps; a
//! CFU *subsumes* every candidate whose pattern appears in its closure.
//! The compiler matches closure patterns in applications and maps them
//! onto the subsuming hardware — the mechanism behind the black bar
//! segments of Figures 8 and 9.

use crate::combine::{pattern_fingerprint, patterns_equivalent, CfuCandidate};
use isax_graph::{par, DiGraph, Fingerprint, NodeId};
use isax_ir::DfgLabel;
use std::collections::HashMap;

/// Maximum closure size used when none is specified.
pub const DEFAULT_CLOSURE_CAP: usize = 128;

/// True if node `v` of `pattern` can be bypassed, returning the internal
/// pass-through producer if there is one (`None` means the passed value is
/// an external input).
///
/// Conditions: the opcode has an identity element; the identity port has
/// no internal producer and no conflicting hardwired constant; the pass
/// port carries a real value (not a hardwired constant).
fn bypass_source(pattern: &DiGraph<DfgLabel>, v: NodeId) -> Option<Option<(NodeId, u8)>> {
    let label = &pattern[v];
    let (pass_canon, ident) = label.opcode.identity()?;
    debug_assert_eq!(pass_canon, 0);
    // Candidate (pass, identity) port assignments.
    let mut options: Vec<(u8, u8)> = vec![(0, 1)];
    if label.opcode.is_commutative() {
        options.push((1, 0));
    }
    let internal_in = |port: u8| pattern.preds(v).find(|e| e.port == port).map(|e| e.src);
    let imm_at = |port: u8| {
        label
            .imms
            .iter()
            .find(|&&(p, _)| p == port)
            .map(|&(_, v)| v)
    };
    for (pass, idp) in options {
        if internal_in(idp).is_some() {
            continue; // identity port is fed by the pattern: cannot constant it
        }
        match imm_at(idp) {
            Some(c) if c as u32 != ident => continue, // wrong hardwired constant
            _ => {}
        }
        if imm_at(pass).is_some() {
            continue; // the passed value must be a live value, not a constant
        }
        return Some(internal_in(pass).map(|u| (u, pass)));
    }
    None
}

/// Performs one contraction: removes `v` and rewires its consumers to the
/// pass-through source (or makes them external inputs). Returns `None`
/// when `v` is not bypassable or the result would be empty/disconnected.
pub fn contract_once(pattern: &DiGraph<DfgLabel>, v: NodeId) -> Option<DiGraph<DfgLabel>> {
    if pattern.node_count() <= 1 {
        return None;
    }
    let pass = bypass_source(pattern, v)?;
    // Build the graph without v.
    let mut g = DiGraph::with_capacity(pattern.node_count() - 1);
    let mut remap = vec![None; pattern.node_count()];
    for n in pattern.node_ids() {
        if n != v {
            remap[n.index()] = Some(g.add_node(pattern[n].clone()));
        }
    }
    for e in pattern.edges() {
        if e.src == v || e.dst == v {
            continue;
        }
        g.add_edge(
            remap[e.src.index()].unwrap(),
            remap[e.dst.index()].unwrap(),
            e.port,
        );
    }
    if let Some((u, _)) = pass {
        // The pass-through producer now feeds v's consumers directly.
        for e in pattern.succs(v) {
            if e.dst == v {
                continue; // self-loop cannot occur in a DFG, but stay safe
            }
            g.add_edge(
                remap[u.index()].unwrap(),
                remap[e.dst.index()].unwrap(),
                e.port,
            );
        }
    }
    // Pass source external: v's consumers simply read an external input,
    // i.e. the edges disappear.
    if !g.is_weakly_connected() {
        return None;
    }
    Some(g)
}

/// Computes the contraction closure of a pattern: every distinct smaller
/// pattern obtainable by repeatedly bypassing identity nodes, capped at
/// `cap` members. The original pattern is **not** included.
///
/// # Example
///
/// ```
/// use isax_graph::DiGraph;
/// use isax_ir::{DfgLabel, Opcode};
/// use isax_select::subsume::contraction_closure;
///
/// // and -> add -> shl#2 : the add can be bypassed with +0, the and with
/// // &~0, so the closure holds and->shl, add->shl, shl, and-add, ...
/// let lab = |op| DfgLabel { opcode: op, imms: vec![] };
/// let mut p = DiGraph::new();
/// let a = p.add_node(lab(Opcode::And));
/// let b = p.add_node(lab(Opcode::Add));
/// let c = p.add_node(DfgLabel { opcode: Opcode::Shl, imms: vec![(1, 2)] });
/// p.add_edge(a, b, 0);
/// p.add_edge(b, c, 0);
///
/// let closure = contraction_closure(&p, 64);
/// assert!(closure.iter().any(|g| g.node_count() == 2));
/// assert!(closure.iter().any(|g| g.node_count() == 1));
/// ```
pub fn contraction_closure(pattern: &DiGraph<DfgLabel>, cap: usize) -> Vec<DiGraph<DfgLabel>> {
    let mut seen: HashMap<Fingerprint, Vec<usize>> = HashMap::new();
    let mut out: Vec<DiGraph<DfgLabel>> = Vec::new();
    let mut queue: Vec<DiGraph<DfgLabel>> = vec![pattern.clone()];
    let root_fp = pattern_fingerprint(pattern);
    while let Some(g) = queue.pop() {
        if out.len() >= cap {
            break;
        }
        for v in g.node_ids() {
            let Some(c) = contract_once(&g, v) else {
                continue;
            };
            let fp = pattern_fingerprint(&c);
            if fp == root_fp && patterns_equivalent(&c, pattern) {
                continue;
            }
            let bucket = seen.entry(fp).or_default();
            if bucket.iter().any(|&i| patterns_equivalent(&out[i], &c)) {
                continue;
            }
            bucket.push(out.len());
            out.push(c.clone());
            if out.len() >= cap {
                return out;
            }
            queue.push(c);
        }
    }
    out
}

/// Fills in [`CfuCandidate::subsumes`] for every candidate: `i` subsumes
/// `j` when `j`'s pattern appears in `i`'s contraction closure.
///
/// Each candidate's closure is independent of every other's, so the
/// closures are computed in parallel against a read-only view of the
/// slice and written back afterwards; the result is identical to the
/// serial loop for any thread count.
pub fn mark_subsumptions(cands: &mut [CfuCandidate], cap: usize) {
    // Index candidates by fingerprint for O(1) closure lookups.
    let mut by_fp: HashMap<Fingerprint, Vec<usize>> = HashMap::new();
    for (i, c) in cands.iter().enumerate() {
        by_fp.entry(c.fingerprint).or_default().push(i);
    }
    let view: &[CfuCandidate] = cands;
    let subsumed_lists = par::par_map_indexed(view.len(), |i| {
        if view[i].pattern.node_count() < 2 {
            return Vec::new();
        }
        let closure = contraction_closure(&view[i].pattern, cap);
        let mut subsumed: Vec<usize> = Vec::new();
        for g in &closure {
            let fp = pattern_fingerprint(g);
            if let Some(matches) = by_fp.get(&fp) {
                for &j in matches {
                    if j != i && patterns_equivalent(&view[j].pattern, g) {
                        subsumed.push(j);
                    }
                }
            }
        }
        subsumed.sort_unstable();
        subsumed.dedup();
        subsumed
    });
    for (c, s) in cands.iter_mut().zip(subsumed_lists) {
        c.subsumes = s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isax_ir::Opcode;

    fn lab(op: Opcode) -> DfgLabel {
        DfgLabel {
            opcode: op,
            imms: vec![],
        }
    }

    /// and -> add -> shl (variable shift) chain.
    fn chain() -> DiGraph<DfgLabel> {
        let mut p = DiGraph::new();
        let a = p.add_node(lab(Opcode::And));
        let b = p.add_node(lab(Opcode::Add));
        let c = p.add_node(lab(Opcode::Shl));
        p.add_edge(a, b, 0);
        p.add_edge(b, c, 0);
        p
    }

    #[test]
    fn paper_example_and_add_shl() {
        // "if CFU 'AND-ADD->>' was discovered, CFU 'AND->>' can be executed
        //  on the same hardware ... CFUs 'AND-ADD' and 'ADD->>' would also
        //  be recorded as being subsumed"
        let closure = contraction_closure(&chain(), 64);
        let descs: std::collections::BTreeSet<String> = closure
            .iter()
            .map(|g| {
                let mut names: Vec<&str> = g.node_ids().map(|n| g[n].opcode.mnemonic()).collect();
                names.sort_unstable();
                names.join("-")
            })
            .collect();
        assert!(descs.contains("and-shl"), "descs: {descs:?}");
        assert!(descs.contains("add-shl"), "AND bypassed with all-ones");
        assert!(descs.contains("add-and"), "SHL bypassed with shift 0");
        assert!(descs.contains("and"));
        assert!(descs.contains("add"));
        assert!(descs.contains("shl"));
    }

    #[test]
    fn sub_subtrahend_side_cannot_pass() {
        // x - y: only the minuend (port 0) passes through with y = 0. A
        // producer feeding port 1 of the sub cannot be wired through.
        let mut p = DiGraph::new();
        let x = p.add_node(lab(Opcode::Xor));
        let s = p.add_node(lab(Opcode::Sub));
        p.add_edge(x, s, 1); // xor feeds the subtrahend
        let closure = contraction_closure(&p, 16);
        // Bypassing the sub is impossible (its pass port 0 is external but
        // the *identity port* 1 is fed internally); bypassing the xor
        // (identity 0 on either port, commutative) gives a single sub.
        assert!(closure
            .iter()
            .all(|g| !(g.node_count() == 1 && g[NodeId(0)].opcode == Opcode::Xor)));
        assert!(closure
            .iter()
            .any(|g| g.node_count() == 1 && g[NodeId(0)].opcode == Opcode::Sub));
    }

    #[test]
    fn hardwired_nonidentity_constant_blocks_bypass() {
        // add #5 cannot be bypassed: its free port has constant 5, not 0.
        let mut p = DiGraph::new();
        let a = p.add_node(lab(Opcode::And));
        let b = p.add_node(DfgLabel {
            opcode: Opcode::Add,
            imms: vec![(1, 5)],
        });
        p.add_edge(a, b, 0);
        let closure = contraction_closure(&p, 16);
        assert!(
            closure
                .iter()
                .all(|g| !(g.node_count() == 1 && g[NodeId(0)].opcode == Opcode::And)),
            "the add+5 must not vanish"
        );
    }

    #[test]
    fn select_has_no_identity() {
        let mut p = DiGraph::new();
        let a = p.add_node(lab(Opcode::And));
        let s = p.add_node(lab(Opcode::Select));
        p.add_edge(a, s, 1);
        let closure = contraction_closure(&p, 16);
        assert!(closure
            .iter()
            .all(|g| !(g.node_count() == 1 && g[NodeId(0)].opcode == Opcode::And)));
    }

    #[test]
    fn diamond_contraction_preserves_connectivity() {
        // xor -> {shl#3, shr#29} -> or. Bypassing shl#3 (shift 0 identity
        // ... wait, its amount is hardwired to 3) is blocked; bypassing the
        // or would disconnect nothing since both inputs are internal — the
        // or's identity port is fed internally, so it is not bypassable.
        let mut p = DiGraph::new();
        let x = p.add_node(lab(Opcode::Xor));
        let l = p.add_node(DfgLabel {
            opcode: Opcode::Shl,
            imms: vec![(1, 3)],
        });
        let r = p.add_node(DfgLabel {
            opcode: Opcode::Shr,
            imms: vec![(1, 29)],
        });
        let o = p.add_node(lab(Opcode::Or));
        p.add_edge(x, l, 0);
        p.add_edge(x, r, 0);
        p.add_edge(l, o, 0);
        p.add_edge(r, o, 1);
        let closure = contraction_closure(&p, 64);
        // Only the xor is bypassable (commutative, both inputs external):
        // closure = { shl+shr+or }.
        assert_eq!(closure.len(), 1);
        assert_eq!(closure[0].node_count(), 3);
    }

    #[test]
    fn closure_cap_is_respected() {
        // A long add chain has an exponential closure; the cap bounds it.
        let mut p = DiGraph::new();
        let mut prev = p.add_node(lab(Opcode::Add));
        for _ in 0..8 {
            let n = p.add_node(lab(Opcode::Add));
            p.add_edge(prev, n, 0);
            prev = n;
        }
        let closure = contraction_closure(&p, 10);
        assert!(closure.len() <= 10);
    }

    #[test]
    fn mark_subsumptions_links_candidates() {
        use crate::combine::combine;
        use isax_explore::{explore_app, ExploreConfig};
        use isax_hwlib::HwLibrary;
        use isax_ir::{function_dfgs, FunctionBuilder};

        let mut fb = FunctionBuilder::new("f", 3);
        let (a, b, c) = (fb.param(0), fb.param(1), fb.param(2));
        // and -> add -> xor chain; its sub-chains are discovered too.
        let t = fb.and(a, b);
        let u = fb.add(t, c);
        let v = fb.xor(u, a);
        fb.ret(&[v.into()]);
        let dfgs = function_dfgs(&fb.finish());
        let hw = HwLibrary::micron_018();
        let found = explore_app(&dfgs, &hw, &ExploreConfig::default());
        let mut cfus = combine(&dfgs, &found.candidates, &hw);
        mark_subsumptions(&mut cfus, DEFAULT_CLOSURE_CAP);

        let full = cfus.iter().position(|c| c.size() == 3).unwrap();
        let and_only = cfus
            .iter()
            .position(|c| c.size() == 1 && c.describe() == "and")
            .unwrap();
        let and_add = cfus.iter().position(|c| c.describe() == "add-and").unwrap();
        assert!(cfus[full].subsumes.contains(&and_only));
        assert!(cfus[full].subsumes.contains(&and_add));
        assert!(cfus[and_only].subsumes.is_empty());
    }
}
