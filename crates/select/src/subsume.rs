//! Subsumed subgraphs via identity contraction.
//!
//! "Subsumed subgraphs take advantage of the fact that most atomic
//! operations have an associated identity input, allowing values to pass
//! through a node without changing" (§3.3). If hardware implements
//! `AND → ADD → SHL`, it can also execute `AND → SHL` by feeding the ADD a
//! zero: the ADD is *bypassed*.
//!
//! A **contraction step** removes one bypassable node from a pattern and
//! rewires the value that passes through it. The **contraction closure**
//! of a CFU pattern is every smaller pattern reachable by such steps; a
//! CFU *subsumes* every candidate whose pattern appears in its closure.
//! The compiler matches closure patterns in applications and maps them
//! onto the subsuming hardware — the mechanism behind the black bar
//! segments of Figures 8 and 9.

use crate::combine::{patterns_equivalent, patterns_identical_fast, CfuCandidate};
use isax_graph::{canon, par, DiGraph, NodeId};
use isax_ir::DfgLabel;
use std::collections::HashMap;

/// Maximum closure size used when none is specified.
pub const DEFAULT_CLOSURE_CAP: usize = 128;

/// True if node `v` of `pattern` can be bypassed, returning the internal
/// pass-through producer if there is one (`None` means the passed value is
/// an external input).
///
/// Conditions: the opcode has an identity element; the identity port has
/// no internal producer and no conflicting hardwired constant; the pass
/// port carries a real value (not a hardwired constant).
fn bypass_source(pattern: &DiGraph<DfgLabel>, v: NodeId) -> Option<Option<(NodeId, u8)>> {
    let label = &pattern[v];
    let (pass_canon, ident) = label.opcode.identity()?;
    debug_assert_eq!(pass_canon, 0);
    // Candidate (pass, identity) port assignments.
    const BOTH: [(u8, u8); 2] = [(0, 1), (1, 0)];
    let options = if label.opcode.is_commutative() {
        &BOTH[..]
    } else {
        &BOTH[..1]
    };
    let internal_in = |port: u8| pattern.preds(v).find(|e| e.port == port).map(|e| e.src);
    let imm_at = |port: u8| {
        label
            .imms
            .iter()
            .find(|&&(p, _)| p == port)
            .map(|&(_, v)| v)
    };
    for &(pass, idp) in options {
        if internal_in(idp).is_some() {
            continue; // identity port is fed by the pattern: cannot constant it
        }
        match imm_at(idp) {
            Some(c) if c as u32 != ident => continue, // wrong hardwired constant
            _ => {}
        }
        if imm_at(pass).is_some() {
            continue; // the passed value must be a live value, not a constant
        }
        return Some(internal_in(pass).map(|u| (u, pass)));
    }
    None
}

/// Performs one contraction: removes `v` and rewires its consumers to the
/// pass-through source (or makes them external inputs). Returns `None`
/// when `v` is not bypassable or the result would be empty/disconnected.
pub fn contract_once(pattern: &DiGraph<DfgLabel>, v: NodeId) -> Option<DiGraph<DfgLabel>> {
    if pattern.node_count() <= 1 {
        return None;
    }
    let pass = bypass_source(pattern, v)?;
    // Build the graph without v.
    let mut g = DiGraph::with_capacity(pattern.node_count() - 1);
    let mut remap = vec![None; pattern.node_count()];
    for n in pattern.node_ids() {
        if n != v {
            remap[n.index()] = Some(g.add_node(pattern[n].clone()));
        }
    }
    for e in pattern.edges() {
        if e.src == v || e.dst == v {
            continue;
        }
        g.add_edge(
            remap[e.src.index()].unwrap(),
            remap[e.dst.index()].unwrap(),
            e.port,
        );
    }
    if let Some((u, _)) = pass {
        // The pass-through producer now feeds v's consumers directly.
        for e in pattern.succs(v) {
            if e.dst == v {
                continue; // self-loop cannot occur in a DFG, but stay safe
            }
            g.add_edge(
                remap[u.index()].unwrap(),
                remap[e.dst.index()].unwrap(),
                e.port,
            );
        }
    }
    // Pass source external: v's consumers simply read an external input,
    // i.e. the edges disappear.
    if !g.is_weakly_connected() {
        return None;
    }
    Some(g)
}

/// Computes the contraction closure of a pattern: every distinct smaller
/// pattern obtainable by repeatedly bypassing identity nodes, capped at
/// `cap` members. The original pattern is **not** included.
///
/// # Example
///
/// ```
/// use isax_graph::DiGraph;
/// use isax_ir::{DfgLabel, Opcode};
/// use isax_select::subsume::contraction_closure;
///
/// // and -> add -> shl#2 : the add can be bypassed with +0, the and with
/// // &~0, so the closure holds and->shl, add->shl, shl, and-add, ...
/// let lab = |op| DfgLabel { opcode: op, imms: vec![] };
/// let mut p = DiGraph::new();
/// let a = p.add_node(lab(Opcode::And));
/// let b = p.add_node(lab(Opcode::Add));
/// let c = p.add_node(DfgLabel { opcode: Opcode::Shl, imms: vec![(1, 2)] });
/// p.add_edge(a, b, 0);
/// p.add_edge(b, c, 0);
///
/// let closure = contraction_closure(&p, 64);
/// assert!(closure.iter().any(|g| g.node_count() == 2));
/// assert!(closure.iter().any(|g| g.node_count() == 1));
/// ```
pub fn contraction_closure(pattern: &DiGraph<DfgLabel>, cap: usize) -> Vec<DiGraph<DfgLabel>> {
    closure_keyed(pattern, cap)
        .into_iter()
        .map(|(g, _)| g)
        .collect()
}

/// Cheap structural key of `g` from precomputed per-node label keys and
/// commutativity flags (see [`canon::multiset_key`]). Used only to bucket
/// equality candidates — every hit is confirmed exactly, so collisions
/// cost a VF2 call, never a wrong answer.
fn key_from_keys(g: &DiGraph<DfgLabel>, keys: &[u64], comm: &[bool]) -> u64 {
    canon::multiset_key(g, |v| keys[v.index()], |v| comm[v.index()])
}

/// A closure member: the contracted graph, its cheap structural key, and
/// its sorted `(src, dst, port)` edge triples, cached so duplicate
/// attempts can compare against it without building anything.
struct Member {
    graph: DiGraph<DfgLabel>,
    key: u64,
    sorted_edges: Vec<(usize, usize, u8)>,
}

/// [`contraction_closure`] that also returns each member's cheap
/// structural key, computed once per member while the closure is built.
///
/// Label keys are hashed once at the root and *remapped* through each
/// contraction ([`contract_once`] preserves relative node order, so a
/// contraction's key vector is the parent's with the bypassed entry
/// removed) — the closure walk does no label-string hashing and no WL
/// refinement at all. Every member is strictly smaller than the root (a
/// contraction removes a node), so no root-equality check is needed.
///
/// Most contraction attempts rediscover a member already reached via a
/// different bypass order, so the walk works *prospectively*: it
/// enumerates the contraction's edge triples into a scratch buffer,
/// derives the structural key from them, and compares labels and edges
/// exactly against the key bucket's cached members — the
/// `patterns_identical_fast` relation, graph-build-free. Only genuinely
/// new shapes (or the rare same-key cousin that needs a VF2 verdict) pay
/// for graph construction.
fn closure_keyed(pattern: &DiGraph<DfgLabel>, cap: usize) -> Vec<(DiGraph<DfgLabel>, u64)> {
    let root_keys: Vec<u64> = pattern.node_ids().map(|n| pattern[n].key()).collect();
    let root_comm: Vec<bool> = pattern
        .node_ids()
        .map(|n| pattern[n].opcode.is_commutative())
        .collect();
    let mut seen: HashMap<u64, Vec<usize>, canon::PremixedState> = HashMap::default();
    let mut out: Vec<Member> = Vec::new();
    let mut scratch_edges: Vec<(usize, usize, u8)> = Vec::new();
    // Queue entries reference closure members by index into `out`
    // (`usize::MAX` = the root pattern), so a member's graph is stored
    // exactly once and never cloned. The last tuple field carries the
    // entry's mixed node-key sum so each attempt derives its node term by
    // one subtraction instead of a rescan.
    const ROOT: usize = usize::MAX;
    let root_total = root_keys
        .iter()
        .fold(0u64, |acc, &k| acc.wrapping_add(canon::mix(k)));
    let mut queue: Vec<(usize, Vec<u64>, Vec<bool>, u64)> =
        vec![(ROOT, root_keys, root_comm, root_total)];
    while let Some((gi, keys, comm, key_total)) = queue.pop() {
        if out.len() >= cap {
            break;
        }
        let nodes = if gi == ROOT {
            pattern.node_count()
        } else {
            out[gi].graph.node_count()
        };
        if nodes <= 1 {
            continue; // nothing left to contract
        }
        for vi in 0..nodes {
            let v = NodeId(vi as u32);
            let g = if gi == ROOT { pattern } else { &out[gi].graph };
            let Some(pass) = bypass_source(g, v) else {
                continue;
            };
            // Prospective contraction, without building the graph:
            // surviving position `p` was parent node `orig(p)`.
            let orig = |p: usize| p + usize::from(p >= vi);
            let remap = |n: NodeId| n.index() - usize::from(n.index() > vi);
            scratch_edges.clear();
            for e in g.edges() {
                if e.src == v || e.dst == v {
                    continue;
                }
                scratch_edges.push((remap(e.src), remap(e.dst), e.port));
            }
            if let Some((u, _)) = pass {
                for e in g.succs(v) {
                    if e.dst == v {
                        continue;
                    }
                    scratch_edges.push((remap(u), remap(e.dst), e.port));
                }
            }
            scratch_edges.sort_unstable();
            // The structural key from the surviving nodes and the scratch
            // edges — identical to `key_from_keys` on the built graph.
            let node_acc = key_total.wrapping_sub(canon::mix(keys[vi]));
            let mut edge_acc = 0u64;
            for &(s, d, p) in &scratch_edges {
                let port = if comm[orig(d)] {
                    canon::COMMUTATIVE_PORT
                } else {
                    p as u64
                };
                edge_acc = edge_acc.wrapping_add(canon::mix(canon::combine(
                    canon::combine(keys[orig(s)], keys[orig(d)]),
                    port,
                )));
            }
            let key = canon::mix(canon::combine(
                canon::combine((nodes - 1) as u64, scratch_edges.len() as u64),
                node_acc.wrapping_add(edge_acc),
            ));
            // Exact duplicate test against the bucket's cached members:
            // same positional labels (compared as labels, not hashes) and
            // same sorted edge triples.
            let identical = |m: &Member| {
                m.graph.node_count() == nodes - 1
                    && m.sorted_edges == scratch_edges
                    && m.graph
                        .node_ids()
                        .all(|p| m.graph[p] == g[NodeId(orig(p.index()) as u32)])
            };
            let bucket = seen.get(&key);
            if let Some(b) = bucket {
                if b.iter().any(|&i| identical(&out[i])) {
                    continue;
                }
            }
            // New shape (or a same-key cousin needing a VF2 verdict):
            // build it straight from the surviving labels and the scratch
            // edge triples — the same graph `contract_once` would produce,
            // without re-deriving the bypass or remapping twice. A
            // contraction that disconnects the pattern is discarded, as in
            // `contract_once`.
            let mut c = DiGraph::with_capacity(nodes - 1);
            for p in 0..nodes - 1 {
                c.add_node(g[NodeId(orig(p) as u32)].clone());
            }
            for &(s, d, p) in &scratch_edges {
                c.add_edge(NodeId(s as u32), NodeId(d as u32), p);
            }
            if !c.is_weakly_connected() {
                continue;
            }
            let mut ckeys = keys.clone();
            ckeys.remove(vi);
            let mut ccomm = comm.clone();
            ccomm.remove(vi);
            debug_assert_eq!(
                key_from_keys(&c, &ckeys, &ccomm),
                key,
                "prospective key must match the built graph's key"
            );
            if let Some(b) = bucket {
                if b.iter().any(|&i| patterns_equivalent(&out[i].graph, &c)) {
                    continue;
                }
            }
            seen.entry(key).or_default().push(out.len());
            out.push(Member {
                graph: c,
                key,
                sorted_edges: scratch_edges.clone(),
            });
            if out.len() >= cap {
                return out.into_iter().map(|m| (m.graph, m.key)).collect();
            }
            queue.push((out.len() - 1, ckeys, ccomm, node_acc));
        }
    }
    out.into_iter().map(|m| (m.graph, m.key)).collect()
}

/// Fills in [`CfuCandidate::subsumes`] for every candidate: `i` subsumes
/// `j` when `j`'s pattern appears in `i`'s contraction closure.
///
/// Each candidate's closure is independent of every other's, so the
/// closures are computed in parallel against a read-only view of the
/// slice and written back afterwards; the result is identical to the
/// serial loop for any thread count.
pub fn mark_subsumptions(cands: &mut [CfuCandidate], cap: usize) {
    // Index candidates by cheap structural key for O(1) closure lookups.
    // The key is sound for commutativity-aware isomorphism, so a closure
    // member's true matches are always in its bucket; equality inside a
    // bucket is confirmed exactly below.
    let mut by_key: HashMap<u64, Vec<usize>, canon::PremixedState> = HashMap::default();
    for (i, c) in cands.iter().enumerate() {
        let keys: Vec<u64> = c.pattern.node_ids().map(|n| c.pattern[n].key()).collect();
        let comm: Vec<bool> = c
            .pattern
            .node_ids()
            .map(|n| c.pattern[n].opcode.is_commutative())
            .collect();
        by_key
            .entry(key_from_keys(&c.pattern, &keys, &comm))
            .or_default()
            .push(i);
    }
    let view: &[CfuCandidate] = cands;
    let subsumed_lists = par::par_map_indexed(view.len(), |i| {
        if view[i].pattern.node_count() < 2 {
            return Vec::new();
        }
        let closure = closure_keyed(&view[i].pattern, cap);
        let mut subsumed: Vec<usize> = Vec::new();
        for (g, key) in &closure {
            if let Some(matches) = by_key.get(key) {
                for &j in matches {
                    if j != i
                        && (patterns_identical_fast(&view[j].pattern, g)
                            || patterns_equivalent(&view[j].pattern, g))
                    {
                        subsumed.push(j);
                    }
                }
            }
        }
        subsumed.sort_unstable();
        subsumed.dedup();
        subsumed
    });
    for (c, s) in cands.iter_mut().zip(subsumed_lists) {
        c.subsumes = s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isax_ir::Opcode;

    fn lab(op: Opcode) -> DfgLabel {
        DfgLabel {
            opcode: op,
            imms: vec![],
        }
    }

    /// and -> add -> shl (variable shift) chain.
    fn chain() -> DiGraph<DfgLabel> {
        let mut p = DiGraph::new();
        let a = p.add_node(lab(Opcode::And));
        let b = p.add_node(lab(Opcode::Add));
        let c = p.add_node(lab(Opcode::Shl));
        p.add_edge(a, b, 0);
        p.add_edge(b, c, 0);
        p
    }

    #[test]
    fn paper_example_and_add_shl() {
        // "if CFU 'AND-ADD->>' was discovered, CFU 'AND->>' can be executed
        //  on the same hardware ... CFUs 'AND-ADD' and 'ADD->>' would also
        //  be recorded as being subsumed"
        let closure = contraction_closure(&chain(), 64);
        let descs: std::collections::BTreeSet<String> = closure
            .iter()
            .map(|g| {
                let mut names: Vec<&str> = g.node_ids().map(|n| g[n].opcode.mnemonic()).collect();
                names.sort_unstable();
                names.join("-")
            })
            .collect();
        assert!(descs.contains("and-shl"), "descs: {descs:?}");
        assert!(descs.contains("add-shl"), "AND bypassed with all-ones");
        assert!(descs.contains("add-and"), "SHL bypassed with shift 0");
        assert!(descs.contains("and"));
        assert!(descs.contains("add"));
        assert!(descs.contains("shl"));
    }

    #[test]
    fn sub_subtrahend_side_cannot_pass() {
        // x - y: only the minuend (port 0) passes through with y = 0. A
        // producer feeding port 1 of the sub cannot be wired through.
        let mut p = DiGraph::new();
        let x = p.add_node(lab(Opcode::Xor));
        let s = p.add_node(lab(Opcode::Sub));
        p.add_edge(x, s, 1); // xor feeds the subtrahend
        let closure = contraction_closure(&p, 16);
        // Bypassing the sub is impossible (its pass port 0 is external but
        // the *identity port* 1 is fed internally); bypassing the xor
        // (identity 0 on either port, commutative) gives a single sub.
        assert!(closure
            .iter()
            .all(|g| !(g.node_count() == 1 && g[NodeId(0)].opcode == Opcode::Xor)));
        assert!(closure
            .iter()
            .any(|g| g.node_count() == 1 && g[NodeId(0)].opcode == Opcode::Sub));
    }

    #[test]
    fn hardwired_nonidentity_constant_blocks_bypass() {
        // add #5 cannot be bypassed: its free port has constant 5, not 0.
        let mut p = DiGraph::new();
        let a = p.add_node(lab(Opcode::And));
        let b = p.add_node(DfgLabel {
            opcode: Opcode::Add,
            imms: vec![(1, 5)],
        });
        p.add_edge(a, b, 0);
        let closure = contraction_closure(&p, 16);
        assert!(
            closure
                .iter()
                .all(|g| !(g.node_count() == 1 && g[NodeId(0)].opcode == Opcode::And)),
            "the add+5 must not vanish"
        );
    }

    #[test]
    fn select_has_no_identity() {
        let mut p = DiGraph::new();
        let a = p.add_node(lab(Opcode::And));
        let s = p.add_node(lab(Opcode::Select));
        p.add_edge(a, s, 1);
        let closure = contraction_closure(&p, 16);
        assert!(closure
            .iter()
            .all(|g| !(g.node_count() == 1 && g[NodeId(0)].opcode == Opcode::And)));
    }

    #[test]
    fn diamond_contraction_preserves_connectivity() {
        // xor -> {shl#3, shr#29} -> or. Bypassing shl#3 (shift 0 identity
        // ... wait, its amount is hardwired to 3) is blocked; bypassing the
        // or would disconnect nothing since both inputs are internal — the
        // or's identity port is fed internally, so it is not bypassable.
        let mut p = DiGraph::new();
        let x = p.add_node(lab(Opcode::Xor));
        let l = p.add_node(DfgLabel {
            opcode: Opcode::Shl,
            imms: vec![(1, 3)],
        });
        let r = p.add_node(DfgLabel {
            opcode: Opcode::Shr,
            imms: vec![(1, 29)],
        });
        let o = p.add_node(lab(Opcode::Or));
        p.add_edge(x, l, 0);
        p.add_edge(x, r, 0);
        p.add_edge(l, o, 0);
        p.add_edge(r, o, 1);
        let closure = contraction_closure(&p, 64);
        // Only the xor is bypassable (commutative, both inputs external):
        // closure = { shl+shr+or }.
        assert_eq!(closure.len(), 1);
        assert_eq!(closure[0].node_count(), 3);
    }

    #[test]
    fn closure_cap_is_respected() {
        // A long add chain has an exponential closure; the cap bounds it.
        let mut p = DiGraph::new();
        let mut prev = p.add_node(lab(Opcode::Add));
        for _ in 0..8 {
            let n = p.add_node(lab(Opcode::Add));
            p.add_edge(prev, n, 0);
            prev = n;
        }
        let closure = contraction_closure(&p, 10);
        assert!(closure.len() <= 10);
    }

    #[test]
    fn mark_subsumptions_links_candidates() {
        use crate::combine::combine;
        use isax_explore::{explore_app, ExploreConfig};
        use isax_hwlib::HwLibrary;
        use isax_ir::{function_dfgs, FunctionBuilder};

        let mut fb = FunctionBuilder::new("f", 3);
        let (a, b, c) = (fb.param(0), fb.param(1), fb.param(2));
        // and -> add -> xor chain; its sub-chains are discovered too.
        let t = fb.and(a, b);
        let u = fb.add(t, c);
        let v = fb.xor(u, a);
        fb.ret(&[v.into()]);
        let dfgs = function_dfgs(&fb.finish());
        let hw = HwLibrary::micron_018();
        let found = explore_app(&dfgs, &hw, &ExploreConfig::default());
        let mut cfus = combine(&dfgs, &found.candidates, &hw);
        mark_subsumptions(&mut cfus, DEFAULT_CLOSURE_CAP);

        let full = cfus.iter().position(|c| c.size() == 3).unwrap();
        let and_only = cfus
            .iter()
            .position(|c| c.size() == 1 && c.describe() == "and")
            .unwrap();
        let and_add = cfus.iter().position(|c| c.describe() == "add-and").unwrap();
        assert!(cfus[full].subsumes.contains(&and_only));
        assert!(cfus[full].subsumes.contains(&and_add));
        assert!(cfus[and_only].subsumes.is_empty());
    }
}
