//! A compact directed multigraph with labelled nodes and port-annotated
//! edges.
//!
//! Every edge carries the **input port index** it occupies on its
//! destination node. Dataflow semantics make ports significant: `a - b`
//! and `b - a` are different computations, so an edge into port 0 of a
//! subtract is not interchangeable with an edge into port 1. Commutative
//! operations relax this during matching (see [`crate::vf2`]), but the
//! representation always records the concrete port.

/// Index of a node inside a [`DiGraph`].
///
/// `NodeId`s are dense (`0..graph.node_count()`), never reused, and only
/// meaningful for the graph that issued them.
///
/// # Example
///
/// ```
/// use isax_graph::DiGraph;
/// let mut g = DiGraph::new();
/// let n = g.add_node(7u32);
/// assert_eq!(n.index(), 0);
/// assert_eq!(g[n], 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One directed edge: `src` feeds input port `port` of `dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeRef {
    /// Producing node.
    pub src: NodeId,
    /// Consuming node.
    pub dst: NodeId,
    /// Input port index on `dst` (operand position).
    pub port: u8,
}

/// A directed multigraph with node weights of type `N` and port-annotated
/// edges.
///
/// Self-loops and parallel edges are permitted (an `add r, x, x` node in a
/// dataflow graph receives the same producer on two different ports).
///
/// # Example
///
/// ```
/// use isax_graph::DiGraph;
///
/// let mut g = DiGraph::new();
/// let x = g.add_node("shl");
/// let y = g.add_node("add");
/// g.add_edge(x, y, 1);
/// assert_eq!(g.node_count(), 2);
/// assert_eq!(g.succs(x).count(), 1);
/// assert_eq!(g.preds(y).next().unwrap().src, x);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiGraph<N> {
    nodes: Vec<N>,
    edges: Vec<EdgeRef>,
    /// Outgoing edge indices per node.
    out_adj: Vec<Vec<u32>>,
    /// Incoming edge indices per node.
    in_adj: Vec<Vec<u32>>,
}

impl<N> Default for DiGraph<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N> DiGraph<N> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        DiGraph {
            nodes: Vec::new(),
            edges: Vec::new(),
            out_adj: Vec::new(),
            in_adj: Vec::new(),
        }
    }

    /// Creates an empty graph with room for `nodes` nodes.
    pub fn with_capacity(nodes: usize) -> Self {
        DiGraph {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::new(),
            out_adj: Vec::with_capacity(nodes),
            in_adj: Vec::with_capacity(nodes),
        }
    }

    /// Adds a node with the given weight and returns its id.
    pub fn add_node(&mut self, weight: N) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(weight);
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        id
    }

    /// Adds an edge from `src` into input port `port` of `dst`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is not a node of this graph.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, port: u8) {
        assert!(src.index() < self.nodes.len(), "edge source out of range");
        assert!(
            dst.index() < self.nodes.len(),
            "edge destination out of range"
        );
        let eidx = self.edges.len() as u32;
        self.edges.push(EdgeRef { src, dst, port });
        self.out_adj[src.index()].push(eidx);
        self.in_adj[dst.index()].push(eidx);
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates over all node ids in insertion order.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Returns the weight of `n`, if `n` is in range.
    pub fn node_weight(&self, n: NodeId) -> Option<&N> {
        self.nodes.get(n.index())
    }

    /// Iterates over all edges in insertion order.
    pub fn edges(&self) -> impl ExactSizeIterator<Item = EdgeRef> + '_ {
        self.edges.iter().copied()
    }

    /// Iterates over the outgoing edges of `n`.
    pub fn succs(&self, n: NodeId) -> impl ExactSizeIterator<Item = EdgeRef> + '_ {
        self.out_adj[n.index()]
            .iter()
            .map(move |&e| self.edges[e as usize])
    }

    /// Iterates over the incoming edges of `n`.
    pub fn preds(&self, n: NodeId) -> impl ExactSizeIterator<Item = EdgeRef> + '_ {
        self.in_adj[n.index()]
            .iter()
            .map(move |&e| self.edges[e as usize])
    }

    /// Out-degree of `n`.
    pub fn out_degree(&self, n: NodeId) -> usize {
        self.out_adj[n.index()].len()
    }

    /// In-degree of `n`.
    pub fn in_degree(&self, n: NodeId) -> usize {
        self.in_adj[n.index()].len()
    }

    /// True if there is at least one edge `src -> dst` (any port).
    pub fn has_edge(&self, src: NodeId, dst: NodeId) -> bool {
        self.out_adj[src.index()]
            .iter()
            .any(|&e| self.edges[e as usize].dst == dst)
    }

    /// True if there is an edge `src -> dst` into exactly `port`.
    pub fn has_edge_on_port(&self, src: NodeId, dst: NodeId, port: u8) -> bool {
        self.out_adj[src.index()]
            .iter()
            .any(|&e| self.edges[e as usize].dst == dst && self.edges[e as usize].port == port)
    }

    /// Maps node weights, preserving structure.
    pub fn map<M>(&self, mut f: impl FnMut(NodeId, &N) -> M) -> DiGraph<M> {
        DiGraph {
            nodes: self
                .nodes
                .iter()
                .enumerate()
                .map(|(i, n)| f(NodeId(i as u32), n))
                .collect(),
            edges: self.edges.clone(),
            out_adj: self.out_adj.clone(),
            in_adj: self.in_adj.clone(),
        }
    }

    /// Builds the subgraph induced by `keep` (in the given order), cloning
    /// node weights. Returns the new graph together with the mapping from
    /// new node index to the original [`NodeId`].
    ///
    /// Edges between kept nodes are preserved with their ports; all other
    /// edges are dropped.
    ///
    /// # Panics
    ///
    /// Panics if `keep` contains duplicates or out-of-range ids.
    pub fn induced_subgraph(&self, keep: &[NodeId]) -> (DiGraph<N>, Vec<NodeId>)
    where
        N: Clone,
    {
        let mut old_to_new = vec![u32::MAX; self.nodes.len()];
        for (new_idx, &old) in keep.iter().enumerate() {
            assert!(
                old_to_new[old.index()] == u32::MAX,
                "duplicate node in induced_subgraph"
            );
            old_to_new[old.index()] = new_idx as u32;
        }
        let mut sub = DiGraph::with_capacity(keep.len());
        for &old in keep {
            sub.add_node(self.nodes[old.index()].clone());
        }
        for e in &self.edges {
            let s = old_to_new[e.src.index()];
            let d = old_to_new[e.dst.index()];
            if s != u32::MAX && d != u32::MAX {
                sub.add_edge(NodeId(s), NodeId(d), e.port);
            }
        }
        (sub, keep.to_vec())
    }

    /// True if the graph is weakly connected (or empty).
    pub fn is_weakly_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut count = 1usize;
        while let Some(n) = stack.pop() {
            for e in self.succs(n) {
                if !seen[e.dst.index()] {
                    seen[e.dst.index()] = true;
                    count += 1;
                    stack.push(e.dst);
                }
            }
            for e in self.preds(n) {
                if !seen[e.src.index()] {
                    seen[e.src.index()] = true;
                    count += 1;
                    stack.push(e.src);
                }
            }
        }
        count == self.nodes.len()
    }

    /// Returns a topological order of the nodes, or `None` if the graph has
    /// a (directed) cycle.
    pub fn topo_order(&self) -> Option<Vec<NodeId>> {
        let n = self.nodes.len();
        let mut indeg: Vec<usize> = (0..n).map(|i| self.in_adj[i].len()).collect();
        let mut ready: Vec<NodeId> = (0..n)
            .filter(|&i| indeg[i] == 0)
            .map(|i| NodeId(i as u32))
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(v) = ready.pop() {
            order.push(v);
            for e in &self.out_adj[v.index()] {
                let d = self.edges[*e as usize].dst;
                indeg[d.index()] -= 1;
                if indeg[d.index()] == 0 {
                    ready.push(d);
                }
            }
        }
        if order.len() == n {
            Some(order)
        } else {
            None
        }
    }

    /// True if the graph contains a directed cycle.
    pub fn has_cycle(&self) -> bool {
        self.topo_order().is_none()
    }
}

impl<N> std::ops::Index<NodeId> for DiGraph<N> {
    type Output = N;

    fn index(&self, n: NodeId) -> &N {
        &self.nodes[n.index()]
    }
}

impl<N> std::ops::IndexMut<NodeId> for DiGraph<N> {
    fn index_mut(&mut self, n: NodeId) -> &mut N {
        &mut self.nodes[n.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (DiGraph<&'static str>, [NodeId; 4]) {
        // a -> b, a -> c, b -> d (port 0), c -> d (port 1)
        let mut g = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge(a, b, 0);
        g.add_edge(a, c, 0);
        g.add_edge(b, d, 0);
        g.add_edge(c, d, 1);
        (g, [a, b, c, d])
    }

    #[test]
    fn build_and_query() {
        let (g, [a, b, _c, d]) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(d), 2);
        assert!(g.has_edge(a, b));
        assert!(!g.has_edge(b, a));
        assert!(g.has_edge_on_port(b, d, 0));
        assert!(!g.has_edge_on_port(b, d, 1));
        assert_eq!(g[a], "a");
    }

    #[test]
    fn parallel_edges_and_self_use() {
        // add r, x, x : same producer on two ports.
        let mut g = DiGraph::new();
        let x = g.add_node("x");
        let add = g.add_node("add");
        g.add_edge(x, add, 0);
        g.add_edge(x, add, 1);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.preds(add).count(), 2);
        assert!(g.has_edge_on_port(x, add, 0));
        assert!(g.has_edge_on_port(x, add, 1));
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let (g, [a, b, _c, d]) = diamond();
        let (sub, map) = g.induced_subgraph(&[a, b, d]);
        assert_eq!(sub.node_count(), 3);
        // Edges kept: a->b and b->d; a->c and c->d dropped.
        assert_eq!(sub.edge_count(), 2);
        assert_eq!(map, vec![a, b, d]);
        assert_eq!(sub[NodeId(0)], "a");
        assert!(sub.has_edge(NodeId(0), NodeId(1)));
        assert!(sub.has_edge_on_port(NodeId(1), NodeId(2), 0));
    }

    #[test]
    #[should_panic(expected = "duplicate node")]
    fn induced_subgraph_rejects_duplicates() {
        let (g, [a, ..]) = diamond();
        let _ = g.induced_subgraph(&[a, a]);
    }

    #[test]
    fn connectivity() {
        let (g, _) = diamond();
        assert!(g.is_weakly_connected());
        let mut g2: DiGraph<&str> = DiGraph::new();
        g2.add_node("x");
        g2.add_node("y");
        assert!(!g2.is_weakly_connected());
        let empty: DiGraph<u8> = DiGraph::new();
        assert!(empty.is_weakly_connected());
    }

    #[test]
    fn topo_order_on_dag() {
        let (g, [a, b, c, d]) = diamond();
        let order = g.topo_order().expect("diamond is a DAG");
        let pos = |n: NodeId| order.iter().position(|&x| x == n).unwrap();
        assert!(pos(a) < pos(b));
        assert!(pos(a) < pos(c));
        assert!(pos(b) < pos(d));
        assert!(pos(c) < pos(d));
        assert!(!g.has_cycle());
    }

    #[test]
    fn cycle_detected() {
        let mut g = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 0);
        g.add_edge(b, a, 0);
        assert!(g.has_cycle());
        assert!(g.topo_order().is_none());
    }

    #[test]
    fn map_preserves_structure() {
        let (g, _) = diamond();
        let mapped = g.map(|_, w| w.to_uppercase());
        assert_eq!(mapped.node_count(), g.node_count());
        assert_eq!(mapped.edge_count(), g.edge_count());
        assert_eq!(mapped[NodeId(0)], "A");
    }
}
