//! Small labelled digraphs, canonical forms and VF2-style subgraph
//! isomorphism for the `isax` instruction-set customization suite.
//!
//! The MICRO-2003 system this workspace reproduces leans on graph machinery
//! in three places:
//!
//! * the **design-space explorer** manipulates candidate subgraphs of a
//!   dataflow graph and must deduplicate structurally equivalent candidates
//!   (→ [`canon`]),
//! * the **candidate combiner** groups isomorphic candidates discovered in
//!   different places into one custom function unit (→ [`canon`] + exact
//!   verification via [`vf2`]),
//! * the **compiler** finds every occurrence of a custom function unit's
//!   pattern inside an application dataflow graph — the classic subgraph
//!   isomorphism problem the paper solves with the vflib library
//!   (→ [`vf2`], our reimplementation).
//!
//! The graphs involved are tiny (patterns of 2–40 nodes, per-block dataflow
//! graphs of at most a few hundred nodes), so the representation favours
//! simplicity and cache friendliness over asymptotics: dense node vectors
//! and flat edge lists.
//!
//! # Example
//!
//! ```
//! use isax_graph::{DiGraph, vf2};
//!
//! // Pattern: a << b  feeding port 0 of an AND.
//! let mut pat = DiGraph::new();
//! let shl = pat.add_node("shl");
//! let and = pat.add_node("and");
//! pat.add_edge(shl, and, 0);
//!
//! // Target contains the same shape twice.
//! let mut dfg = DiGraph::new();
//! let a = dfg.add_node("shl");
//! let b = dfg.add_node("and");
//! let c = dfg.add_node("shl");
//! let d = dfg.add_node("and");
//! dfg.add_edge(a, b, 0);
//! dfg.add_edge(c, d, 0);
//!
//! let m = vf2::Matcher::new(&pat, &dfg)
//!     .node_compat(|p, t| p == t)
//!     .find_all();
//! assert_eq!(m.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod canon;
pub mod digraph;
pub mod dot;
pub mod par;
pub mod vf2;

pub use bitset::BitSet;
pub use canon::{CanonConfig, Fingerprint};
pub use digraph::{DiGraph, EdgeRef, NodeId};
