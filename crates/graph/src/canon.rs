//! Order-independent structural fingerprints for labelled digraphs.
//!
//! The candidate-combination stage of the hardware compiler must decide,
//! thousands of times, whether two discovered subgraphs describe the same
//! custom function unit ("a simple test which checks graph equivalence,
//! while taking into account commutativity" — §3.3 of the paper). Exact
//! canonical labelling is overkill for graphs this small; instead we use a
//! Weisfeiler-Lehman-style colour refinement hash:
//!
//! 1. every node starts from a hash of its label,
//! 2. each round re-hashes a node with the sorted multisets of its
//!    neighbours' colours (tagging in-edges with their port unless the node
//!    is commutative),
//! 3. the graph fingerprint combines node and edge counts with the sorted
//!    multiset of final colours.
//!
//! Isomorphic graphs (commutativity-aware) always receive equal
//! fingerprints; unequal graphs collide only with hash probability, and
//! callers that need certainty confirm with [`crate::vf2::are_isomorphic`]
//! inside fingerprint buckets.

use crate::digraph::DiGraph;

/// Tuning for the refinement hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CanonConfig {
    /// Number of refinement rounds. Diameter-many rounds distinguish
    /// everything the scheme can distinguish; the default of 4 covers the
    /// subgraphs the explorer produces.
    pub rounds: usize,
}

impl Default for CanonConfig {
    fn default() -> Self {
        CanonConfig { rounds: 4 }
    }
}

/// A structural fingerprint; equal for isomorphic graphs.
///
/// # Example
///
/// ```
/// use isax_graph::{DiGraph, canon};
///
/// let mut g = DiGraph::new();
/// let a = g.add_node("shl");
/// let b = g.add_node("add");
/// g.add_edge(a, b, 0);
///
/// let mut h = DiGraph::new();
/// let y = h.add_node("add");
/// let x = h.add_node("shl");
/// h.add_edge(x, y, 1);
///
/// let lab = |l: &&str| canon::hash_str(l);
/// let comm = |l: &&str| *l == "add";
/// let fg = canon::fingerprint(&g, lab, comm, &Default::default());
/// let fh = canon::fingerprint(&h, lab, comm, &Default::default());
/// assert_eq!(fg, fh, "insertion order and commutative ports do not matter");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fingerprint(pub u64);

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// splitmix64 finalizer: cheap, deterministic, well-mixed.
///
/// Public so cheaper sibling hashes (e.g. the explorer's incremental
/// structural key) can share the same mixing primitive.
pub fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Order-sensitive combination of two hashes (shared with [`mix`]).
pub fn combine(a: u64, b: u64) -> u64 {
    mix(a ^ b.wrapping_mul(0x2545f4914f6cdd1d))
}

/// Hashes a string label deterministically (FNV-1a, then mixed).
///
/// Convenience for callers whose node labels are strings.
pub fn hash_str(s: &str) -> u64 {
    let mut h = StrHasher::new();
    use std::fmt::Write as _;
    let _ = h.write_str(s);
    h.finish()
}

/// Streaming form of [`hash_str`]: writing string fragments (via
/// [`std::fmt::Write`], so `write!` works too) produces exactly the hash
/// of their concatenation, without materializing it. Lets label hashes be
/// computed allocation-free on hot paths.
#[derive(Debug, Clone, Copy)]
pub struct StrHasher(u64);

impl StrHasher {
    /// Starts from the FNV-1a offset basis.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        StrHasher(0xcbf29ce484222325)
    }

    /// Finalizes with the same [`mix`] step as [`hash_str`].
    pub fn finish(self) -> u64 {
        mix(self.0)
    }
}

impl std::fmt::Write for StrHasher {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        for b in s.bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
        Ok(())
    }
}

/// A [`std::hash::Hasher`] for map keys that are already uniformly mixed
/// `u64`s — the outputs of [`mix`], [`combine`], [`hash_str`],
/// [`multiset_key`] or [`fingerprint`]. Re-hashing such keys with SipHash
/// buys nothing; this hasher folds the written words together with a
/// rotate-xor instead. Use via [`PremixedState`]. Do **not** use it for
/// keys that are not hash outputs (sequential ids, small integers): their
/// low bits would collide in the table.
#[derive(Debug, Default, Clone, Copy)]
pub struct PremixedHasher(u64);

/// `BuildHasher` for [`PremixedHasher`]; deterministic across processes.
pub type PremixedState = std::hash::BuildHasherDefault<PremixedHasher>;

impl std::hash::Hasher for PremixedHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-integer key components: FNV-1a, folded in.
        let mut h: u64 = 0xcbf29ce484222325;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        self.write_u64(h);
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = self.0.rotate_left(31) ^ v;
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    fn write_u8(&mut self, v: u8) {
        self.write_u64(v as u64);
    }
}

/// Port tag used for edges whose destination treats ports as
/// interchangeable.
pub const COMMUTATIVE_PORT: u64 = 0xFFFF;

/// A cheap, order-independent structural key: the mixed multisets of node
/// keys and of `(source key, destination key, port)` edge triples, with
/// ports normalized to [`COMMUTATIVE_PORT`] on commutative consumers.
///
/// Weaker than [`fingerprint`] (it ignores how edges chain together), but
/// **sound** for the same equivalence: commutativity-aware isomorphic
/// graphs always get equal keys. That makes it a drop-in prefilter
/// anywhere equality is confirmed exactly afterwards (VF2 inside
/// buckets), at a single unsorted pass instead of `rounds` sorted ones.
pub fn multiset_key<N>(
    g: &DiGraph<N>,
    key_of: impl Fn(crate::digraph::NodeId) -> u64,
    comm_of: impl Fn(crate::digraph::NodeId) -> bool,
) -> u64 {
    let mut nodes = 0u64;
    let mut edges = 0u64;
    for v in g.node_ids() {
        nodes = nodes.wrapping_add(mix(key_of(v)));
    }
    for e in g.edges() {
        let port = if comm_of(e.dst) {
            COMMUTATIVE_PORT
        } else {
            e.port as u64
        };
        edges = edges.wrapping_add(mix(combine(combine(key_of(e.src), key_of(e.dst)), port)));
    }
    mix(combine(
        combine(g.node_count() as u64, g.edge_count() as u64),
        nodes.wrapping_add(edges),
    ))
}

/// Reusable buffers for [`fingerprint_keys`].
///
/// The subsumption and wildcard passes fingerprint tens of thousands of
/// small graphs; reusing one scratch across calls removes five heap
/// allocations per fingerprint without changing a single output bit.
#[derive(Debug, Default)]
pub struct CanonScratch {
    colour: Vec<u64>,
    next: Vec<u64>,
    sorted: Vec<u64>,
    /// Per-node base colours, exposed so callers can fill it directly
    /// (see [`fingerprint_keys`]); `base[v] = mix(label_hash(v))`.
    pub base: Vec<u64>,
    /// Per-node commutativity flags, filled by the caller alongside
    /// [`CanonScratch::base`].
    pub comm: Vec<bool>,
}

/// Computes the commutativity-aware structural fingerprint of `g`.
///
/// `label` must map node weights to a hash that captures everything that
/// distinguishes one operation from another (opcode, hardwired immediates,
/// ...). `commutative` marks nodes whose input ports are interchangeable.
pub fn fingerprint<N>(
    g: &DiGraph<N>,
    label: impl Fn(&N) -> u64,
    commutative: impl Fn(&N) -> bool,
    cfg: &CanonConfig,
) -> Fingerprint {
    let mut scratch = CanonScratch::default();
    scratch
        .comm
        .extend(g.node_ids().map(|v| commutative(&g[v])));
    scratch.base.extend(g.node_ids().map(|v| mix(label(&g[v]))));
    fingerprint_keys(g, cfg, &mut scratch)
}

/// Core of [`fingerprint`]: refinement over caller-supplied per-node base
/// colours and commutativity flags in `scratch.base` / `scratch.comm`
/// (one entry per node, insertion order; `base[v]` must already be
/// `mix`ed). Callers that fingerprint many related graphs — the closure
/// walk, the wildcard bucketing — precompute label hashes once and reuse
/// the scratch, skipping the per-call string hashing and allocations.
/// `scratch.base`/`scratch.comm` are cleared on return; output is
/// bit-identical to [`fingerprint`].
pub fn fingerprint_keys<N>(
    g: &DiGraph<N>,
    cfg: &CanonConfig,
    scratch: &mut CanonScratch,
) -> Fingerprint {
    let n = g.node_count();
    debug_assert_eq!(scratch.base.len(), n);
    debug_assert_eq!(scratch.comm.len(), n);
    if n == 0 {
        scratch.base.clear();
        scratch.comm.clear();
        return Fingerprint(mix(0));
    }
    scratch.colour.clear();
    scratch.colour.extend_from_slice(&scratch.base);
    scratch.next.clear();
    scratch.next.resize(n, 0u64);
    let (base, comm) = (&scratch.base, &scratch.comm);
    let (mut colour, mut next) = (&mut scratch.colour, &mut scratch.next);
    for _round in 0..cfg.rounds {
        for v in g.node_ids() {
            let vi = v.index();
            let mut h = combine(base[vi], 0x1d);
            // In-neighbourhood, tagged with ports unless v is commutative.
            scratch.sorted.clear();
            for e in g.preds(v) {
                let port = if comm[vi] {
                    COMMUTATIVE_PORT
                } else {
                    e.port as u64
                };
                scratch
                    .sorted
                    .push(combine(colour[e.src.index()], mix(port)));
            }
            scratch.sorted.sort_unstable();
            for &s in &scratch.sorted {
                h = combine(h, combine(s, 0xA11CE));
            }
            // Out-neighbourhood, tagged with the consumer port unless the
            // consumer is commutative.
            scratch.sorted.clear();
            for e in g.succs(v) {
                let port = if comm[e.dst.index()] {
                    COMMUTATIVE_PORT
                } else {
                    e.port as u64
                };
                scratch
                    .sorted
                    .push(combine(colour[e.dst.index()], mix(port ^ 0x0DD)));
            }
            scratch.sorted.sort_unstable();
            for &s in &scratch.sorted {
                h = combine(h, combine(s, 0xB0B));
            }
            next[vi] = h;
        }
        std::mem::swap(&mut colour, &mut next);
    }
    colour.sort_unstable();
    let mut out = combine(n as u64, g.edge_count() as u64);
    for &c in colour.iter() {
        out = combine(out, c);
    }
    scratch.base.clear();
    scratch.comm.clear();
    Fingerprint(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::NodeId;

    fn lab(l: &&str) -> u64 {
        hash_str(l)
    }

    fn comm(l: &&str) -> bool {
        matches!(*l, "add" | "and" | "or" | "xor" | "mul")
    }

    fn fp(g: &DiGraph<&str>) -> Fingerprint {
        fingerprint(g, lab, comm, &CanonConfig::default())
    }

    #[test]
    fn str_hasher_streams_the_same_hash() {
        use std::fmt::Write as _;
        let mut h = StrHasher::new();
        let _ = h.write_str("shl");
        let _ = write!(h, "#{}:{}", 1u8, -42i64);
        assert_eq!(h.finish(), hash_str("shl#1:-42"));
        assert_eq!(StrHasher::new().finish(), hash_str(""));
    }

    #[test]
    fn insertion_order_is_irrelevant() {
        let mut g1 = DiGraph::new();
        let a = g1.add_node("shl");
        let b = g1.add_node("and");
        let c = g1.add_node("add");
        g1.add_edge(a, b, 0);
        g1.add_edge(b, c, 0);

        let mut g2 = DiGraph::new();
        let c2 = g2.add_node("add");
        let a2 = g2.add_node("shl");
        let b2 = g2.add_node("and");
        g2.add_edge(a2, b2, 0);
        g2.add_edge(b2, c2, 0);

        assert_eq!(fp(&g1), fp(&g2));
    }

    #[test]
    fn commutative_port_swap_is_equivalent() {
        let mut g1 = DiGraph::new();
        let x = g1.add_node("shl");
        let y = g1.add_node("shr");
        let s = g1.add_node("or");
        g1.add_edge(x, s, 0);
        g1.add_edge(y, s, 1);

        let mut g2 = DiGraph::new();
        let x2 = g2.add_node("shl");
        let y2 = g2.add_node("shr");
        let s2 = g2.add_node("or");
        g2.add_edge(x2, s2, 1);
        g2.add_edge(y2, s2, 0);

        assert_eq!(fp(&g1), fp(&g2));
    }

    #[test]
    fn noncommutative_port_swap_differs() {
        let mut g1 = DiGraph::new();
        let x = g1.add_node("shl");
        let y = g1.add_node("shr");
        let s = g1.add_node("sub");
        g1.add_edge(x, s, 0);
        g1.add_edge(y, s, 1);

        let mut g2 = DiGraph::new();
        let x2 = g2.add_node("shl");
        let y2 = g2.add_node("shr");
        let s2 = g2.add_node("sub");
        g2.add_edge(x2, s2, 1);
        g2.add_edge(y2, s2, 0);

        assert_ne!(fp(&g1), fp(&g2), "x<<k - y>>k differs from y>>k - x<<k");
    }

    #[test]
    fn different_labels_differ() {
        let mut g1 = DiGraph::new();
        let a = g1.add_node("and");
        let b = g1.add_node("add");
        g1.add_edge(a, b, 0);
        let mut g2 = DiGraph::new();
        let a2 = g2.add_node("or");
        let b2 = g2.add_node("add");
        g2.add_edge(a2, b2, 0);
        assert_ne!(fp(&g1), fp(&g2));
    }

    #[test]
    fn different_shape_differs() {
        // chain a->b->c vs fork a->b, a->c
        let mut chain = DiGraph::new();
        let a = chain.add_node("xor");
        let b = chain.add_node("xor");
        let c = chain.add_node("xor");
        chain.add_edge(a, b, 0);
        chain.add_edge(b, c, 0);

        let mut fork = DiGraph::new();
        let a2 = fork.add_node("xor");
        let b2 = fork.add_node("xor");
        let c2 = fork.add_node("xor");
        fork.add_edge(a2, b2, 0);
        fork.add_edge(a2, c2, 0);

        assert_ne!(fp(&chain), fp(&fork));
    }

    #[test]
    fn empty_and_singleton() {
        let empty: DiGraph<&str> = DiGraph::new();
        let mut single = DiGraph::new();
        single.add_node("add");
        assert_ne!(fp(&empty), fp(&single));
        assert_eq!(fp(&empty), fp(&DiGraph::<&str>::new()));
    }

    #[test]
    fn parallel_edges_counted() {
        // add(x, x) vs add(x, external): different internal edge counts.
        let mut both = DiGraph::new();
        let x = both.add_node("shl");
        let a = both.add_node("add");
        both.add_edge(x, a, 0);
        both.add_edge(x, a, 1);

        let mut one = DiGraph::new();
        let x2 = one.add_node("shl");
        let a2 = one.add_node("add");
        one.add_edge(x2, a2, 0);

        assert_ne!(fp(&both), fp(&one));
    }

    #[test]
    fn multiset_key_is_isomorphism_invariant() {
        let mk = |g: &DiGraph<&str>| multiset_key(g, |v| hash_str(g[v]), |v| comm(&g[v]));
        // Insertion order must not matter.
        let mut g1 = DiGraph::new();
        let a = g1.add_node("shl");
        let b = g1.add_node("and");
        g1.add_edge(a, b, 0);
        let mut g2 = DiGraph::new();
        let b2 = g2.add_node("and");
        let a2 = g2.add_node("shl");
        g2.add_edge(a2, b2, 0);
        assert_eq!(mk(&g1), mk(&g2));
        // Commutative port swap must not matter; a non-commutative one must.
        let swap = |dst: &'static str, p0: u8, p1: u8| {
            let mut g = DiGraph::new();
            let x = g.add_node("shl");
            let y = g.add_node("shr");
            let s = g.add_node(dst);
            g.add_edge(x, s, p0);
            g.add_edge(y, s, p1);
            g
        };
        assert_eq!(mk(&swap("or", 0, 1)), mk(&swap("or", 1, 0)));
        assert_ne!(mk(&swap("sub", 0, 1)), mk(&swap("sub", 1, 0)));
        // Labels and counts are part of the key.
        let mut g3 = DiGraph::new();
        let a3 = g3.add_node("or");
        let b3 = g3.add_node("and");
        g3.add_edge(a3, b3, 0);
        assert_ne!(mk(&g1), mk(&g3));
    }

    #[test]
    fn agrees_with_vf2_on_permutations() {
        // Build a fixed graph, permute node insertion order several ways,
        // confirm fingerprints match and vf2 confirms isomorphism.
        let build = |perm: &[usize]| {
            // canonical node labels by original index
            let labels = ["shl", "and", "add", "xor", "or"];
            // edges in original index space: 0->1@0, 1->2@1, 0->3@0, 3->2@0, 2->4@0
            let edges = [(0, 1, 0u8), (1, 2, 1), (0, 3, 0), (3, 2, 0), (2, 4, 0)];
            let mut g = DiGraph::new();
            let mut ids = [NodeId(0); 5];
            for &orig in perm {
                ids[orig] = g.add_node(labels[orig]);
            }
            for &(s, d, p) in &edges {
                g.add_edge(ids[s], ids[d], p);
            }
            g
        };
        let g1 = build(&[0, 1, 2, 3, 4]);
        let g2 = build(&[4, 3, 2, 1, 0]);
        let g3 = build(&[2, 0, 4, 1, 3]);
        assert_eq!(fp(&g1), fp(&g2));
        assert_eq!(fp(&g1), fp(&g3));
        assert!(crate::vf2::are_isomorphic(&g1, &g3, |p, t| p == t, comm));
    }
}
