//! Graphviz (DOT) rendering for labelled digraphs.
//!
//! Developer tooling: dump a CFU pattern or any small graph for visual
//! inspection with `dot -Tpng`. The dataflow-graph variant with edge-kind
//! styling lives in `isax-ir` (`Dfg::to_dot`), built on this.

use crate::digraph::DiGraph;

/// Renders a digraph in DOT syntax; node text comes from `label`.
///
/// # Example
///
/// ```
/// use isax_graph::{DiGraph, dot::to_dot};
///
/// let mut g = DiGraph::new();
/// let a = g.add_node("shl");
/// let b = g.add_node("add");
/// g.add_edge(a, b, 1);
/// let text = to_dot(&g, "pattern", |l| l.to_string());
/// assert!(text.contains("digraph pattern"));
/// assert!(text.contains("n0 -> n1"));
/// ```
pub fn to_dot<N>(g: &DiGraph<N>, name: &str, label: impl Fn(&N) -> String) -> String {
    let mut out = String::new();
    out.push_str(&format!("digraph {name} {{\n"));
    out.push_str("  node [shape=box, fontname=\"monospace\"];\n");
    for n in g.node_ids() {
        out.push_str(&format!(
            "  n{} [label=\"{}\"];\n",
            n.index(),
            escape(&label(&g[n]))
        ));
    }
    for e in g.edges() {
        out.push_str(&format!(
            "  n{} -> n{} [label=\"{}\"];\n",
            e.src.index(),
            e.dst.index(),
            e.port
        ));
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nodes_edges_and_ports() {
        let mut g = DiGraph::new();
        let a = g.add_node(1);
        let b = g.add_node(2);
        g.add_edge(a, b, 1);
        let d = to_dot(&g, "t", |v| format!("op{v}"));
        assert!(d.contains("n0 [label=\"op1\"]"));
        assert!(d.contains("n1 [label=\"op2\"]"));
        assert!(d.contains("n0 -> n1 [label=\"1\"]"));
    }

    #[test]
    fn escapes_quotes() {
        let mut g = DiGraph::new();
        g.add_node("say \"hi\"");
        let d = to_dot(&g, "q", |v| v.to_string());
        assert!(d.contains("say \\\"hi\\\""));
    }

    #[test]
    fn empty_graph_is_valid_dot() {
        let g: DiGraph<u8> = DiGraph::new();
        let d = to_dot(&g, "empty", |v| v.to_string());
        assert!(d.starts_with("digraph empty {"));
        assert!(d.trim_end().ends_with('}'));
    }
}
