//! Deterministic data parallelism over slices, built on
//! `std::thread::scope` and an atomic work index — no external
//! dependencies, no unsafe.
//!
//! The customization pipeline is dominated by embarrassingly parallel
//! loops: per-DFG candidate exploration, pairwise subsumption and
//! wildcard checks, and per-block pattern matching. [`par_map`] and
//! [`par_map_indexed`] fan those loops out across threads while keeping
//! the *result order identical to the serial loop*: every item's result
//! is stored at its input index, so callers observe byte-identical
//! output regardless of thread count or scheduling.
//!
//! The thread count comes from, in order:
//!
//! 1. a per-process override installed with [`set_thread_override`]
//!    (used by determinism tests to pin both sides of a comparison),
//! 2. the `ISAX_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! A count of 1 (or a work list of one item) runs the closure inline on
//! the calling thread with no pool at all, so `ISAX_THREADS=1` is the
//! exact serial code path, not a one-thread simulation of it.
//!
//! Calls are *flat*: a `par_map` issued from inside another `par_map`
//! worker runs serially on that worker. Only the outermost call fans
//! out, so the process never runs more than `thread_count()` workers no
//! matter how deeply parallel stages compose.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Process-wide thread-count override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// True while this thread is a `par_map` worker. Nested calls run
    /// serially instead of multiplying threads: a fan-out over N
    /// benchmarks each fanning out over M blocks would otherwise spawn
    /// N×M threads and lose more to oversubscription than it gains.
    static IN_PAR_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Pins the pipeline-wide thread count, overriding `ISAX_THREADS` and
/// the detected parallelism. `None` removes the override.
///
/// Intended for tests that compare parallel against serial output from
/// inside one process; production callers should set `ISAX_THREADS`
/// instead.
pub fn set_thread_override(n: Option<usize>) {
    THREAD_OVERRIDE.store(n.unwrap_or(0), Ordering::SeqCst);
}

/// The number of worker threads parallel pipeline stages will use.
pub fn thread_count() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("ISAX_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Maps `f` over `items` in parallel, returning results in input order.
///
/// Semantically identical to `items.iter().map(f).collect()` for any
/// `f` without side effects; the parallel path only changes wall-clock
/// time, never the result. Panics in `f` propagate to the caller.
///
/// # Example
///
/// ```
/// use isax_graph::par::par_map;
/// let squares = par_map(&[1u64, 2, 3, 4], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T: Sync, U: Send>(items: &[T], f: impl Fn(&T) -> U + Sync) -> Vec<U> {
    par_map_indexed(items.len(), |i| f(&items[i]))
}

/// Maps `f` over `0..n` in parallel, returning results in index order.
///
/// The work-stealing is a single shared atomic counter: each worker
/// claims the next unprocessed index, computes, and stores the result
/// tagged with its index. Slot `i` of the returned vector always holds
/// `f(i)`.
pub fn par_map_indexed<U: Send>(n: usize, f: impl Fn(usize) -> U + Sync) -> Vec<U> {
    let threads = thread_count().min(n.max(1));
    if threads <= 1 || n <= 1 || IN_PAR_WORKER.with(Cell::get) {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    isax_trace::counter("par.fanouts", 1);
    isax_trace::counter("par.items", n as u64);
    isax_trace::counter("par.workers_spawned", threads as u64);
    let f = &f;
    let next = &next;
    // Workers inherit the spawning thread's request tag so per-request
    // attribution survives the fan-out.
    let req = isax_trace::current_request();
    let buckets: Vec<Vec<(usize, U)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                scope.spawn(move || {
                    IN_PAR_WORKER.with(|flag| flag.set(true));
                    // Tag this worker's trace events with its own track
                    // so each lane renders separately in the Chrome
                    // export (track 0 stays the calling thread).
                    isax_trace::set_track(worker as u32 + 1);
                    isax_trace::set_request(req);
                    let _span = isax_trace::span("par.worker");
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    });
    let mut slots: Vec<Option<U>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    for (i, v) in buckets.into_iter().flatten() {
        slots[i] = Some(v);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index was claimed by exactly one worker"))
        .collect()
}

/// Why one item of a [`par_try_map_indexed`] fan-out failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParError {
    /// The input index whose closure failed or was skipped.
    pub index: usize,
    /// The panic payload rendered to text, or a cancellation notice.
    pub message: String,
    /// True when the item never ran: the queue was cooperatively
    /// cancelled after a sibling panicked.
    pub cancelled: bool,
}

impl std::fmt::Display for ParError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.cancelled {
            write!(f, "item {} cancelled: {}", self.index, self.message)
        } else {
            write!(f, "item {} panicked: {}", self.index, self.message)
        }
    }
}

/// Best-effort text of a panic payload.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

fn cancelled_error(index: usize) -> ParError {
    ParError {
        index,
        message: "fan-out cancelled after an earlier item panicked".to_string(),
        cancelled: true,
    }
}

/// Fallible variant of [`par_map`]: see [`par_try_map_indexed`].
pub fn par_try_map<T: Sync, U: Send>(
    items: &[T],
    f: impl Fn(&T) -> U + Sync,
) -> Vec<Result<U, ParError>> {
    par_try_map_indexed(items.len(), |i| f(&items[i]))
}

/// Panic-isolating variant of [`par_map_indexed`], used by governed
/// pipeline stages.
///
/// Each worker closure runs under [`catch_unwind`]; a panicking item
/// becomes a per-item [`ParError`] at the join point instead of
/// aborting the whole fan-out. The first panic also cooperatively
/// cancels the remaining queue: workers stop claiming new indices, and
/// unclaimed items come back as [`ParError`]s with `cancelled` set.
/// Items already in flight on other workers run to completion, so every
/// slot of the result is either the item's value, its own panic, or a
/// cancellation — in input order, like [`par_map_indexed`].
///
/// Which items were still queued when the panic landed depends on
/// scheduling, so cancellations are *not* deterministic across thread
/// counts (the serial inline path cancels everything after the panicking
/// index). Callers record them as non-reproducible degradations.
pub fn par_try_map_indexed<U: Send>(
    n: usize,
    f: impl Fn(usize) -> U + Sync,
) -> Vec<Result<U, ParError>> {
    let threads = thread_count().min(n.max(1));
    if threads <= 1 || n <= 1 || IN_PAR_WORKER.with(Cell::get) {
        let mut out = Vec::with_capacity(n);
        let mut cancelled = false;
        for i in 0..n {
            if cancelled {
                out.push(Err(cancelled_error(i)));
                continue;
            }
            match catch_unwind(AssertUnwindSafe(|| f(i))) {
                Ok(v) => out.push(Ok(v)),
                Err(payload) => {
                    cancelled = true;
                    out.push(Err(ParError {
                        index: i,
                        message: panic_text(payload.as_ref()),
                        cancelled: false,
                    }));
                }
            }
        }
        return out;
    }
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    isax_trace::counter("par.fanouts", 1);
    isax_trace::counter("par.items", n as u64);
    isax_trace::counter("par.workers_spawned", threads as u64);
    let f = &f;
    let next = &next;
    let stop = &stop;
    let req = isax_trace::current_request();
    let buckets: Vec<Vec<(usize, Result<U, ParError>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                scope.spawn(move || {
                    IN_PAR_WORKER.with(|flag| flag.set(true));
                    isax_trace::set_track(worker as u32 + 1);
                    isax_trace::set_request(req);
                    let _span = isax_trace::span("par.worker");
                    let mut local = Vec::new();
                    loop {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        match catch_unwind(AssertUnwindSafe(|| f(i))) {
                            Ok(v) => local.push((i, Ok(v))),
                            Err(payload) => {
                                stop.store(true, Ordering::Relaxed);
                                local.push((
                                    i,
                                    Err(ParError {
                                        index: i,
                                        message: panic_text(payload.as_ref()),
                                        cancelled: false,
                                    }),
                                ));
                            }
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker bodies are panic-contained"))
            .collect()
    });
    let mut slots: Vec<Option<Result<U, ParError>>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    for (i, v) in buckets.into_iter().flatten() {
        slots[i] = Some(v);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| s.unwrap_or_else(|| Err(cancelled_error(i))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn indexed_matches_serial_for_every_size() {
        for n in [0usize, 1, 2, 3, 7, 64, 257] {
            let out = par_map_indexed(n, |i| i as u64 + 1);
            assert_eq!(out, (0..n).map(|i| i as u64 + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let calls = AtomicU64::new(0);
        let out = par_map_indexed(500, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 500);
        assert_eq!(out.len(), 500);
    }

    #[test]
    fn override_pins_thread_count() {
        set_thread_override(Some(3));
        assert_eq!(thread_count(), 3);
        set_thread_override(Some(1));
        assert_eq!(thread_count(), 1);
        // Serial path still computes correctly.
        assert_eq!(par_map(&[5u32, 6], |&x| x + 1), vec![6, 7]);
        set_thread_override(None);
        assert!(thread_count() >= 1);
    }

    #[test]
    fn nested_calls_serialize_on_the_worker() {
        set_thread_override(Some(4));
        let out = par_map_indexed(6, |i| par_map_indexed(6, move |j| i * 6 + j));
        set_thread_override(None);
        let expect: Vec<Vec<usize>> = (0..6)
            .map(|i| (0..6).map(|j| i * 6 + j).collect())
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn try_map_matches_serial_when_nothing_panics() {
        let items: Vec<usize> = (0..200).collect();
        let out = par_try_map(&items, |&x| x * 3);
        let vals: Vec<usize> = out.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(vals, (0..200).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn try_map_contains_a_panic_as_a_per_item_error() {
        set_thread_override(Some(4));
        let out = par_try_map_indexed(64, |i| {
            if i == 13 {
                panic!("boom at 13");
            }
            i
        });
        set_thread_override(None);
        assert_eq!(out.len(), 64);
        let err = out[13].as_ref().unwrap_err();
        assert_eq!(err.index, 13);
        assert!(!err.cancelled);
        assert!(err.message.contains("boom at 13"));
        // Everything the workers completed is correct; everything else
        // is a cancellation, never a wrong value.
        for (i, r) in out.iter().enumerate() {
            match r {
                Ok(v) => assert_eq!(*v, i),
                Err(e) => assert!(e.index == i && (e.cancelled || i == 13)),
            }
        }
    }

    #[test]
    fn try_map_serial_path_cancels_everything_after_the_panic() {
        set_thread_override(Some(1));
        let out = par_try_map_indexed(6, |i| {
            if i == 2 {
                panic!("boom");
            }
            i
        });
        set_thread_override(None);
        assert_eq!(out[0], Ok(0));
        assert_eq!(out[1], Ok(1));
        let err = out[2].as_ref().unwrap_err();
        assert!(!err.cancelled && err.message.contains("boom"));
        for (i, r) in out.iter().enumerate().skip(3) {
            let e = r.as_ref().unwrap_err();
            assert!(e.cancelled, "item {i} should be cancelled");
        }
    }

    #[test]
    fn try_map_processes_every_item_exactly_once_without_faults() {
        let calls = AtomicU64::new(0);
        let out = par_try_map_indexed(300, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 300);
        assert!(out.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn worker_panics_propagate() {
        set_thread_override(Some(4));
        let r = std::panic::catch_unwind(|| {
            par_map_indexed(64, |i| {
                if i == 13 {
                    panic!("boom at 13");
                }
                i
            })
        });
        set_thread_override(None);
        assert!(r.is_err());
    }
}
