//! A compact growable bitset used for dataflow-graph node sets.
//!
//! The design-space explorer manipulates millions of candidate node sets;
//! `BitSet` gives O(words) union/equality/hash instead of allocating tree
//! sets per candidate.

/// A growable set of small unsigned integers backed by 64-bit words.
///
/// # Example
///
/// ```
/// use isax_graph::BitSet;
///
/// let mut s = BitSet::new();
/// s.insert(3);
/// s.insert(70);
/// assert!(s.contains(3));
/// assert!(!s.contains(4));
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 70]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        BitSet { words: Vec::new() }
    }

    /// Creates an empty set with capacity for values `< capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
        }
    }

    /// Inserts `v`; returns true if it was not already present.
    pub fn insert(&mut self, v: usize) -> bool {
        let (w, b) = (v / 64, v % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes `v`; returns true if it was present.
    pub fn remove(&mut self, v: usize) -> bool {
        let (w, b) = (v / 64, v % 64);
        if w >= self.words.len() {
            return false;
        }
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        if had {
            self.normalize();
        }
        had
    }

    /// Membership test.
    pub fn contains(&self, v: usize) -> bool {
        let (w, b) = (v / 64, v % 64);
        w < self.words.len() && self.words[w] & (1 << b) != 0
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates elements in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Returns a copy with `v` inserted.
    pub fn with(&self, v: usize) -> Self {
        let mut s = self.clone();
        s.insert(v);
        s
    }

    /// True if `self` and `other` share no elements.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & b == 0)
    }

    /// True if every element of `self` is in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.words.iter().enumerate().all(|(i, &w)| {
            let o = other.words.get(i).copied().unwrap_or(0);
            w & !o == 0
        })
    }

    /// Removes all elements, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.words.clear();
    }

    /// Adds every element of `other` to `self`.
    pub fn union_with(&mut self, other: &BitSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (a, &b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }

    /// Drop trailing zero words so that equality and hashing are canonical.
    fn normalize(&mut self) {
        while self.words.last() == Some(&0) {
            self.words.pop();
        }
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let mut s = BitSet::new();
        for v in iter {
            s.insert(v);
        }
        s
    }
}

impl Extend<usize> for BitSet {
    fn extend<T: IntoIterator<Item = usize>>(&mut self, iter: T) {
        for v in iter {
            self.insert(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new();
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.contains(5));
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert!(s.is_empty());
    }

    #[test]
    fn equality_is_canonical_after_removal() {
        let mut a = BitSet::new();
        a.insert(200);
        a.remove(200);
        let b = BitSet::new();
        assert_eq!(a, b, "trailing empty words must not break equality");
    }

    #[test]
    fn iteration_order_ascending() {
        let s: BitSet = [100usize, 1, 64, 63].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 63, 64, 100]);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn subset_and_disjoint() {
        let a: BitSet = [1usize, 2, 3].into_iter().collect();
        let b: BitSet = [1usize, 2, 3, 99].into_iter().collect();
        let c: BitSet = [200usize].into_iter().collect();
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
        assert!(a.is_subset(&a));
    }

    #[test]
    fn clear_keeps_canonical_form() {
        let mut a: BitSet = [1usize, 500].into_iter().collect();
        a.clear();
        assert_eq!(a, BitSet::new());
        assert!(a.is_empty());
    }

    #[test]
    fn union_with_grows_and_merges() {
        let mut a: BitSet = [1usize, 64].into_iter().collect();
        let b: BitSet = [2usize, 300].into_iter().collect();
        a.union_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2, 64, 300]);
        let mut c = BitSet::new();
        c.union_with(&a);
        assert_eq!(c, a);
    }

    #[test]
    fn with_does_not_mutate() {
        let a: BitSet = [1usize].into_iter().collect();
        let b = a.with(2);
        assert!(!a.contains(2));
        assert!(b.contains(2));
    }
}
