//! VF2-style subgraph isomorphism with dataflow-aware edge semantics.
//!
//! This module reimplements the role the vflib library plays in the paper's
//! compiler: given a custom-function-unit *pattern* and an application
//! dataflow graph (*target*), enumerate every embedding of the pattern.
//!
//! Matching is **induced** on the matched node set: an edge between two
//! matched target nodes must exist *iff* the corresponding pattern edge
//! exists. This is the correct notion for hardware patterns — if a value
//! flowed between two operations in the program but not inside the CFU, the
//! CFU would compute a different function.
//!
//! Edges carry operand **ports**. By default a pattern edge into port `k`
//! only matches a target edge into port `k`; nodes reported as
//! *commutative* by the [`Matcher::commutative`] hook may match with
//! permuted ports (e.g. `add`, `and`, but not `sub` or `shl`).
//!
//! The search is the classic VF2 scheme: grow a partial mapping one pattern
//! node at a time, always choosing a pattern node adjacent to the mapped
//! region, pruning with degree and adjacency consistency, and verifying the
//! complete mapping with an exact port-multiset check.

use crate::digraph::{DiGraph, NodeId};

/// A complete embedding: `mapping[p]` is the target node matched to
/// pattern node `p`.
pub type Mapping = Vec<NodeId>;

/// Configurable subgraph-isomorphism search between a pattern and a target
/// graph.
///
/// # Example
///
/// ```
/// use isax_graph::{DiGraph, vf2::Matcher};
///
/// let mut pat = DiGraph::new();
/// let a = pat.add_node("and");
/// let b = pat.add_node("add");
/// pat.add_edge(a, b, 1);
///
/// let mut tgt = DiGraph::new();
/// let x = tgt.add_node("and");
/// let y = tgt.add_node("add");
/// tgt.add_edge(x, y, 0); // different port ...
///
/// // ... still matches because `add` is commutative:
/// let found = Matcher::new(&pat, &tgt)
///     .node_compat(|p, t| p == t)
///     .commutative(|p| *p == "add" || *p == "and")
///     .find_all();
/// assert_eq!(found.len(), 1);
/// ```
pub struct Matcher<'a, P, T, C, K> {
    pattern: &'a DiGraph<P>,
    target: &'a DiGraph<T>,
    compat: C,
    commutative: K,
    max_matches: usize,
    max_states: u64,
}

/// Work accounting for one search: how many state-space nodes the
/// recursion visited, and whether the [`Matcher::max_states`] cap cut
/// the enumeration short. The state count is a deterministic function of
/// the two graphs and the matcher configuration — it is the work unit
/// the pipeline's resource governor charges for matching.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// State-space nodes visited (recursive `extend` invocations).
    pub states: u64,
    /// True when the search stopped at the state cap; the returned
    /// embeddings are a sound prefix of the full enumeration.
    pub truncated: bool,
}

impl<'a, P, T> Matcher<'a, P, T, fn(&P, &T) -> bool, fn(&P) -> bool> {
    /// Creates a matcher with permissive defaults: every node pair is
    /// label-compatible and no node is commutative.
    pub fn new(pattern: &'a DiGraph<P>, target: &'a DiGraph<T>) -> Self {
        fn always<P, T>(_: &P, _: &T) -> bool {
            true
        }
        fn never<P>(_: &P) -> bool {
            false
        }
        Matcher {
            pattern,
            target,
            compat: always::<P, T>,
            commutative: never::<P>,
            max_matches: usize::MAX,
            max_states: u64::MAX,
        }
    }
}

impl<'a, P, T, C, K> Matcher<'a, P, T, C, K>
where
    C: Fn(&P, &T) -> bool,
    K: Fn(&P) -> bool,
{
    /// Sets the node label compatibility predicate.
    pub fn node_compat<C2>(self, compat: C2) -> Matcher<'a, P, T, C2, K>
    where
        C2: Fn(&P, &T) -> bool,
    {
        Matcher {
            pattern: self.pattern,
            target: self.target,
            compat,
            commutative: self.commutative,
            max_matches: self.max_matches,
            max_states: self.max_states,
        }
    }

    /// Sets the predicate that marks pattern nodes whose input ports may be
    /// permuted during matching.
    pub fn commutative<K2>(self, commutative: K2) -> Matcher<'a, P, T, C, K2>
    where
        K2: Fn(&P) -> bool,
    {
        Matcher {
            pattern: self.pattern,
            target: self.target,
            compat: self.compat,
            commutative,
            max_matches: self.max_matches,
            max_states: self.max_states,
        }
    }

    /// Caps the number of embeddings returned.
    pub fn max_matches(mut self, cap: usize) -> Self {
        self.max_matches = cap;
        self
    }

    /// Caps the number of state-space nodes the search may visit. At the
    /// cap the search stops and reports `truncated` in its
    /// [`SearchStats`]; the embeddings found so far are still complete,
    /// verified matches. This is how the resource governor bounds
    /// worst-case exponential matching work deterministically.
    pub fn max_states(mut self, cap: u64) -> Self {
        self.max_states = cap;
        self
    }

    /// Enumerates embeddings of the pattern in the target, up to the
    /// configured cap.
    ///
    /// Returns an empty vector when the pattern is empty or larger than the
    /// target.
    pub fn find_all(&self) -> Vec<Mapping> {
        self.find_all_with_stats().0
    }

    /// Like [`Matcher::find_all`], also reporting the search work done.
    pub fn find_all_with_stats(&self) -> (Vec<Mapping>, SearchStats) {
        let mut stats = SearchStats::default();
        let np = self.pattern.node_count();
        if np == 0 || np > self.target.node_count() {
            return (Vec::new(), stats);
        }
        let order = self.search_order();
        let mut state = State {
            p2t: vec![None; np],
            used: vec![false; self.target.node_count()],
            found: Vec::new(),
        };
        self.extend(&order, 0, &mut state, &mut stats);
        (state.found, stats)
    }

    /// Returns the first embedding found, if any.
    pub fn find_first(&self) -> Option<Mapping> {
        let capped = Matcher {
            pattern: self.pattern,
            target: self.target,
            compat: &self.compat,
            commutative: &self.commutative,
            max_matches: 1,
            max_states: self.max_states,
        };
        capped.find_all().into_iter().next()
    }

    /// Counts embeddings (up to the cap).
    pub fn count(&self) -> usize {
        self.find_all().len()
    }

    /// Pattern-node visit order: a BFS over the (weakly connected) pattern
    /// so every node after the first is adjacent to an already-mapped one.
    /// Disconnected leftovers are appended afterwards so the search stays
    /// complete even for non-connected patterns.
    fn search_order(&self) -> Vec<NodeId> {
        let np = self.pattern.node_count();
        let mut order: Vec<NodeId> = Vec::with_capacity(np);
        let mut seen = vec![false; np];
        // Start from the node with the largest total degree: most
        // constrained first.
        let start = self
            .pattern
            .node_ids()
            .max_by_key(|&n| self.pattern.in_degree(n) + self.pattern.out_degree(n))
            .expect("non-empty pattern");
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(start);
        seen[start.index()] = true;
        while let Some(n) = queue.pop_front() {
            order.push(n);
            for e in self.pattern.succs(n) {
                if !seen[e.dst.index()] {
                    seen[e.dst.index()] = true;
                    queue.push_back(e.dst);
                }
            }
            for e in self.pattern.preds(n) {
                if !seen[e.src.index()] {
                    seen[e.src.index()] = true;
                    queue.push_back(e.src);
                }
            }
        }
        for n in self.pattern.node_ids() {
            if !seen[n.index()] {
                order.push(n);
            }
        }
        order
    }

    fn extend(&self, order: &[NodeId], depth: usize, state: &mut State, stats: &mut SearchStats) {
        if stats.truncated || state.found.len() >= self.max_matches {
            return;
        }
        // Charge-before-visit, mirroring `isax_guard::Meter::charge`: a
        // cap of B visits exactly B states, and the refused visit is not
        // counted. Callers can therefore charge `states` back to a meter
        // without overdrawing it.
        if stats.states >= self.max_states {
            stats.truncated = true;
            return;
        }
        stats.states += 1;
        if depth == order.len() {
            let mapping: Mapping = state.p2t.iter().map(|m| m.unwrap()).collect();
            if self.verify(&mapping) {
                state.found.push(mapping);
            }
            return;
        }
        let p = order[depth];
        let candidates = self.candidates_for(p, state);
        for t in candidates {
            if state.used[t.index()] {
                continue;
            }
            if !self.feasible(p, t, state) {
                continue;
            }
            state.p2t[p.index()] = Some(t);
            state.used[t.index()] = true;
            self.extend(order, depth + 1, state, stats);
            state.p2t[p.index()] = None;
            state.used[t.index()] = false;
            if stats.truncated || state.found.len() >= self.max_matches {
                return;
            }
        }
    }

    /// Candidate target nodes for pattern node `p`: derived from the target
    /// adjacency of an already-mapped pattern neighbour when one exists,
    /// otherwise all target nodes.
    fn candidates_for(&self, p: NodeId, state: &State) -> Vec<NodeId> {
        // Prefer a mapped predecessor in the pattern: targets are then the
        // successors of its image.
        for e in self.pattern.preds(p) {
            if let Some(t_src) = state.p2t[e.src.index()] {
                let mut v: Vec<NodeId> = self.target.succs(t_src).map(|te| te.dst).collect();
                v.sort_unstable();
                v.dedup();
                return v;
            }
        }
        for e in self.pattern.succs(p) {
            if let Some(t_dst) = state.p2t[e.dst.index()] {
                let mut v: Vec<NodeId> = self.target.preds(t_dst).map(|te| te.src).collect();
                v.sort_unstable();
                v.dedup();
                return v;
            }
        }
        self.target.node_ids().collect()
    }

    /// Local consistency of the candidate pair `(p, t)` against the current
    /// partial mapping.
    fn feasible(&self, p: NodeId, t: NodeId, state: &State) -> bool {
        if !(self.compat)(&self.pattern[p], &self.target[t]) {
            return false;
        }
        // Degree pruning: every internal pattern edge must find a distinct
        // target edge, and matching is induced, so counts must not exceed.
        if self.pattern.in_degree(p) > self.target.in_degree(t)
            || self.pattern.out_degree(p) > self.target.out_degree(t)
        {
            return false;
        }
        let comm_p = (self.commutative)(&self.pattern[p]);
        // Pattern in-edges whose source is mapped must exist in the target.
        for e in self.pattern.preds(p) {
            if let Some(ts) = state.p2t[e.src.index()] {
                let ok = if comm_p {
                    self.target.has_edge(ts, t)
                } else {
                    self.target.has_edge_on_port(ts, t, e.port)
                };
                if !ok {
                    return false;
                }
            }
        }
        // Pattern out-edges whose destination is mapped must exist.
        for e in self.pattern.succs(p) {
            if let Some(td) = state.p2t[e.dst.index()] {
                let comm_dst = (self.commutative)(&self.pattern[e.dst]);
                let ok = if comm_dst {
                    self.target.has_edge(t, td)
                } else {
                    self.target.has_edge_on_port(t, td, e.port)
                };
                if !ok {
                    return false;
                }
            }
        }
        // Induced check: target edges between t and mapped nodes must be
        // mirrored by pattern edges.
        for te in self.target.preds(t) {
            if let Some(ps) = state.t2p(te.src) {
                let mirrored = if comm_p {
                    self.pattern.has_edge(ps, p)
                } else {
                    self.pattern.has_edge_on_port(ps, p, te.port)
                };
                if !mirrored {
                    return false;
                }
            }
        }
        for te in self.target.succs(t) {
            if let Some(pd) = state.t2p(te.dst) {
                let comm_dst = (self.commutative)(&self.pattern[pd]);
                let mirrored = if comm_dst {
                    self.pattern.has_edge(p, pd)
                } else {
                    self.pattern.has_edge_on_port(p, pd, te.port)
                };
                if !mirrored {
                    return false;
                }
            }
        }
        true
    }

    /// Exact verification of a complete mapping: for every pattern node the
    /// multiset of internal in-edges must equal the target's, port-exact for
    /// non-commutative nodes and source-exact (ports free) for commutative
    /// ones.
    fn verify(&self, mapping: &Mapping) -> bool {
        let in_match = |t: NodeId| mapping.contains(&t);
        for p in self.pattern.node_ids() {
            let t = mapping[p.index()];
            let comm = (self.commutative)(&self.pattern[p]);
            let mut pat_in: Vec<(u8, NodeId)> = self
                .pattern
                .preds(p)
                .map(|e| (e.port, mapping[e.src.index()]))
                .collect();
            let mut tgt_in: Vec<(u8, NodeId)> = self
                .target
                .preds(t)
                .filter(|e| in_match(e.src))
                .map(|e| (e.port, e.src))
                .collect();
            if comm {
                pat_in.sort_unstable_by_key(|&(_, s)| s);
                tgt_in.sort_unstable_by_key(|&(_, s)| s);
                // Ports must still be distinct on both sides (a producer
                // feeding ports {0,1} can only match a producer pair that
                // also covers two distinct ports). With sources sorted,
                // compare source multisets and port-set cardinalities.
                let ps: Vec<NodeId> = pat_in.iter().map(|&(_, s)| s).collect();
                let ts: Vec<NodeId> = tgt_in.iter().map(|&(_, s)| s).collect();
                if ps != ts {
                    return false;
                }
                let mut pports: Vec<u8> = pat_in.iter().map(|&(p, _)| p).collect();
                let mut tports: Vec<u8> = tgt_in.iter().map(|&(p, _)| p).collect();
                pports.sort_unstable();
                tports.sort_unstable();
                pports.dedup();
                tports.dedup();
                if pports.len() != tports.len() {
                    return false;
                }
            } else {
                pat_in.sort_unstable();
                tgt_in.sort_unstable();
                if pat_in != tgt_in {
                    return false;
                }
            }
        }
        true
    }
}

struct State {
    p2t: Vec<Option<NodeId>>,
    used: Vec<bool>,
    found: Vec<Mapping>,
}

impl State {
    fn t2p(&self, t: NodeId) -> Option<NodeId> {
        self.p2t
            .iter()
            .position(|&m| m == Some(t))
            .map(|i| NodeId(i as u32))
    }
}

/// Tests whether two graphs are isomorphic under the given label
/// compatibility and commutativity hooks.
///
/// # Example
///
/// ```
/// use isax_graph::{DiGraph, vf2::are_isomorphic};
///
/// let mut a = DiGraph::new();
/// let x = a.add_node("shl");
/// let y = a.add_node("and");
/// a.add_edge(x, y, 0);
///
/// let mut b = DiGraph::new();
/// let v = b.add_node("and");
/// let u = b.add_node("shl");
/// b.add_edge(u, v, 0);
///
/// assert!(are_isomorphic(&a, &b, |p, t| p == t, |_| false));
/// ```
pub fn are_isomorphic<P, T>(
    a: &DiGraph<P>,
    b: &DiGraph<T>,
    compat: impl Fn(&P, &T) -> bool,
    commutative: impl Fn(&P) -> bool,
) -> bool {
    if a.node_count() != b.node_count() || a.edge_count() != b.edge_count() {
        return false;
    }
    if a.node_count() == 0 {
        return true;
    }
    Matcher::new(a, b)
        .node_compat(compat)
        .commutative(commutative)
        .max_matches(1)
        .find_first()
        .is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eq_labels(p: &&str, t: &&str) -> bool {
        p == t
    }

    #[test]
    fn single_node_matches_everywhere() {
        let mut pat = DiGraph::new();
        pat.add_node("add");
        let mut tgt = DiGraph::new();
        tgt.add_node("add");
        tgt.add_node("add");
        tgt.add_node("sub");
        let m = Matcher::new(&pat, &tgt).node_compat(eq_labels).find_all();
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn chain_matches_with_ports() {
        // pattern: shl ->(port1) sub
        let mut pat = DiGraph::new();
        let s = pat.add_node("shl");
        let b = pat.add_node("sub");
        pat.add_edge(s, b, 1);

        // target: one sub fed on port 1, one fed on port 0.
        let mut tgt = DiGraph::new();
        let s1 = tgt.add_node("shl");
        let b1 = tgt.add_node("sub");
        tgt.add_edge(s1, b1, 1);
        let s2 = tgt.add_node("shl");
        let b2 = tgt.add_node("sub");
        tgt.add_edge(s2, b2, 0);

        let m = Matcher::new(&pat, &tgt).node_compat(eq_labels).find_all();
        assert_eq!(m.len(), 1, "sub is not commutative: port must match");
        assert_eq!(m[0], vec![s1, b1]);
    }

    #[test]
    fn commutative_ports_are_free() {
        let mut pat = DiGraph::new();
        let s = pat.add_node("shl");
        let a = pat.add_node("add");
        pat.add_edge(s, a, 1);

        let mut tgt = DiGraph::new();
        let s2 = tgt.add_node("shl");
        let a2 = tgt.add_node("add");
        tgt.add_edge(s2, a2, 0);

        let strict = Matcher::new(&pat, &tgt).node_compat(eq_labels).find_all();
        assert!(strict.is_empty());
        let relaxed = Matcher::new(&pat, &tgt)
            .node_compat(eq_labels)
            .commutative(|l| *l == "add")
            .find_all();
        assert_eq!(relaxed.len(), 1);
    }

    #[test]
    fn induced_semantics_reject_extra_internal_edge() {
        // Pattern: a -> c, b -> c (no a -> b edge).
        let mut pat = DiGraph::new();
        let a = pat.add_node("and");
        let b = pat.add_node("or");
        let c = pat.add_node("xor");
        pat.add_edge(a, c, 0);
        pat.add_edge(b, c, 1);

        // Target has an additional a->b edge among the matched nodes: the
        // CFU would not implement that dataflow, so the match must fail.
        let mut tgt = DiGraph::new();
        let ta = tgt.add_node("and");
        let tb = tgt.add_node("or");
        let tc = tgt.add_node("xor");
        tgt.add_edge(ta, tc, 0);
        tgt.add_edge(tb, tc, 1);
        tgt.add_edge(ta, tb, 0);

        let m = Matcher::new(&pat, &tgt).node_compat(eq_labels).find_all();
        assert!(m.is_empty());
    }

    #[test]
    fn multiple_disjoint_matches() {
        let mut pat = DiGraph::new();
        let x = pat.add_node("shl");
        let y = pat.add_node("and");
        pat.add_edge(x, y, 0);

        let mut tgt = DiGraph::new();
        for _ in 0..3 {
            let s = tgt.add_node("shl");
            let a = tgt.add_node("and");
            tgt.add_edge(s, a, 0);
        }
        let m = Matcher::new(&pat, &tgt).node_compat(eq_labels).find_all();
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn max_matches_caps_enumeration() {
        let mut pat = DiGraph::new();
        pat.add_node("add");
        let mut tgt = DiGraph::new();
        for _ in 0..10 {
            tgt.add_node("add");
        }
        let m = Matcher::new(&pat, &tgt)
            .node_compat(eq_labels)
            .max_matches(4)
            .find_all();
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn state_count_is_deterministic_and_capping_truncates_soundly() {
        let mut pat = DiGraph::new();
        let x = pat.add_node("shl");
        let y = pat.add_node("and");
        pat.add_edge(x, y, 0);

        let mut tgt = DiGraph::new();
        for _ in 0..8 {
            let s = tgt.add_node("shl");
            let a = tgt.add_node("and");
            tgt.add_edge(s, a, 0);
        }

        let (full, full_stats) = Matcher::new(&pat, &tgt)
            .node_compat(eq_labels)
            .find_all_with_stats();
        assert_eq!(full.len(), 8);
        assert!(!full_stats.truncated);
        assert!(full_stats.states > 0);
        // Repeat runs visit exactly the same states.
        let (_, again) = Matcher::new(&pat, &tgt)
            .node_compat(eq_labels)
            .find_all_with_stats();
        assert_eq!(full_stats, again);

        // Cap below the full search: a sound prefix of the enumeration.
        let (some, capped) = Matcher::new(&pat, &tgt)
            .node_compat(eq_labels)
            .max_states(full_stats.states / 2)
            .find_all_with_stats();
        assert!(capped.truncated);
        assert!(capped.states <= full_stats.states / 2 + 1);
        assert!(!some.is_empty() && some.len() < 8);
        assert_eq!(&full[..some.len()], &some[..], "prefix of full result");
    }

    #[test]
    fn zero_state_cap_finds_nothing_but_terminates() {
        let mut pat = DiGraph::new();
        pat.add_node("add");
        let mut tgt = DiGraph::new();
        tgt.add_node("add");
        let (m, stats) = Matcher::new(&pat, &tgt)
            .node_compat(eq_labels)
            .max_states(0)
            .find_all_with_stats();
        assert!(m.is_empty());
        assert!(stats.truncated);
    }

    #[test]
    fn parallel_edge_same_producer() {
        // pattern: x feeds both ports of add (add v, x, x).
        let mut pat = DiGraph::new();
        let x = pat.add_node("shl");
        let a = pat.add_node("add");
        pat.add_edge(x, a, 0);
        pat.add_edge(x, a, 1);

        // Target 1: same shape -> match.
        let mut t1 = DiGraph::new();
        let tx = t1.add_node("shl");
        let ta = t1.add_node("add");
        t1.add_edge(tx, ta, 0);
        t1.add_edge(tx, ta, 1);
        assert_eq!(
            Matcher::new(&pat, &t1)
                .node_compat(eq_labels)
                .commutative(|l| *l == "add")
                .count(),
            1
        );

        // Target 2: add has only one port from the shl -> no match.
        let mut t2 = DiGraph::new();
        let ux = t2.add_node("shl");
        let ua = t2.add_node("add");
        t2.add_edge(ux, ua, 0);
        assert_eq!(
            Matcher::new(&pat, &t2)
                .node_compat(eq_labels)
                .commutative(|l| *l == "add")
                .count(),
            0
        );
    }

    #[test]
    fn isomorphism_detects_commutative_twins() {
        // a + b == b + a under commutativity, not without.
        let mut g1 = DiGraph::new();
        let a1 = g1.add_node("ld");
        let b1 = g1.add_node("shl");
        let p1 = g1.add_node("add");
        g1.add_edge(a1, p1, 0);
        g1.add_edge(b1, p1, 1);

        let mut g2 = DiGraph::new();
        let a2 = g2.add_node("ld");
        let b2 = g2.add_node("shl");
        let p2 = g2.add_node("add");
        g2.add_edge(a2, p2, 1);
        g2.add_edge(b2, p2, 0);

        assert!(!are_isomorphic(&g1, &g2, |p, t| p == t, |_| false));
        assert!(are_isomorphic(&g1, &g2, |p, t| p == t, |l| *l == "add"));
    }

    #[test]
    fn empty_pattern_yields_nothing() {
        let pat: DiGraph<&str> = DiGraph::new();
        let mut tgt = DiGraph::new();
        tgt.add_node("add");
        assert!(Matcher::new(&pat, &tgt).find_all().is_empty());
    }

    #[test]
    fn pattern_larger_than_target_yields_nothing() {
        let mut pat = DiGraph::new();
        let a = pat.add_node("add");
        let b = pat.add_node("add");
        pat.add_edge(a, b, 0);
        let mut tgt = DiGraph::new();
        tgt.add_node("add");
        assert!(Matcher::new(&pat, &tgt).find_all().is_empty());
    }

    #[test]
    fn diamond_in_larger_graph() {
        // Pattern: the blowfish-style diamond  a -> b, a -> c, b -> d, c -> d.
        let mut pat = DiGraph::new();
        let a = pat.add_node("xor");
        let b = pat.add_node("shl");
        let c = pat.add_node("shr");
        let d = pat.add_node("or");
        pat.add_edge(a, b, 0);
        pat.add_edge(a, c, 0);
        pat.add_edge(b, d, 0);
        pat.add_edge(c, d, 1);

        let mut tgt = DiGraph::new();
        let pre = tgt.add_node("add");
        let ta = tgt.add_node("xor");
        let tb = tgt.add_node("shl");
        let tc = tgt.add_node("shr");
        let td = tgt.add_node("or");
        let post = tgt.add_node("and");
        tgt.add_edge(pre, ta, 0);
        tgt.add_edge(ta, tb, 0);
        tgt.add_edge(ta, tc, 0);
        tgt.add_edge(tb, td, 0);
        tgt.add_edge(tc, td, 1);
        tgt.add_edge(td, post, 0);

        let m = Matcher::new(&pat, &tgt).node_compat(eq_labels).find_all();
        assert_eq!(m.len(), 1);
        assert_eq!(m[0], vec![ta, tb, tc, td]);
    }
}
