//! Property tests tying the fingerprint to ground-truth isomorphism.

use isax_graph::{canon, vf2, DiGraph, NodeId};
use proptest::prelude::*;

const LABELS: [&str; 6] = ["add", "sub", "and", "xor", "shl", "mul"];

fn commutative(l: &&str) -> bool {
    matches!(*l, "add" | "and" | "xor" | "mul")
}

fn label_key(l: &&str) -> u64 {
    canon::hash_str(l)
}

#[derive(Debug, Clone)]
struct GraphSpec {
    labels: Vec<usize>,
    edges: Vec<(usize, usize, u8)>,
}

fn graph_spec() -> impl Strategy<Value = GraphSpec> {
    (2usize..9).prop_flat_map(|n| {
        (
            proptest::collection::vec(0..LABELS.len(), n..=n),
            proptest::collection::vec((0..n, 0..n, 0u8..2), 0..(2 * n)),
        )
            .prop_map(|(labels, edges)| GraphSpec { labels, edges })
    })
}

fn build(spec: &GraphSpec, perm: &[usize]) -> DiGraph<&'static str> {
    // perm[i] = insertion position of original node i.
    let n = spec.labels.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| perm[i]);
    let mut g = DiGraph::new();
    let mut ids = vec![NodeId(0); n];
    for &orig in &order {
        ids[orig] = g.add_node(LABELS[spec.labels[orig]]);
    }
    // Forward edges only (keep it a DAG like a dataflow graph). Drop
    // duplicate (src, dst, port) triples so both permutations agree.
    let mut seen = std::collections::BTreeSet::new();
    for &(a, b, port) in &spec.edges {
        let (src, dst) = if a < b {
            (a, b)
        } else if b < a {
            (b, a)
        } else {
            continue;
        };
        if seen.insert((src, dst, port)) {
            g.add_edge(ids[src], ids[dst], port);
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_env_cases(256))]

    /// Soundness: isomorphic graphs (same structure, shuffled insertion
    /// order) always share a fingerprint, and VF2 agrees.
    #[test]
    fn permuted_graphs_share_fingerprints(spec in graph_spec(), seed in 0u64..1000) {
        let n = spec.labels.len();
        let identity: Vec<usize> = (0..n).collect();
        // Derive a permutation from the seed.
        let mut perm: Vec<usize> = (0..n).collect();
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        for i in (1..n).rev() {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            perm.swap(i, (s as usize) % (i + 1));
        }
        let g1 = build(&spec, &identity);
        let g2 = build(&spec, &perm);
        let f1 = canon::fingerprint(&g1, label_key, commutative, &Default::default());
        let f2 = canon::fingerprint(&g2, label_key, commutative, &Default::default());
        prop_assert_eq!(f1, f2, "permutation changed the fingerprint");
        prop_assert!(vf2::are_isomorphic(&g1, &g2, |a, b| a == b, commutative));
    }

    /// Consistency: when fingerprints differ the graphs are truly
    /// non-isomorphic (the converse of soundness; collisions are allowed,
    /// false distinctions are not).
    #[test]
    fn distinct_fingerprints_imply_non_isomorphic(a in graph_spec(), b in graph_spec()) {
        let identity_a: Vec<usize> = (0..a.labels.len()).collect();
        let identity_b: Vec<usize> = (0..b.labels.len()).collect();
        let ga = build(&a, &identity_a);
        let gb = build(&b, &identity_b);
        let fa = canon::fingerprint(&ga, label_key, commutative, &Default::default());
        let fb = canon::fingerprint(&gb, label_key, commutative, &Default::default());
        if fa != fb {
            prop_assert!(!vf2::are_isomorphic(&ga, &gb, |x, y| x == y, commutative));
        }
    }

    /// Every VF2 self-match of a graph is an automorphism: mapped labels
    /// agree and edges are preserved.
    #[test]
    fn self_matches_are_automorphisms(spec in graph_spec()) {
        let identity: Vec<usize> = (0..spec.labels.len()).collect();
        let g = build(&spec, &identity);
        let matches = vf2::Matcher::new(&g, &g)
            .node_compat(|a, b| a == b)
            .commutative(commutative)
            .max_matches(16)
            .find_all();
        prop_assert!(!matches.is_empty(), "identity mapping always exists");
        for m in matches {
            for v in g.node_ids() {
                prop_assert_eq!(g[v], g[m[v.index()]]);
            }
        }
    }
}
