//! Hardware timing and area library for custom-function-unit synthesis.
//!
//! The paper's DFG space explorer consults "a hardware library \[that\]
//! provides timing and area numbers ... so that it can accurately gauge
//! the cycle time and area requirements of combined primitive operations"
//! (Fig. 1). The original numbers came from Synopsys characterization of a
//! 0.18 µ standard-cell library at a 300 MHz system clock; this crate
//! substitutes a static table calibrated to the values the paper quotes
//! (delays are **fractions of one clock cycle**, areas are **multiples of
//! one 32-bit ripple-carry adder**):
//!
//! | operation              | delay (cycles) | area (adders) |
//! |------------------------|----------------|---------------|
//! | add / sub              | 0.30           | 1.00          |
//! | compare                | 0.32           | 1.10          |
//! | and / or / xor / andn  | 0.05           | 0.12          |
//! | not                    | 0.02           | 0.06          |
//! | shift by constant      | 0.00           | 0.02          |
//! | shift by register      | 0.25           | 1.60          |
//! | multiply               | 1.80           | 17.00         |
//! | select (mux)           | 0.10           | 0.25          |
//! | move / extend          | 0.00–0.01      | 0.00–0.02     |
//!
//! Loads, stores, divides and custom operations report no cost: they are
//! not implementable inside a CFU (memory by the paper's stated
//! assumption; division because an iterative divider would dominate any
//! budget the study considers).
//!
//! The crate also carries the **baseline ISA latencies** ("similar to
//! those of the ARM-7") used for software-side cycle estimates, and
//! aggregate helpers that compute the latency/area of a whole candidate
//! subgraph.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use isax_graph::DiGraph;
use isax_ir::{DfgLabel, Inst, OpClass, Opcode};
/// Hardware cost of one primitive operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpCost {
    /// Propagation delay as a fraction of the 300 MHz clock cycle.
    pub delay: f64,
    /// Die area in units of one 32-bit ripple-carry adder.
    pub area: f64,
}

/// Timing/area library plus baseline ISA latencies.
///
/// # Example
///
/// ```
/// use isax_hwlib::HwLibrary;
/// use isax_ir::Opcode;
///
/// let hw = HwLibrary::micron_018();
/// let add = hw.cost(Opcode::Add, &[]).unwrap();
/// assert_eq!(add.area, 1.0);
/// // A shift by a constant is just wiring:
/// let shl = hw.cost(Opcode::Shl, &[(1, 4)]).unwrap();
/// assert_eq!(shl.delay, 0.0);
/// // Loads can never join a CFU:
/// assert!(hw.cost(Opcode::LdW, &[]).is_none());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HwLibrary {
    /// Clock frequency the delays are normalized to, in MHz (informative).
    pub clock_mhz: u32,
    /// Cost of a load executed *inside* a custom function unit, when the
    /// §6 memory relaxation is enabled (`None` = loads are ineligible, the
    /// paper's evaluation setting). The delay models a deterministic
    /// on-chip data-SRAM hit; the area covers the unit's address
    /// generation and alignment muxing (the cache port itself is a shared
    /// machine resource, not CFU area).
    pub cfu_load: Option<OpCost>,
    /// Width-aware costing: when set, [`HwLibrary::cost_scaled`] shrinks
    /// an operation's delay/area by the inferred effective width of its
    /// operands (an 8-bit add is a quarter of a 32-bit ripple-carry
    /// chain). Off by default so every cost query reproduces the paper's
    /// full-width table bit-for-bit.
    pub width_aware: bool,
}

impl Default for HwLibrary {
    fn default() -> Self {
        Self::micron_018()
    }
}

impl HwLibrary {
    /// The 0.18 µ / 300 MHz library used throughout the evaluation.
    pub fn micron_018() -> Self {
        HwLibrary {
            clock_mhz: 300,
            cfu_load: None,
            width_aware: false,
        }
    }

    /// Returns the same library with width-aware costing switched on or
    /// off (builder style).
    pub fn with_width_aware(mut self, on: bool) -> Self {
        self.width_aware = on;
        self
    }

    /// The same library with the paper's §6 future-work relaxation: loads
    /// may join custom function units, costed as deterministic one-cycle
    /// SRAM accesses. Loads inside one unit share a single cache port, so
    /// the unit's latency is at least `load_count × delay` (see
    /// [`HwLibrary::subgraph_delay`]).
    pub fn micron_018_with_memory() -> Self {
        HwLibrary {
            clock_mhz: 300,
            cfu_load: Some(OpCost {
                delay: 1.0,
                area: 0.35,
            }),
            width_aware: false,
        }
    }

    /// Hardware cost of `op`, given the `(port, value)` immediates
    /// hardwired into the node (shifts by a constant are wiring).
    ///
    /// Returns `None` when the operation cannot be implemented inside a
    /// custom function unit (memory, division, custom).
    pub fn cost(&self, op: Opcode, imms: &[(u8, i64)]) -> Option<OpCost> {
        use Opcode::*;
        let c = |delay: f64, area: f64| Some(OpCost { delay, area });
        match op {
            Add | Sub => c(0.30, 1.00),
            Eq | Ne | Lt | Le | Gt | Ge | Ltu | Leu | Gtu | Geu => c(0.32, 1.10),
            And | Or | Xor | AndN => c(0.05, 0.12),
            Not => c(0.02, 0.06),
            Shl | Shr | Sar | Ror => {
                // Port 1 is the shift amount; a constant amount is wiring.
                if imms.iter().any(|&(p, _)| p == 1) {
                    c(0.00, 0.02)
                } else {
                    c(0.25, 1.60)
                }
            }
            Mul => c(1.80, 17.00),
            Select => c(0.10, 0.25),
            Mov => c(0.00, 0.00),
            SxtB | SxtH | ZxtB | ZxtH => c(0.01, 0.02),
            Div | Rem => None,
            LdB | LdBu | LdH | LdHu | LdW => self.cfu_load,
            StB | StH | StW => None,
            Custom(_) => None,
        }
    }

    /// Width-scaled hardware cost of `op`: like [`HwLibrary::cost`], but
    /// when [`HwLibrary::width_aware`] is set and the inferred effective
    /// operand width is below 32 bits, the cost shrinks with the width.
    ///
    /// The scaling model follows each primitive's dominant structure,
    /// with `f = width / 32`:
    ///
    /// * **carry chains** (add/sub, compares): delay ×f, area ×f — a
    ///   ripple-carry chain is linear in width in both dimensions;
    /// * **bitwise** (and/or/xor/andn/not, select, mov, extends): area
    ///   ×f, delay unchanged — per-bit cells in parallel;
    /// * **shifts**: area ×f, delay unchanged — fewer mux rows, same
    ///   logarithmic depth;
    /// * **multiply**: delay ×f, area ×f² — a partial-product array is
    ///   quadratic in width;
    /// * **loads** (memory relaxation): unchanged — the SRAM access time
    ///   does not depend on how many result bits the unit keeps.
    ///
    /// When width-aware mode is off, or `width >= 32`, this returns
    /// exactly [`HwLibrary::cost`] — the default pipeline never sees a
    /// scaled number.
    ///
    /// # Example
    ///
    /// ```
    /// use isax_hwlib::HwLibrary;
    /// use isax_ir::Opcode;
    ///
    /// let hw = HwLibrary::micron_018().with_width_aware(true);
    /// let full = hw.cost_scaled(Opcode::Add, &[], 32).unwrap();
    /// let byte = hw.cost_scaled(Opcode::Add, &[], 8).unwrap();
    /// assert_eq!(full.area, 1.0);
    /// assert_eq!(byte.area, 0.25);
    /// ```
    pub fn cost_scaled(&self, op: Opcode, imms: &[(u8, i64)], width: u8) -> Option<OpCost> {
        let base = self.cost(op, imms)?;
        if !self.width_aware || width >= 32 {
            return Some(base);
        }
        let f = f64::from(width.max(1)) / 32.0;
        use Opcode::*;
        let scaled = match op {
            Add | Sub | Eq | Ne | Lt | Le | Gt | Ge | Ltu | Leu | Gtu | Geu => OpCost {
                delay: base.delay * f,
                area: base.area * f,
            },
            And | Or | Xor | AndN | Not | Select | Mov | SxtB | SxtH | ZxtB | ZxtH => OpCost {
                delay: base.delay,
                area: base.area * f,
            },
            Shl | Shr | Sar | Ror => OpCost {
                delay: base.delay,
                area: base.area * f,
            },
            Mul => OpCost {
                delay: base.delay * f,
                area: base.area * f * f,
            },
            _ => base,
        };
        Some(scaled)
    }

    /// Width-scaled cost of a DFG node label (see
    /// [`HwLibrary::cost_scaled`]).
    pub fn cost_of_label_scaled(&self, label: &DfgLabel, width: u8) -> Option<OpCost> {
        self.cost_scaled(label.opcode, &label.imms, width)
    }

    /// Cost of a concrete instruction.
    pub fn cost_of_inst(&self, inst: &Inst) -> Option<OpCost> {
        let imms: Vec<(u8, i64)> = inst.imm_srcs().collect();
        self.cost(inst.opcode, &imms)
    }

    /// Cost of a DFG node label.
    pub fn cost_of_label(&self, label: &DfgLabel) -> Option<OpCost> {
        self.cost(label.opcode, &label.imms)
    }

    /// True if the operation may be included in a custom function unit.
    pub fn cfu_eligible(&self, op: Opcode) -> bool {
        self.cost(op, &[(1, 0)]).is_some() || self.cost(op, &[]).is_some()
    }

    /// Baseline (software) latency of an operation on the core processor,
    /// in cycles — "similar to those of the ARM-7".
    pub fn sw_latency(&self, op: Opcode) -> u32 {
        use Opcode::*;
        match op {
            Mul => 3,
            Div | Rem => 10,
            LdB | LdBu | LdH | LdHu | LdW => 2,
            Custom(_) => 1, // real latency comes from the machine description
            _ => 1,
        }
    }

    /// Baseline latency of a concrete instruction.
    pub fn sw_latency_of(&self, inst: &Inst) -> u32 {
        self.sw_latency(inst.opcode)
    }

    /// Aggregate fractional delay of a candidate subgraph: the longest
    /// data-dependence path through it, summing per-node delays.
    ///
    /// Returns `None` if any node is not implementable or the graph is
    /// cyclic.
    pub fn subgraph_delay(&self, g: &DiGraph<DfgLabel>) -> Option<f64> {
        self.subgraph_delay_widths(g, &[])
    }

    /// [`HwLibrary::subgraph_delay`] with per-node effective widths:
    /// `widths[i]` is the inferred width of pattern node `i` (nodes past
    /// the end of the slice count as full 32-bit). The plain variant
    /// passes an empty slice, so both run the identical code path and
    /// agree bit-for-bit when width-aware mode is off.
    pub fn subgraph_delay_widths(&self, g: &DiGraph<DfgLabel>, widths: &[u8]) -> Option<f64> {
        let order = g.topo_order()?;
        let costs: Vec<f64> = g
            .node_ids()
            .map(|n| {
                let w = widths.get(n.index()).copied().unwrap_or(32);
                self.cost_of_label_scaled(&g[n], w).map(|c| c.delay)
            })
            .collect::<Option<Vec<_>>>()?;
        let mut finish = vec![0.0f64; g.node_count()];
        let mut longest = 0.0f64;
        for n in order {
            let start = g
                .preds(n)
                .map(|e| finish[e.src.index()])
                .fold(0.0f64, f64::max);
            finish[n.index()] = start + costs[n.index()];
            longest = longest.max(finish[n.index()]);
        }
        // Loads inside a unit serialize through the single cache port.
        if let Some(load) = self.cfu_load {
            let loads = g.node_ids().filter(|&n| g[n].opcode.is_load()).count() as f64;
            longest = longest.max(loads * load.delay);
        }
        Some(longest)
    }

    /// Aggregate area of a candidate subgraph: the sum of node areas
    /// ("register file ports are a design constraint, thus they do not
    /// factor into the area").
    ///
    /// Returns `None` if any node is not implementable.
    pub fn subgraph_area(&self, g: &DiGraph<DfgLabel>) -> Option<f64> {
        self.subgraph_area_widths(g, &[])
    }

    /// [`HwLibrary::subgraph_area`] with per-node effective widths (see
    /// [`HwLibrary::subgraph_delay_widths`] for the slice convention).
    pub fn subgraph_area_widths(&self, g: &DiGraph<DfgLabel>, widths: &[u8]) -> Option<f64> {
        g.node_ids()
            .map(|n| {
                let w = widths.get(n.index()).copied().unwrap_or(32);
                self.cost_of_label_scaled(&g[n], w).map(|c| c.area)
            })
            .sum()
    }

    /// Number of execution cycles a pipelined CFU with the given
    /// fractional delay needs (at least one).
    pub fn cfu_cycles(&self, delay: f64) -> u32 {
        (delay.ceil() as u32).max(1)
    }
}

/// Rounds an area up to the nearest half adder, as the guide function's
/// area category requires ("a cost of 0.49 or 0.01 adders becomes 0.5"),
/// so tiny seeds are not penalized unfairly.
///
/// # Example
///
/// ```
/// use isax_hwlib::round_up_half_adder;
/// assert_eq!(round_up_half_adder(0.01), 0.5);
/// assert_eq!(round_up_half_adder(0.5), 0.5);
/// assert_eq!(round_up_half_adder(1.2), 1.5);
/// ```
pub fn round_up_half_adder(area: f64) -> f64 {
    let steps = (area / 0.5).ceil();
    (steps * 0.5).max(0.5)
}

/// Returns the wildcard class label hash contribution for an opcode — all
/// members of a class share it. Used when fingerprinting patterns in
/// wildcard (opcode-class) mode.
pub fn class_key(class: OpClass) -> u64 {
    class as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use isax_graph::DiGraph;

    fn hw() -> HwLibrary {
        HwLibrary::micron_018()
    }

    #[test]
    fn logicals_are_cheap_adders_are_not() {
        let and = hw().cost(Opcode::And, &[]).unwrap();
        let add = hw().cost(Opcode::Add, &[]).unwrap();
        assert!(and.delay < add.delay);
        assert!(and.area < add.area);
        // Roughly 6 logicals fit in one add's delay, per the paper's
        // observation that "many \[logicals\] can be executed in a single
        // cycle".
        assert!(3.0 * (1.0 / add.delay) < 1.0 / and.delay);
    }

    #[test]
    fn shift_cost_depends_on_operand_shape() {
        let wire = hw().cost(Opcode::Shl, &[(1, 7)]).unwrap();
        let barrel = hw().cost(Opcode::Shl, &[]).unwrap();
        assert_eq!(wire.delay, 0.0);
        assert!(barrel.delay > 0.0);
        assert!(barrel.area > wire.area);
        // A constant on port 0 (value shifted) does not make it wiring.
        let partial = hw().cost(Opcode::Shr, &[(0, 1)]).unwrap();
        assert_eq!(partial.delay, barrel.delay);
    }

    #[test]
    fn memory_and_division_are_ineligible() {
        assert!(hw().cost(Opcode::LdW, &[]).is_none());
        assert!(hw().cost(Opcode::StB, &[]).is_none());
        assert!(hw().cost(Opcode::Div, &[]).is_none());
        assert!(!hw().cfu_eligible(Opcode::LdW));
        assert!(!hw().cfu_eligible(Opcode::Div));
        assert!(hw().cfu_eligible(Opcode::Add));
        assert!(hw().cfu_eligible(Opcode::Shl));
    }

    #[test]
    fn sw_latencies_follow_arm7() {
        assert_eq!(hw().sw_latency(Opcode::Add), 1);
        assert_eq!(hw().sw_latency(Opcode::Mul), 3);
        assert_eq!(hw().sw_latency(Opcode::LdW), 2);
        assert_eq!(hw().sw_latency(Opcode::Div), 10);
    }

    fn label(op: Opcode, imms: &[(u8, i64)]) -> DfgLabel {
        DfgLabel {
            opcode: op,
            imms: imms.to_vec(),
        }
    }

    #[test]
    fn subgraph_delay_takes_critical_path() {
        // xor (0.05) -> shl#3 (0.0) -> or (0.05), with a parallel shr#29
        // branch. Critical path = 0.05 + 0.0 + 0.05 = 0.10.
        let mut g = DiGraph::new();
        let x = g.add_node(label(Opcode::Xor, &[]));
        let s1 = g.add_node(label(Opcode::Shl, &[(1, 3)]));
        let s2 = g.add_node(label(Opcode::Shr, &[(1, 29)]));
        let o = g.add_node(label(Opcode::Or, &[]));
        g.add_edge(x, s1, 0);
        g.add_edge(x, s2, 0);
        g.add_edge(s1, o, 0);
        g.add_edge(s2, o, 1);
        let d = hw().subgraph_delay(&g).unwrap();
        assert!((d - 0.10).abs() < 1e-9, "got {d}");
        let a = hw().subgraph_area(&g).unwrap();
        assert!((a - (0.12 + 0.02 + 0.02 + 0.12)).abs() < 1e-9);
        assert_eq!(hw().cfu_cycles(d), 1);
    }

    #[test]
    fn subgraph_with_memory_is_unimplementable() {
        let mut g = DiGraph::new();
        let l = g.add_node(label(Opcode::LdW, &[]));
        let a = g.add_node(label(Opcode::Add, &[]));
        g.add_edge(l, a, 0);
        assert!(hw().subgraph_delay(&g).is_none());
        assert!(hw().subgraph_area(&g).is_none());
    }

    #[test]
    fn cfu_cycles_rounds_up_and_is_at_least_one() {
        assert_eq!(hw().cfu_cycles(0.0), 1);
        assert_eq!(hw().cfu_cycles(0.9), 1);
        assert_eq!(hw().cfu_cycles(1.0), 1);
        assert_eq!(hw().cfu_cycles(1.01), 2);
        assert_eq!(hw().cfu_cycles(3.5), 4);
    }

    #[test]
    fn half_adder_rounding() {
        assert_eq!(round_up_half_adder(0.0), 0.5);
        assert_eq!(round_up_half_adder(0.49), 0.5);
        assert_eq!(round_up_half_adder(0.51), 1.0);
        assert_eq!(round_up_half_adder(2.0), 2.0);
    }

    #[test]
    fn memory_relaxation_prices_loads() {
        let hw = HwLibrary::micron_018_with_memory();
        let ld = hw.cost(Opcode::LdW, &[]).expect("loads priced");
        assert_eq!(ld.delay, 1.0);
        assert!(hw.cfu_eligible(Opcode::LdW));
        assert!(!hw.cfu_eligible(Opcode::StW), "stores stay excluded");
        // blowfish-style unit: extract chain -> load -> add.
        let mut g = DiGraph::new();
        let sh = g.add_node(label(Opcode::Shr, &[(1, 24)]));
        let sl = g.add_node(label(Opcode::Shl, &[(1, 2)]));
        let ad = g.add_node(label(Opcode::Add, &[(1, 0x2000)]));
        let ld = g.add_node(label(Opcode::LdW, &[]));
        let s0 = g.add_node(label(Opcode::Add, &[]));
        g.add_edge(sh, sl, 0);
        g.add_edge(sl, ad, 0);
        g.add_edge(ad, ld, 0);
        g.add_edge(ld, s0, 0);
        let d = hw.subgraph_delay(&g).unwrap();
        assert!((d - 1.6).abs() < 1e-9, "0.0 + 0.0 + 0.3 + 1.0 + 0.3 = {d}");
        assert_eq!(hw.cfu_cycles(d), 2);
        // The default library still refuses the same unit.
        assert!(HwLibrary::micron_018().subgraph_delay(&g).is_none());
    }

    #[test]
    fn cache_port_serializes_in_unit_loads() {
        let hw = HwLibrary::micron_018_with_memory();
        // Four parallel loads feeding a xor tree: path delay ~1.1 cycles
        // but four loads on one port take at least 4.
        let mut g = DiGraph::new();
        let lds: Vec<_> = (0..4)
            .map(|_| g.add_node(label(Opcode::LdW, &[])))
            .collect();
        let x0 = g.add_node(label(Opcode::Xor, &[]));
        let x1 = g.add_node(label(Opcode::Xor, &[]));
        let x2 = g.add_node(label(Opcode::Xor, &[]));
        g.add_edge(lds[0], x0, 0);
        g.add_edge(lds[1], x0, 1);
        g.add_edge(lds[2], x1, 0);
        g.add_edge(lds[3], x1, 1);
        g.add_edge(x0, x2, 0);
        g.add_edge(x1, x2, 1);
        let d = hw.subgraph_delay(&g).unwrap();
        assert!(d >= 4.0, "port serialization dominates: {d}");
    }

    #[test]
    fn width_scaling_shrinks_costs_only_when_enabled() {
        let off = hw();
        assert_eq!(
            off.cost_scaled(Opcode::Add, &[], 8),
            off.cost(Opcode::Add, &[]),
            "width-aware off: scaled cost is the plain cost"
        );
        let on = hw().with_width_aware(true);
        let byte = on.cost_scaled(Opcode::Add, &[], 8).unwrap();
        assert_eq!(byte.area, 0.25, "8-bit adder is a quarter carry chain");
        assert!((byte.delay - 0.30 * 0.25).abs() < 1e-12);
        // Bitwise ops: area scales, depth does not.
        let x = on.cost_scaled(Opcode::Xor, &[], 8).unwrap();
        assert_eq!(x.delay, 0.05);
        assert!((x.area - 0.12 * 0.25).abs() < 1e-12);
        // Multiplier area is quadratic in width.
        let m = on.cost_scaled(Opcode::Mul, &[], 16).unwrap();
        assert!((m.area - 17.0 * 0.25).abs() < 1e-12);
        assert!((m.delay - 1.80 * 0.5).abs() < 1e-12);
        // Full width stays exactly the table value even when enabled.
        assert_eq!(
            on.cost_scaled(Opcode::Add, &[], 32),
            on.cost(Opcode::Add, &[])
        );
        // Loads are width-independent (SRAM access time).
        let hwm = HwLibrary::micron_018_with_memory().with_width_aware(true);
        assert_eq!(hwm.cost_scaled(Opcode::LdW, &[], 8), hwm.cfu_load);
    }

    #[test]
    fn subgraph_widths_default_to_full_width() {
        let on = hw().with_width_aware(true);
        let mut g = DiGraph::new();
        let a = g.add_node(label(Opcode::Add, &[]));
        let b = g.add_node(label(Opcode::Add, &[]));
        g.add_edge(a, b, 0);
        // Empty slice = all 32-bit: identical to the plain query.
        assert_eq!(on.subgraph_delay_widths(&g, &[]), on.subgraph_delay(&g));
        assert_eq!(on.subgraph_area_widths(&g, &[]), Some(2.0));
        // One 8-bit node shrinks the totals; the missing entry is 32.
        let d = on.subgraph_delay_widths(&g, &[8]).unwrap();
        assert!((d - (0.30 * 0.25 + 0.30)).abs() < 1e-12);
        let ar = on.subgraph_area_widths(&g, &[8]).unwrap();
        assert!((ar - 1.25).abs() < 1e-12);
    }

    #[test]
    fn multiply_dominates_budgets() {
        let mul = hw().cost(Opcode::Mul, &[]).unwrap();
        assert!(mul.area > 15.0, "a 32-bit multiplier is worth many adders");
        assert!(mul.delay > 1.0, "and is pipelined over multiple cycles");
        assert_eq!(hw().cfu_cycles(mul.delay), 2);
    }
}
