//! Shared plumbing for the figure-regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one evaluation artifact of the
//! paper (see `DESIGN.md`'s experiment index). This library holds the
//! pieces they share: an analysis cache (exploration is budget-independent
//! and expensive), the budget axis, and small table-printing helpers.

#![forbid(unsafe_code)]

pub mod figures;

use isax::{Customizer, Guard, MatchOptions};
use isax_workloads::{all, by_name, Workload};
use std::collections::BTreeMap;

/// The paper's area-budget axis: one through fifteen adders.
pub const BUDGETS: [f64; 15] = [
    1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
];

/// The headline cost point used by Figures 8/9 and the summary numbers.
pub const HEADLINE_BUDGET: f64 = 15.0;

/// A workload together with its (cached) budget-independent analysis.
pub struct AnalyzedApp {
    /// The benchmark.
    pub workload: Workload,
    /// Its exploration/combination result.
    pub analysis: isax::Analysis,
}

/// Analyzes every benchmark once.
///
/// Benchmarks are independent, so the expensive analyses fan out across
/// threads (see [`isax_graph::par`]); collecting into a `BTreeMap` keyed
/// by name makes the result order-independent anyway.
pub fn analyze_suite(cz: &Customizer) -> BTreeMap<&'static str, AnalyzedApp> {
    analyze_suite_timed(cz).0
}

/// [`analyze_suite`], also reporting per-benchmark analyze wall-clock
/// seconds. The times are measured inside the worker, so on a serial run
/// they attribute the whole stage; on a parallel run they still measure
/// each kernel's own work (not the stage barrier).
pub fn analyze_suite_timed(
    cz: &Customizer,
) -> (
    BTreeMap<&'static str, AnalyzedApp>,
    BTreeMap<&'static str, f64>,
) {
    let workloads = all();
    let analyses = isax_graph::par::par_map(&workloads, |w| {
        let t = std::time::Instant::now();
        let analysis = cz.analyze(&w.program);
        (analysis, t.elapsed().as_secs_f64())
    });
    let mut apps = BTreeMap::new();
    let mut times = BTreeMap::new();
    for (w, (analysis, seconds)) in workloads.into_iter().zip(analyses) {
        times.insert(w.name, seconds);
        apps.insert(
            w.name,
            AnalyzedApp {
                workload: w,
                analysis,
            },
        );
    }
    (apps, times)
}

/// Analyzes a named subset of the suite (for tests that cannot afford
/// all thirteen benchmarks). Unknown names panic.
pub fn analyze_subset(cz: &Customizer, names: &[&str]) -> BTreeMap<&'static str, AnalyzedApp> {
    let workloads: Vec<Workload> = names
        .iter()
        .map(|n| by_name(n).unwrap_or_else(|| panic!("unknown workload `{n}`")))
        .collect();
    let analyses = isax_graph::par::par_map(&workloads, |w| cz.analyze(&w.program));
    workloads
        .into_iter()
        .zip(analyses)
        .map(|(w, analysis)| {
            (
                w.name,
                AnalyzedApp {
                    workload: w,
                    analysis,
                },
            )
        })
        .collect()
}

/// One member of the extended timing corpus: a program plus the domain
/// tag it carries into `BENCH_pipeline.json` and, for the pathological
/// stress kernels, the work-unit budget that keeps their analysis
/// bounded.
pub struct BenchKernel {
    /// Kernel (entry function) name.
    pub name: String,
    /// Corpus domain: `paper`, `stress`, `graph`, `dsp` or `gen`.
    pub domain: &'static str,
    /// The parsed program.
    pub program: isax_ir::Program,
    /// Work-unit budget for governed stages (stress corpus only; the
    /// other domains run ungoverned).
    pub work_budget: Option<u64>,
}

impl BenchKernel {
    /// The customizer this kernel's pipeline stages run under.
    pub fn customizer(&self) -> Customizer {
        let mut cz = Customizer::new();
        if let Some(units) = self.work_budget {
            cz.guard = Guard::unlimited().with_units(units);
        }
        cz
    }
}

/// Work-unit budget for the stress corpus inside the timing run — the
/// same bound the provenance CI lane uses, so the analysis terminates
/// in seconds instead of hours while still exercising governed paths.
pub const STRESS_TIMING_BUDGET: u64 = 100_000;

/// Display/report order of the corpus domains.
pub const DOMAINS: [&str; 5] = ["paper", "stress", "graph", "dsp", "gen"];

/// Physical parallelism of the measuring host.
pub fn host_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// True when a parallel measurement cannot demonstrate real speedup:
/// either the host has fewer than two CPUs (there is nothing to scale
/// onto — the "parallel" run is the serial run with extra scheduling)
/// or the run uses more workers than CPUs (time-slicing, so wall clock
/// measures contention, not scaling). Both `BENCH_pipeline.json` and
/// `BENCH_serve.json` carry this flag so downstream tooling knows the
/// throughput numbers only demonstrate determinism.
pub fn oversubscribed(threads: usize, cpus: usize) -> bool {
    cpus < 2 || threads > cpus
}

/// The full timing corpus: the 13 paper workloads, the governed stress
/// corpus, the curated graph/dsp kernels, and every seeded generator
/// kernel recorded in `kernels/gen/MANIFEST.json` (regenerated
/// in-process from its recipe, so this needs no file besides the
/// manifest itself).
pub fn extended_corpus() -> Vec<BenchKernel> {
    let mut corpus: Vec<BenchKernel> = all()
        .into_iter()
        .map(|w| BenchKernel {
            name: w.name.to_string(),
            domain: "paper",
            program: w.program,
            work_budget: None,
        })
        .collect();
    for (name, gen) in isax_gen::STRESS {
        corpus.push(BenchKernel {
            name: name.to_string(),
            domain: "stress",
            program: isax_ir::parse_program(&gen()).expect("stress kernels parse"),
            work_budget: Some(STRESS_TIMING_BUDGET),
        });
    }
    for k in isax_gen::curated() {
        corpus.push(BenchKernel {
            name: k.name.to_string(),
            domain: k.domain,
            program: isax_ir::parse_program(&(k.text)()).expect("curated kernels parse"),
            work_budget: None,
        });
    }
    let manifest_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../kernels/gen/MANIFEST.json"
    );
    let manifest = std::fs::read_to_string(manifest_path).expect("read kernels/gen/MANIFEST.json");
    let doc = isax_json::parse(&manifest).expect("parse kernels/gen/MANIFEST.json");
    for entry in doc
        .get("kernels")
        .and_then(|v| v.as_array())
        .expect("manifest has a kernels array")
    {
        let cfg = isax_gen::GenConfig {
            seed: entry.get("seed").and_then(|v| v.as_u64()).expect("seed"),
            domain: isax_gen::GenDomain::parse(
                entry
                    .get("domain")
                    .and_then(|v| v.as_str())
                    .expect("domain"),
            )
            .expect("known domain"),
            blocks: entry
                .get("blocks")
                .and_then(|v| v.as_u64())
                .expect("blocks") as usize,
        };
        corpus.push(BenchKernel {
            name: cfg.entry_name(),
            domain: "gen",
            program: isax_ir::parse_program(&isax_gen::generate(&cfg))
                .expect("generated kernels parse"),
            work_budget: None,
        });
    }
    corpus
}

/// Geometric mean, the conventional aggregate for speedup ratios.
/// Returns 1.0 for an empty slice.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Native speedup of `app` at `budget`.
pub fn native(cz: &Customizer, app: &AnalyzedApp, budget: f64) -> f64 {
    let (mdes, _) = cz.select(app.workload.name, &app.analysis, budget);
    cz.evaluate(&app.workload.program, &mdes, MatchOptions::exact())
        .speedup
}

/// Speedup of `app` on `src`'s CFUs at `budget` with the given matching.
pub fn cross(
    cz: &Customizer,
    src: &AnalyzedApp,
    app: &AnalyzedApp,
    budget: f64,
    matching: MatchOptions,
) -> f64 {
    let (mdes, _) = cz.select(src.workload.name, &src.analysis, budget);
    cz.evaluate(&app.workload.program, &mdes, matching).speedup
}

/// Prints a speedup table: one row per series, one column per budget.
pub fn print_series(title: &str, rows: &[(String, Vec<f64>)]) {
    print!("{}", figures::render_series(title, &BUDGETS, rows));
}
