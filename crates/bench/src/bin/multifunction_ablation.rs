//! Ablation for the §6 future-work item implemented in this repository:
//! multifunction CFU selection (wildcard families offered to the selector
//! as merged units at shared-hardware cost) versus the paper's plain
//! greedy.
//!
//! ```sh
//! cargo run --release -p isax-bench --bin multifunction_ablation
//! ```
//!
//! Reported per benchmark at a low and a high budget: the plain greedy
//! speedup, the multifunction speedup with exact matching, and the
//! multifunction speedup when the compiler also uses opcode-class
//! matching (the hardware is multifunctional, so class matches are the
//! honest way to drive it — and here, unlike Figures 8/9, its cost *is*
//! charged).

#![forbid(unsafe_code)]

use isax::{Customizer, MatchMode, MatchOptions};
use isax_bench::analyze_suite;

fn main() {
    let _trace = isax_trace::init_from_env();
    let cz = Customizer::new();
    eprintln!("analyzing the thirteen benchmarks ...");
    let suite = analyze_suite(&cz);
    for budget in [4.0, 15.0] {
        println!("\n=== budget {budget} adders ===");
        println!(
            "{:<11} {:>8} {:>10} {:>12}",
            "app", "greedy", "multi", "multi+class"
        );
        let mut sums = [0.0f64; 3];
        for (name, app) in &suite {
            let (plain_mdes, _) = cz.select(name, &app.analysis, budget);
            let plain = cz
                .evaluate(&app.workload.program, &plain_mdes, MatchOptions::exact())
                .speedup;
            let (multi_mdes, _) = cz.select_multifunction(name, &app.analysis, budget);
            let multi = cz
                .evaluate(&app.workload.program, &multi_mdes, MatchOptions::exact())
                .speedup;
            let multi_class = cz
                .evaluate(
                    &app.workload.program,
                    &multi_mdes,
                    MatchOptions {
                        mode: MatchMode::Wildcard,
                        allow_subsumed: true,
                    },
                )
                .speedup;
            println!("{name:<11} {plain:>7.2}x {multi:>9.2}x {multi_class:>11.2}x");
            sums[0] += plain;
            sums[1] += multi;
            sums[2] += multi_class;
        }
        let n = suite.len() as f64;
        println!(
            "{:<11} {:>7.2}x {:>9.2}x {:>11.2}x   (averages)",
            "--",
            sums[0] / n,
            sums[1] / n,
            sums[2] / n
        );
    }
}
