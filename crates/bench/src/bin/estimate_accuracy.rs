//! The §3.3 accuracy claim, measured: "Using a compiler instruction
//! scheduler to get an exact measurement is possible, but the complexity
//! makes this solution undesirable and the estimate has proved reasonably
//! accurate."
//!
//! ```sh
//! cargo run --release -p isax-bench --bin estimate_accuracy
//! ```
//!
//! For every benchmark at the 15-adder point: the profile-weighted
//! schedule estimate of the speedup versus the cycle-stepped timing
//! simulation on concrete inputs (true dynamic block counts).

#![forbid(unsafe_code)]

use isax::{Customizer, MatchOptions};
use isax_compiler::CustomInfo;
use isax_compiler::VliwModel;
use isax_hwlib::HwLibrary;
use isax_machine::{simulate, Memory};

fn main() {
    let _trace = isax_trace::init_from_env();
    let cz = Customizer::new();
    let hw = HwLibrary::micron_018();
    let model = VliwModel::default();
    println!(
        "{:<11} {:>10} {:>10} {:>8}",
        "app", "estimated", "simulated", "error"
    );
    let mut worst: f64 = 0.0;
    for w in isax_workloads::all() {
        let (mdes, _) = cz.customize(w.name, &w.program, 15.0);
        let ev = cz.evaluate(&w.program, &mdes, MatchOptions::exact());
        let mut mem_a = Memory::new();
        (w.init_memory)(&mut mem_a, 1);
        let mut mem_b = mem_a.clone();
        let args = (w.args)(1);
        let base = simulate(
            &w.program,
            w.entry,
            &args,
            &mut mem_a,
            &CustomInfo::new(),
            &hw,
            &model,
            50_000_000,
        )
        .expect("baseline simulation");
        let custom = simulate(
            &ev.compiled.program,
            w.entry,
            &args,
            &mut mem_b,
            &ev.compiled.custom_info,
            &hw,
            &model,
            50_000_000,
        )
        .expect("custom simulation");
        let simulated = base.cycles as f64 / custom.cycles.max(1) as f64;
        let err = (ev.speedup - simulated) / simulated * 100.0;
        worst = worst.max(err.abs());
        println!(
            "{:<11} {:>9.3}x {:>9.3}x {:>7.1}%",
            w.name, ev.speedup, simulated, err
        );
    }
    println!(
        "\nworst absolute error {worst:.1}% — \"the estimate has proved reasonably accurate\""
    );
}
