//! The §6 control-flow relaxation, measured: if-conversion (hyperblock
//! formation's conservative core) as a compiler pre-pass before
//! customization.
//!
//! ```sh
//! cargo run --release -p isax-bench --bin ifconvert_ablation
//! ```
//!
//! Per benchmark at 15 adders: customized cycles on the original CFG
//! versus customized cycles after if-conversion (same work, same
//! semantics — enforced by tests/ifconvert.rs), plus how many diamonds/
//! triangles converted. Branch-fragmented kernels (mpeg2dec's clip,
//! cjpeg's quantizer, crc's table generator) are the ones with something
//! to gain.

#![forbid(unsafe_code)]

use isax::{Customizer, MatchOptions};
use isax_compiler::{if_convert_program, IfConvertConfig};

fn main() {
    let _trace = isax_trace::init_from_env();
    let cz = Customizer::new();
    let cfg = IfConvertConfig::default();
    println!(
        "{:<11} {:>12} {:>12} {:>8} {:>9}",
        "app", "custom", "ifconv+cust", "gain", "merges"
    );
    for w in isax_workloads::all() {
        let base = {
            let (mdes, _) = cz.customize(w.name, &w.program, 15.0);
            cz.evaluate(&w.program, &mdes, MatchOptions::exact())
        };
        let (converted, stats) = if_convert_program(&w.program, &cfg);
        let conv = {
            let (mdes, _) = cz.customize(w.name, &converted, 15.0);
            cz.evaluate(&converted, &mdes, MatchOptions::exact())
        };
        let gain = base.custom_cycles as f64 / conv.custom_cycles.max(1) as f64;
        println!(
            "{:<11} {:>12} {:>12} {:>7.2}x {:>4}D{:>3}T",
            w.name, base.custom_cycles, conv.custom_cycles, gain, stats.diamonds, stats.triangles
        );
    }
    println!("\n(gain > 1: the converted program finishes in fewer customized cycles)");
}
