//! Figures 8 and 9: the effect of subsumed subgraphs and wildcards at the
//! 15-adder cost point, for every (application × CFU set) combination in
//! each domain.
//!
//! ```sh
//! cargo run --release -p isax-bench --bin figure8_9            # all four domains
//! cargo run --release -p isax-bench --bin figure8_9 -- enc net # Figure 8
//! cargo run --release -p isax-bench --bin figure8_9 -- img aud # Figure 9
//! ```
//!
//! Per combination the four paper bars are printed: exact matches on
//! plain hardware (grey left bar), + subsumed subgraphs (full left bar),
//! and the same two on opcode-class ("wildcard") hardware (right bar).
//! As in the paper, opcode-class hardware cost is not charged — the
//! columns estimate the potential of multifunction CFUs.

#![forbid(unsafe_code)]

use isax::Customizer;
use isax_bench::figures::figure8_9_table;
use isax_bench::{analyze_suite, HEADLINE_BUDGET};
use isax_workloads::{domain_members, Domain};

fn main() {
    let trace = isax_trace::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wanted = |d: Domain| {
        args.is_empty()
            || args.iter().any(|a| match a.as_str() {
                "enc" | "encryption" => d == Domain::Encryption,
                "net" | "network" => d == Domain::Network,
                "aud" | "audio" => d == Domain::Audio,
                "img" | "image" => d == Domain::Image,
                _ => false,
            })
    };
    let cz = Customizer::new();
    eprintln!("analyzing the thirteen benchmarks ...");
    let suite = analyze_suite(&cz);

    for d in Domain::ALL {
        if !wanted(d) {
            continue;
        }
        let fig = match d {
            Domain::Encryption | Domain::Network => "Figure 8",
            Domain::Audio | Domain::Image => "Figure 9",
        };
        print!(
            "{}",
            figure8_9_table(
                &format!("{fig}: {d} @ {HEADLINE_BUDGET} adders"),
                &cz,
                &suite,
                &domain_members(d),
                HEADLINE_BUDGET,
            )
        );
    }
    println!(
        "\n(native rows gain little from generalization; cross rows gain a\n\
         lot — the paper's conclusion that wildcards and subsumed subgraphs\n\
         enable effective CFU reuse across a domain.)"
    );
    if let Some(t) = trace {
        t.finish();
    }
}
