//! Figures 8 and 9: the effect of subsumed subgraphs and wildcards at the
//! 15-adder cost point, for every (application × CFU set) combination in
//! each domain.
//!
//! ```sh
//! cargo run --release -p isax-bench --bin figure8_9            # all four domains
//! cargo run --release -p isax-bench --bin figure8_9 -- enc net # Figure 8
//! cargo run --release -p isax-bench --bin figure8_9 -- img aud # Figure 9
//! ```
//!
//! Per combination the four paper bars are printed: exact matches on
//! plain hardware (grey left bar), + subsumed subgraphs (full left bar),
//! and the same two on opcode-class ("wildcard") hardware (right bar).
//! As in the paper, opcode-class hardware cost is not charged — the
//! columns estimate the potential of multifunction CFUs.

#![forbid(unsafe_code)]

use isax::{Customizer, MatchMode, MatchOptions};
use isax_bench::{analyze_suite, cross, HEADLINE_BUDGET};
use isax_workloads::{domain_members, Domain};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wanted = |d: Domain| {
        args.is_empty()
            || args.iter().any(|a| match a.as_str() {
                "enc" | "encryption" => d == Domain::Encryption,
                "net" | "network" => d == Domain::Network,
                "aud" | "audio" => d == Domain::Audio,
                "img" | "image" => d == Domain::Image,
                _ => false,
            })
    };
    let cz = Customizer::new();
    eprintln!("analyzing the thirteen benchmarks ...");
    let suite = analyze_suite(&cz);

    for d in Domain::ALL {
        if !wanted(d) {
            continue;
        }
        let fig = match d {
            Domain::Encryption | Domain::Network => "Figure 8",
            Domain::Audio | Domain::Image => "Figure 9",
        };
        println!("\n=== {fig}: {d} @ {HEADLINE_BUDGET} adders ===");
        println!(
            "{:<22} {:>7} {:>10} {:>10} {:>10}",
            "app-on-CFUs", "exact", "+subsumed", "wild", "wild+sub"
        );
        let members = domain_members(d);
        for app_name in &members {
            for src_name in &members {
                let app = &suite[app_name];
                let src = &suite[src_name];
                let bar = |m: MatchOptions| cross(&cz, src, app, HEADLINE_BUDGET, m);
                let exact = bar(MatchOptions::exact());
                let subsumed = bar(MatchOptions::with_subsumed());
                let wild = bar(MatchOptions {
                    mode: MatchMode::Wildcard,
                    allow_subsumed: false,
                });
                let wild_sub = bar(MatchOptions::generalized());
                println!(
                    "{:<22} {:>6.2}x {:>9.2}x {:>9.2}x {:>9.2}x",
                    format!("{app_name}-{src_name}"),
                    exact,
                    subsumed,
                    wild,
                    wild_sub
                );
            }
        }
    }
    println!(
        "\n(native rows gain little from generalization; cross rows gain a\n\
         lot — the paper's conclusion that wildcards and subsumed subgraphs\n\
         enable effective CFU reuse across a domain.)"
    );
}
