//! The §6 memory relaxation, measured: "In the future, we plan to relax
//! the memory ... restrictions in the present system."
//!
//! ```sh
//! cargo run --release -p isax-bench --bin memory_cfu_ablation
//! ```
//!
//! Loads may join CFUs as deterministic one-cycle SRAM accesses; a
//! load-bearing unit reserves the machine's cache port for one cycle per
//! load, and load latency is never counted as savings (the port balance
//! is neutral). Reported per benchmark at 15 adders: the paper's baseline
//! system, the relaxed system under ratio-greedy, and the relaxed system
//! under value-greedy (whose larger picks actually reach the load-bearing
//! units).

#![forbid(unsafe_code)]

use isax::{Customizer, MatchOptions, Mdes};
use isax_select::{select_greedy, Objective, SelectConfig};

fn main() {
    let _trace = isax_trace::init_from_env();
    let plain = Customizer::new();
    let relaxed = Customizer::with_memory_cfus();
    println!(
        "{:<11} {:>8} {:>10} {:>12}",
        "app", "paper", "mem-ratio", "mem-value"
    );
    let mut sums = [0.0f64; 3];
    let suite = isax_workloads::all();
    for w in &suite {
        let (m0, _) = plain.customize(w.name, &w.program, 15.0);
        let s0 = plain
            .evaluate(&w.program, &m0, MatchOptions::exact())
            .speedup;
        let analysis = relaxed.analyze(&w.program);
        let (m1, _) = relaxed.select(w.name, &analysis, 15.0);
        let s1 = relaxed
            .evaluate(&w.program, &m1, MatchOptions::exact())
            .speedup;
        let sel = select_greedy(
            &analysis.cfus,
            &SelectConfig {
                objective: Objective::Value,
                ..SelectConfig::with_budget(15.0)
            },
        );
        let m2 = Mdes::from_selection(w.name, &analysis.cfus, &sel, &relaxed.hw, 64);
        let s2 = relaxed
            .evaluate(&w.program, &m2, MatchOptions::exact())
            .speedup;
        println!("{:<11} {:>7.2}x {:>9.2}x {:>11.2}x", w.name, s0, s1, s2);
        sums[0] += s0;
        sums[1] += s1;
        sums[2] += s2;
    }
    let n = suite.len() as f64;
    println!(
        "{:<11} {:>7.2}x {:>9.2}x {:>11.2}x   (averages)",
        "--",
        sums[0] / n,
        sums[1] / n,
        sums[2] / n
    );
}
