//! Figure 3: "Candidates examined for blowfish" — the guided heuristic
//! curbs the exponential growth of the naive all-directions search.
//!
//! ```sh
//! cargo run --release -p isax-bench --bin figure3 [--validate]
//! ```
//!
//! The x-axis is the maximum candidate size (operations per subgraph); the
//! y-axis the number of distinct candidate subgraphs examined across the
//! blowfish kernel's dataflow graphs. As in the paper, the comparison
//! runs with **loose external constraints** (unbounded ports) — "the
//! number of candidate subgraphs quickly grows out of control with
//! sufficiently loose external constraints" — which is precisely the
//! regime the guide function exists for. `--validate` additionally
//! re-runs the §3.2 check that, under the evaluation's default
//! constraints, the guided search recovers the exhaustive candidate sets
//! exactly.

#![forbid(unsafe_code)]

use isax_bench::figures::figure3_table;
use isax_explore::{explore_dfg, explore_dfg_naive, ExploreConfig};
use isax_hwlib::HwLibrary;
use isax_ir::function_dfgs;
use std::collections::BTreeSet;

const NAIVE_BUDGET: u64 = 2_000_000;

fn main() {
    let trace = isax_trace::init_from_env();
    let validate = std::env::args().any(|a| a == "--validate");
    let hw = HwLibrary::micron_018();
    // The paper's blowfish passed through an optimizing compiler that
    // unrolls the Feistel loop into very large blocks ("... in the
    // presence of optimizations that create large basic blocks, such as
    // loop unrolling"); the 4x-unrolled round block has 113 operations.
    // Loose constraints (unbounded register ports) are applied inside the
    // renderer — the regime where naive growth explodes.
    let unrolled = isax_workloads::blowfish::program_unrolled(4);
    print!(
        "{}",
        figure3_table(
            "Figure 3 — candidates examined for blowfish (4x unrolled round block)",
            &unrolled,
            &[2, 4, 6, 8, 10, 12, 14, 16],
            Some(NAIVE_BUDGET),
        )
    );
    println!("\n(ratio > 1: candidates the guide function refused to examine;");
    println!(" '+' marks an exponential search stopped at its budget)");

    if validate {
        println!("\nvalidation: guided vs exhaustive candidate sets");
        println!("(rolled blowfish, default 5-in/3-out constraints, no taper)");
        let rolled = isax_workloads::by_name("blowfish").unwrap();
        let dfgs: Vec<_> = rolled
            .program
            .functions
            .iter()
            .flat_map(function_dfgs)
            .collect();
        for dfg in &dfgs {
            let g: BTreeSet<Vec<usize>> = explore_dfg(dfg, &hw, &ExploreConfig::default())
                .candidates
                .iter()
                .map(|c| c.nodes.iter().collect())
                .collect();
            let n: BTreeSet<Vec<usize>> =
                explore_dfg_naive(dfg, &hw, &ExploreConfig::default(), None)
                    .candidates
                    .iter()
                    .map(|c| c.nodes.iter().collect())
                    .collect();
            println!(
                "  block of {} ops: guided {} / exhaustive {} candidates — {}",
                dfg.len(),
                g.len(),
                n.len(),
                if g == n { "identical" } else { "DIFFER" }
            );
        }
    }
    if let Some(t) = trace {
        t.finish();
    }
}
