//! The §3.4 selection ablation: ratio-greedy (the paper's default) versus
//! value-greedy versus the dynamic-programming knapsack.
//!
//! ```sh
//! cargo run --release -p isax-bench --bin selection_ablation
//! ```
//!
//! The paper observes that ratio-greedy wins at low budgets, value-greedy
//! at high budgets, and that DP "generally does better (roughly 5-10% on
//! average) than greedy solutions, however it suffers from a much slower
//! runtime". The table reports speedups at a low (3-adder) and a high
//! (15-adder) budget for every benchmark, plus suite averages.

#![forbid(unsafe_code)]

use isax::{Customizer, MatchOptions, Mdes};
use isax_bench::analyze_suite;
use isax_select::{select_greedy, select_knapsack, Objective, SelectConfig, Selection};

fn main() {
    let _trace = isax_trace::init_from_env();
    let cz = Customizer::new();
    eprintln!("analyzing the thirteen benchmarks ...");
    let suite = analyze_suite(&cz);

    for budget in [3.0, 15.0] {
        println!("\n=== budget {budget} adders ===");
        println!("{:<11} {:>8} {:>8} {:>8}", "app", "ratio", "value", "dp");
        let mut sums = [0.0f64; 3];
        for (name, app) in &suite {
            let eval = |sel: Selection| {
                let mdes = Mdes::from_selection(name, &app.analysis.cfus, &sel, &cz.hw, 64);
                cz.evaluate(&app.workload.program, &mdes, MatchOptions::exact())
                    .speedup
            };
            let ratio = eval(select_greedy(
                &app.analysis.cfus,
                &SelectConfig::with_budget(budget),
            ));
            let value = eval(select_greedy(
                &app.analysis.cfus,
                &SelectConfig {
                    objective: Objective::Value,
                    ..SelectConfig::with_budget(budget)
                },
            ));
            let dp = eval(select_knapsack(
                &app.analysis.cfus,
                &SelectConfig::with_budget(budget),
            ));
            println!("{name:<11} {ratio:>7.2}x {value:>7.2}x {dp:>7.2}x");
            sums[0] += ratio;
            sums[1] += value;
            sums[2] += dp;
        }
        let n = suite.len() as f64;
        println!(
            "{:<11} {:>7.2}x {:>7.2}x {:>7.2}x   (averages)",
            "--",
            sums[0] / n,
            sums[1] / n,
            sums[2] / n
        );
    }
}
