//! The in-text guide-weight experiment (§3.2): "Many experiments have
//! been performed varying the weights of each of these factors and they
//! point to the general conclusion that evenly balancing the factors
//! yields the best candidates."
//!
//! ```sh
//! cargo run --release -p isax-bench --bin guide_ablation
//! ```
//!
//! Each configuration redistributes the 40 desirability points (the
//! acceptance threshold stays at half the total): balanced (the paper's
//! default), one category dropped at a time, and one category dominant at
//! a time. Reported: average 15-adder native speedup over the suite and
//! total candidates examined (search cost).

#![forbid(unsafe_code)]

use isax::{Customizer, MatchOptions};
use isax_explore::{ExploreConfig, GuideWeights};

fn weights(c: f64, l: f64, a: f64, i: f64) -> GuideWeights {
    GuideWeights {
        criticality: c,
        latency: l,
        area: a,
        io: i,
    }
}

fn main() {
    let _trace = isax_trace::init_from_env();
    let configs: Vec<(&str, GuideWeights)> = vec![
        ("balanced (paper)", weights(10.0, 10.0, 10.0, 10.0)),
        ("no criticality", weights(0.0, 13.33, 13.33, 13.33)),
        ("no latency", weights(13.33, 0.0, 13.33, 13.33)),
        ("no area", weights(13.33, 13.33, 0.0, 13.33)),
        ("no io", weights(13.33, 13.33, 13.33, 0.0)),
        ("criticality-heavy", weights(25.0, 5.0, 5.0, 5.0)),
        ("latency-heavy", weights(5.0, 25.0, 5.0, 5.0)),
        ("area-heavy", weights(5.0, 5.0, 25.0, 5.0)),
        ("io-heavy", weights(5.0, 5.0, 5.0, 25.0)),
    ];
    let suite = isax_workloads::all();
    println!(
        "{:<20} {:>10} {:>12}",
        "guide weights", "avg spd", "examined"
    );
    for (name, w) in configs {
        let mut cz = Customizer::new();
        cz.ctx_mut().explore = ExploreConfig::default().with_weights(w);
        let mut total_speedup = 0.0;
        let mut examined = 0u64;
        for wl in &suite {
            let analysis = cz.analyze(&wl.program);
            examined += analysis.stats.examined;
            let (mdes, _) = cz.select(wl.name, &analysis, 15.0);
            total_speedup += cz
                .evaluate(&wl.program, &mdes, MatchOptions::exact())
                .speedup;
        }
        println!(
            "{:<20} {:>9.3}x {:>12}",
            name,
            total_speedup / suite.len() as f64,
            examined
        );
    }
    println!("\n(threshold held at half the weight total; budget 15 adders)");
}
