//! Pipeline timing: serial vs parallel wall clock per stage.
//!
//! Runs the full customization pipeline over the extended corpus —
//! the 13 paper workloads plus the stress, curated graph/dsp, and
//! seeded generator kernels, each tagged with its domain — twice: once
//! pinned to one thread, once at the configured parallel width
//! (`ISAX_THREADS` or every available core). Writes
//! `BENCH_pipeline.json` with per-stage wall-clock times, the thread
//! count, the speedups, and per-domain speedup aggregates. It also
//! cross-checks that both runs produce bit-identical cycle counts,
//! which is the `isax_graph::par` contract.

#![forbid(unsafe_code)]

use isax::MatchOptions;
use isax_bench::{extended_corpus, geomean, BenchKernel, DOMAINS, HEADLINE_BUDGET};
use isax_graph::par::{par_map, set_thread_override, thread_count};
use std::collections::BTreeMap;
use std::time::Instant;

/// Wall-clock seconds per pipeline stage for one run.
struct StageTimes {
    analyze_s: f64,
    select_s: f64,
    evaluate_s: f64,
    /// Per-app analyze wall clock (seconds), measured inside the worker.
    kernel_analyze_s: BTreeMap<String, f64>,
    /// Per-app customized cycle counts, for the identity cross-check.
    cycles: BTreeMap<String, u64>,
    /// Per-app native speedups at the headline budget (deterministic).
    speedups: BTreeMap<String, f64>,
}

/// Summed per-stage pipeline counters across the suite. All values are
/// deterministic (aggregated at parallel join points in input order) —
/// unlike the wall-clock stage times, they are safe to diff between
/// runs and record *why* the timing numbers move.
#[derive(Default)]
struct Counters {
    // dataflow analysis (solver effort + lints), summed across the suite
    analysis: isax::AnalysisStats,
    // analyze
    candidates_examined: u64,
    candidates_recorded: u64,
    memo_hits: u64,
    memo_misses: u64,
    cfu_candidates: u64,
    // select
    cfus_selected: u64,
    // evaluate (matcher work)
    vf2_calls: u64,
    prefilter_skips: u64,
    matches_found: u64,
    replacements: u64,
    // resource governance: rendered degradation records from every stage,
    // in pipeline order. The stress corpus runs under a work-unit budget
    // by construction, so these are non-empty on every run.
    degradations: Vec<String>,
    // decision provenance: per-stage logs merged in suite order. The
    // merged log is part of the serial-vs-parallel identity contract.
    prov: isax_prov::ProvLog,
    // per-kernel attribution: (candidates examined, candidates recorded)
    // during analyze, so a timing regression names its workload.
    per_kernel: BTreeMap<String, (u64, u64)>,
}

fn run_once(corpus: &[BenchKernel]) -> (StageTimes, Counters) {
    let mut counters = Counters::default();
    let t0 = Instant::now();
    let analyses = par_map(corpus, |k| {
        let cz = k.customizer();
        let t = Instant::now();
        let analysis = cz.analyze(&k.program);
        (analysis, t.elapsed().as_secs_f64())
    });
    let analyze_s = t0.elapsed().as_secs_f64();
    let mut kernel_analyze_s = BTreeMap::new();
    for (k, (analysis, seconds)) in corpus.iter().zip(&analyses) {
        kernel_analyze_s.insert(k.name.clone(), *seconds);
        let a = &analysis.analysis_stats;
        counters.analysis.blocks_solved += a.blocks_solved;
        counters.analysis.iterations += a.iterations;
        counters.analysis.widenings += a.widenings;
        counters.analysis.lints += a.lints;
        let s = &analysis.stats;
        counters.candidates_examined += s.examined;
        counters.candidates_recorded += s.recorded;
        counters.memo_hits += s.memo_hits;
        counters.memo_misses += s.memo_misses;
        counters.cfu_candidates += analysis.cfus.len() as u64;
        counters
            .per_kernel
            .insert(k.name.clone(), (s.examined, s.recorded));
        counters
            .degradations
            .extend(analysis.degradations.iter().map(|d| d.to_string()));
        counters.prov.merge(analysis.prov.clone());
    }

    let t1 = Instant::now();
    let selected: Vec<isax_compiler::Mdes> = corpus
        .iter()
        .zip(&analyses)
        .map(|(k, (analysis, _))| {
            let cz = k.customizer();
            let (mdes, sel) = cz.select(&k.name, analysis, HEADLINE_BUDGET);
            counters
                .degradations
                .extend(sel.degradations.iter().map(|d| d.to_string()));
            counters.prov.merge(sel.prov.clone());
            mdes
        })
        .collect();
    let select_s = t1.elapsed().as_secs_f64();
    counters.cfus_selected = selected.iter().map(|m| m.cfus.len() as u64).sum();

    let t2 = Instant::now();
    let mut cycles = BTreeMap::new();
    let mut speedups = BTreeMap::new();
    for (k, mdes) in corpus.iter().zip(&selected) {
        let cz = k.customizer();
        let ev = cz.evaluate(&k.program, mdes, MatchOptions::with_subsumed());
        let m = &ev.compiled.match_stats;
        counters.vf2_calls += m.vf2_calls;
        counters.prefilter_skips += m.prefilter_skips;
        counters.matches_found += m.matches_found;
        counters.replacements += ev.compiled.applied.len() as u64;
        counters
            .degradations
            .extend(ev.compiled.degradations.iter().map(|d| d.to_string()));
        counters.prov.merge(ev.compiled.prov.clone());
        cycles.insert(k.name.clone(), ev.custom_cycles);
        speedups.insert(k.name.clone(), ev.speedup);
    }
    let evaluate_s = t2.elapsed().as_secs_f64();

    (
        StageTimes {
            analyze_s,
            select_s,
            evaluate_s,
            kernel_analyze_s,
            cycles,
            speedups,
        },
        counters,
    )
}

fn stage_entry(name: &str, serial_s: f64, parallel_s: f64) -> isax_json::Value {
    isax_json::object([
        ("stage", isax_json::Value::from(name)),
        ("serial_s", serial_s.into()),
        ("parallel_s", parallel_s.into()),
        ("speedup", (serial_s / parallel_s.max(1e-9)).into()),
    ])
}

fn main() {
    let _trace = isax_trace::init_from_env();
    // Provenance recording stays on for both measured runs: the merged
    // logs join the serial-vs-parallel identity cross-check below, and
    // their aggregate becomes the report's `provenance` section.
    let _prov = isax_prov::enable();
    let parallel_threads = thread_count();
    eprintln!("timing the pipeline: 1 thread vs {parallel_threads} threads");

    let corpus = extended_corpus();
    // Warm-up run so neither measured run pays first-touch costs.
    set_thread_override(Some(1));
    let _ = par_map(&corpus, |k| k.customizer().analyze(&k.program));

    set_thread_override(Some(1));
    let (serial, counters) = run_once(&corpus);
    set_thread_override(Some(parallel_threads));
    let (parallel, parallel_counters) = run_once(&corpus);
    set_thread_override(None);

    assert_eq!(
        counters.vf2_calls, parallel_counters.vf2_calls,
        "matcher work diverged between serial and parallel runs"
    );

    assert_eq!(
        counters.per_kernel, parallel_counters.per_kernel,
        "per-kernel candidate counts diverged between serial and parallel runs"
    );

    assert_eq!(
        counters.analysis, parallel_counters.analysis,
        "dataflow-analysis counters diverged between serial and parallel runs — \
         the solver's determinism contract is broken"
    );

    assert_eq!(
        serial.cycles, parallel.cycles,
        "parallel pipeline diverged from serial — determinism contract broken"
    );

    assert_eq!(
        serial.speedups, parallel.speedups,
        "speedup estimates diverged between serial and parallel runs"
    );

    assert_eq!(
        counters.degradations, parallel_counters.degradations,
        "degradation records diverged between serial and parallel runs — \
         the guard's deterministic-accounting contract is broken"
    );

    assert_eq!(
        counters.prov, parallel_counters.prov,
        "provenance logs diverged between serial and parallel runs — \
         the join-point merge discipline is broken"
    );

    let domain_of: BTreeMap<&str, &'static str> =
        corpus.iter().map(|k| (k.name.as_str(), k.domain)).collect();

    let serial_total = serial.analyze_s + serial.select_s + serial.evaluate_s;
    let parallel_total = parallel.analyze_s + parallel.select_s + parallel.evaluate_s;
    let host_cpus = isax_bench::host_cpus();
    let oversubscribed = isax_bench::oversubscribed(parallel_threads, host_cpus);
    let mut doc = isax_json::object([
        ("threads_serial", isax_json::Value::from(1u32)),
        ("threads_parallel", parallel_threads.into()),
        // Physical parallelism of the measuring host: with one CPU the
        // parallel run can only demonstrate determinism, not speedup.
        ("host_cpus", host_cpus.into()),
        ("oversubscribed", oversubscribed.into()),
        ("budget", HEADLINE_BUDGET.into()),
        (
            "stages",
            isax_json::array([
                stage_entry("analyze", serial.analyze_s, parallel.analyze_s),
                stage_entry("select", serial.select_s, parallel.select_s),
                stage_entry("evaluate", serial.evaluate_s, parallel.evaluate_s),
                stage_entry("total", serial_total, parallel_total),
            ]),
        ),
        ("outputs_identical", true.into()),
        // Deterministic per-stage counter snapshot: records *why* the
        // stage times move between revisions (more candidates, fewer
        // VF2 calls, ...), not just that they did.
        (
            "counters",
            isax_json::object([
                (
                    "analysis",
                    isax_json::object([
                        (
                            "blocks_solved",
                            isax_json::Value::from(counters.analysis.blocks_solved),
                        ),
                        ("iterations", counters.analysis.iterations.into()),
                        ("widenings", counters.analysis.widenings.into()),
                        ("lints", counters.analysis.lints.into()),
                    ]),
                ),
                (
                    "analyze",
                    isax_json::object([
                        (
                            "candidates_examined",
                            isax_json::Value::from(counters.candidates_examined),
                        ),
                        ("candidates_recorded", counters.candidates_recorded.into()),
                        ("cfu_candidates", counters.cfu_candidates.into()),
                        ("memo_hits", counters.memo_hits.into()),
                        ("memo_misses", counters.memo_misses.into()),
                        (
                            "memo_hit_rate",
                            (counters.memo_hits as f64
                                / (counters.memo_hits + counters.memo_misses).max(1) as f64)
                                .into(),
                        ),
                    ]),
                ),
                (
                    "select",
                    isax_json::object([(
                        "cfus_selected",
                        isax_json::Value::from(counters.cfus_selected),
                    )]),
                ),
                (
                    "evaluate",
                    isax_json::object([
                        ("vf2_calls", isax_json::Value::from(counters.vf2_calls)),
                        ("prefilter_skips", counters.prefilter_skips.into()),
                        (
                            "prefilter_skip_rate",
                            (counters.prefilter_skips as f64
                                / (counters.prefilter_skips + counters.vf2_calls).max(1) as f64)
                                .into(),
                        ),
                        ("matches_found", counters.matches_found.into()),
                        ("replacements", counters.replacements.into()),
                    ]),
                ),
            ]),
        ),
        // Per-kernel attribution from the serial run: domain tag, analyze
        // wall clock, deterministic candidate counts, and the native
        // speedup at the headline budget, so a regression (or a win)
        // names the workload responsible.
        (
            "per_kernel",
            isax_json::Value::Object(
                counters
                    .per_kernel
                    .iter()
                    .map(|(name, &(examined, recorded))| {
                        (
                            name.clone(),
                            isax_json::object([
                                ("domain", isax_json::Value::from(domain_of[name.as_str()])),
                                ("analyze_s", serial.kernel_analyze_s[name].into()),
                                ("candidates_examined", examined.into()),
                                ("candidates_recorded", recorded.into()),
                                ("speedup", serial.speedups[name].into()),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
        // Per-domain speedup aggregates (geometric mean over each
        // domain's kernels at the headline budget), in corpus order.
        (
            "domains",
            isax_json::Value::Object(
                DOMAINS
                    .iter()
                    .filter_map(|&d| {
                        let speedups: Vec<f64> = corpus
                            .iter()
                            .filter(|k| k.domain == d)
                            .map(|k| serial.speedups[&k.name])
                            .collect();
                        if speedups.is_empty() {
                            return None;
                        }
                        Some((
                            d.to_string(),
                            isax_json::object([
                                ("kernels", isax_json::Value::from(speedups.len() as u64)),
                                ("geomean_speedup", geomean(&speedups).into()),
                            ]),
                        ))
                    })
                    .collect(),
            ),
        ),
        // Aggregate decision provenance (identical between the serial
        // and parallel runs by the assert above).
        ("provenance", isax_prov::summarize(&counters.prov).to_json()),
        (
            "custom_cycles",
            isax_json::Value::Object(
                serial
                    .cycles
                    .iter()
                    .map(|(name, &c)| (name.clone(), isax_json::Value::from(c)))
                    .collect(),
            ),
        ),
    ]);

    // The guard section appears when governance is configured (env) or
    // actually fired; the stress corpus's work-unit budget means it is
    // present on every extended-corpus run.
    let guard_active = isax::Guard::from_env().is_active();
    if guard_active || !counters.degradations.is_empty() {
        if let isax_json::Value::Object(fields) = &mut doc {
            fields.push((
                "guard".into(),
                isax_json::object([
                    ("active", isax_json::Value::from(guard_active)),
                    (
                        "degradations",
                        isax_json::array(
                            counters
                                .degradations
                                .iter()
                                .map(|d| isax_json::Value::from(d.as_str())),
                        ),
                    ),
                ]),
            ));
        }
    }

    let out = doc.to_string_pretty();
    std::fs::write("BENCH_pipeline.json", &out).expect("write BENCH_pipeline.json");
    println!("{out}");
    if oversubscribed {
        eprintln!(
            "total: {serial_total:.2}s serial vs {parallel_total:.2}s with {parallel_threads} \
             threads on {host_cpus} CPU(s) — oversubscribed, so the parallel run demonstrates \
             determinism, not speedup"
        );
    } else {
        eprintln!(
            "total: {serial_total:.2}s serial vs {parallel_total:.2}s on {parallel_threads} \
             threads ({:.2}x)",
            serial_total / parallel_total.max(1e-9)
        );
    }
}
