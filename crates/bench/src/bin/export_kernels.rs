//! Dumps the thirteen benchmark kernels as textual IR under `kernels/`,
//! ready for the `isax` command-line tool:
//!
//! ```sh
//! cargo run --release -p isax-bench --bin export_kernels
//! cargo run --release -p isax-cli --bin isax -- explore kernels/blowfish.isax
//! ```

#![forbid(unsafe_code)]

fn main() -> std::io::Result<()> {
    let _trace = isax_trace::init_from_env();
    let dir = std::path::Path::new("kernels");
    std::fs::create_dir_all(dir)?;
    for w in isax_workloads::all() {
        let text: String = w
            .program
            .functions
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n");
        let path = dir.join(format!("{}.isax", w.name));
        std::fs::write(&path, text)?;
        println!("wrote {}", path.display());
    }
    Ok(())
}
