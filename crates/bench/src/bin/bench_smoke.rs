//! CI performance smoke: a three-kernel slice of the timing benchmark
//! with a committed baseline.
//!
//! Runs the full pipeline over `blowfish`, `crc`, and `mpeg2dec` twice —
//! serial and at four threads — and enforces, in order:
//!
//! 1. **identity**: both runs produce bit-identical customized cycle
//!    counts, per-kernel candidate counts, degradation records, and
//!    provenance logs (the `isax_graph::par` contract, in miniature);
//! 2. **no silent regression**: the deterministic candidates-examined
//!    count must stay within ±20% of the blessed baseline in
//!    `results/bench_smoke_baseline.json`, and the serial analyze wall
//!    clock must not exceed 1.2× the blessed time.
//!
//! Re-bless an intentional change with `ISAX_BLESS=1 bench_smoke` and
//! commit the new baseline. Exit status is the CI gate.

#![forbid(unsafe_code)]

use isax::{Customizer, MatchOptions};
use isax_bench::{analyze_subset, HEADLINE_BUDGET};
use isax_graph::par::set_thread_override;
use std::collections::BTreeMap;
use std::time::Instant;

const KERNELS: [&str; 3] = ["blowfish", "crc", "mpeg2dec"];
const BASELINE: &str = "results/bench_smoke_baseline.json";
/// Allowed drift before the gate trips: candidate counts are exact, so
/// any >20% move means exploration behaviour changed; wall clock gets
/// the same headroom to absorb CI scheduling noise.
const TOLERANCE: f64 = 0.20;
/// Absolute wall-clock slack on top of the relative gate: the blessed
/// analyze time is milliseconds, where a single scheduler preemption
/// exceeds 20%. A real regression (the memoized-metrics work this guards
/// was a >5× win) dwarfs this.
const TIME_SLACK_S: f64 = 0.25;

struct SmokeRun {
    analyze_s: f64,
    examined: u64,
    per_kernel: BTreeMap<&'static str, (u64, u64)>,
    cycles: BTreeMap<&'static str, u64>,
    degradations: Vec<String>,
    prov: isax_prov::ProvLog,
}

fn run_once(cz: &Customizer) -> SmokeRun {
    let t0 = Instant::now();
    let apps = analyze_subset(cz, &KERNELS);
    let analyze_s = t0.elapsed().as_secs_f64();

    let mut examined = 0u64;
    let mut per_kernel = BTreeMap::new();
    let mut degradations = Vec::new();
    let mut prov = isax_prov::ProvLog::default();
    for (&name, app) in &apps {
        let s = &app.analysis.stats;
        examined += s.examined;
        per_kernel.insert(name, (s.examined, s.recorded));
        degradations.extend(app.analysis.degradations.iter().map(|d| d.to_string()));
        prov.merge(app.analysis.prov.clone());
    }

    let cycles = apps
        .iter()
        .map(|(&name, app)| {
            let (mdes, sel) = cz.select(name, &app.analysis, HEADLINE_BUDGET);
            degradations.extend(sel.degradations.iter().map(|d| d.to_string()));
            prov.merge(sel.prov.clone());
            let ev = cz.evaluate(&app.workload.program, &mdes, MatchOptions::with_subsumed());
            degradations.extend(ev.compiled.degradations.iter().map(|d| d.to_string()));
            prov.merge(ev.compiled.prov.clone());
            (name, ev.custom_cycles)
        })
        .collect();

    SmokeRun {
        analyze_s,
        examined,
        per_kernel,
        cycles,
        degradations,
        prov,
    }
}

fn main() {
    let _prov = isax_prov::enable();
    let cz = Customizer::new();

    // Warm-up so the measured serial run pays no first-touch costs.
    set_thread_override(Some(1));
    let _ = analyze_subset(&cz, &KERNELS);

    set_thread_override(Some(1));
    let serial = run_once(&cz);
    set_thread_override(Some(4));
    let parallel = run_once(&cz);
    set_thread_override(None);

    // Gate 1: serial-vs-parallel identity.
    assert_eq!(
        serial.cycles, parallel.cycles,
        "customized cycle counts diverged between 1 and 4 threads"
    );
    assert_eq!(
        serial.per_kernel, parallel.per_kernel,
        "per-kernel candidate counts diverged between 1 and 4 threads"
    );
    assert_eq!(
        serial.degradations, parallel.degradations,
        "degradation records diverged between 1 and 4 threads"
    );
    assert_eq!(
        serial.prov, parallel.prov,
        "provenance logs diverged between 1 and 4 threads"
    );
    let outputs_identical = true;

    let doc = isax_json::object([
        (
            "kernels",
            isax_json::array(KERNELS.map(isax_json::Value::from)),
        ),
        ("budget", HEADLINE_BUDGET.into()),
        ("outputs_identical", outputs_identical.into()),
        ("candidates_examined", serial.examined.into()),
        ("analyze_s", serial.analyze_s.into()),
    ]);
    let rendered = {
        let mut s = doc.to_string_pretty();
        s.push('\n');
        s
    };
    println!("{rendered}");

    // Gate 2: the committed baseline.
    if std::env::var("ISAX_BLESS").is_ok_and(|v| v == "1") {
        std::fs::write(BASELINE, &rendered).expect("write baseline");
        eprintln!("blessed {BASELINE}");
        return;
    }
    let text = std::fs::read_to_string(BASELINE).unwrap_or_else(|e| {
        panic!("{BASELINE}: {e}\nrun with ISAX_BLESS=1 to generate the baseline")
    });
    let base = isax_json::parse(&text).expect("baseline parses");
    let base_examined = base
        .get("candidates_examined")
        .and_then(|v| v.as_u64())
        .expect("baseline candidates_examined");
    let base_analyze_s = base
        .get("analyze_s")
        .and_then(|v| v.as_f64())
        .expect("baseline analyze_s");

    let drift =
        (serial.examined as f64 - base_examined as f64).abs() / (base_examined as f64).max(1.0);
    assert!(
        drift <= TOLERANCE,
        "candidates_examined drifted {:.1}% from baseline ({} vs {base_examined}) — \
         exploration behaviour changed; re-bless with ISAX_BLESS=1 if intentional",
        drift * 100.0,
        serial.examined,
    );
    let time_cap = base_analyze_s * (1.0 + TOLERANCE) + TIME_SLACK_S;
    assert!(
        serial.analyze_s <= time_cap,
        "serial analyze regressed: {:.3}s vs blessed {:.3}s (cap {time_cap:.3}s) — \
         re-bless with ISAX_BLESS=1 if intentional",
        serial.analyze_s,
        base_analyze_s,
    );
    eprintln!(
        "bench smoke OK: {} candidates (baseline {base_examined}), \
         analyze {:.3}s (blessed {base_analyze_s:.3}s)",
        serial.examined, serial.analyze_s,
    );
}
