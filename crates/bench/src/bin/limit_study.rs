//! The in-text limit study (§5): speedup attainable with infinite
//! register-file ports and an infinite area budget, against the realized
//! 15-adder point.
//!
//! ```sh
//! cargo run --release -p isax-bench --bin limit_study
//! ```
//!
//! The paper's finding: the constrained system "realizes speedups very
//! close to the ideal case", except for cjpeg/djpeg whose ideal CFUs are
//! enormous (a djpeg CFU wanted 24 read ports and more area than eight
//! multipliers).

#![forbid(unsafe_code)]

use isax::{limit_speedup, Customizer};
use isax_bench::{analyze_suite, native, HEADLINE_BUDGET};

fn main() {
    let _trace = isax_trace::init_from_env();
    let cz = Customizer::new();
    eprintln!("analyzing the thirteen benchmarks ...");
    let suite = analyze_suite(&cz);
    println!(
        "{:<11} {:>12} {:>9} {:>10}",
        "app", "@15 adders", "limit", "gap"
    );
    for (name, app) in &suite {
        let constrained = native(&cz, app, HEADLINE_BUDGET);
        let limit = limit_speedup(&cz, name, &app.workload.program);
        println!(
            "{:<11} {:>11.2}x {:>8.2}x {:>9.1}%",
            name,
            constrained,
            limit.speedup,
            (limit.speedup / constrained - 1.0) * 100.0
        );
    }
    println!("\n(gap = ideal headroom left by the 5-in/3-out, 15-adder constraints)");
}
