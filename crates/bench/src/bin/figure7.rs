//! Figure 7: speedup versus CFU area budget, native (left four graphs)
//! and cross-compiled within each domain (right four graphs).
//!
//! ```sh
//! cargo run --release -p isax-bench --bin figure7 -- native
//! cargo run --release -p isax-bench --bin figure7 -- cross
//! cargo run --release -p isax-bench --bin figure7            # both
//! ```
//!
//! Each table row is one curve of the figure. The summary footer prints
//! the per-application 15-adder speedups and the suite average — the
//! paper's headline numbers ("as much as 1.94 for rawdaudio and an
//! average of 1.47").

#![forbid(unsafe_code)]

use isax::Customizer;
use isax_bench::figures::{figure7_cross_table, figure7_native_table};
use isax_bench::{analyze_suite, native, BUDGETS, HEADLINE_BUDGET};
use isax_workloads::{domain_members, Domain};

fn main() {
    let trace = isax_trace::init_from_env();
    let arg = std::env::args().nth(1).unwrap_or_default();
    let run_native = arg.is_empty() || arg == "native";
    let run_cross = arg.is_empty() || arg == "cross";

    let cz = Customizer::new();
    eprintln!("analyzing the thirteen benchmarks ...");
    let suite = analyze_suite(&cz);

    if run_native {
        for d in Domain::ALL {
            print!(
                "{}",
                figure7_native_table(
                    &format!("Figure 7 (native): {d}"),
                    &cz,
                    &suite,
                    &domain_members(d),
                    &BUDGETS,
                )
            );
        }
    }

    if run_cross {
        for d in Domain::ALL {
            print!(
                "{}",
                figure7_cross_table(
                    &format!("Figure 7 (cross): {d}"),
                    &cz,
                    &suite,
                    &domain_members(d),
                    &BUDGETS,
                )
            );
        }
    }

    // Summary footer: §6's headline numbers.
    println!("\n=== summary @ {HEADLINE_BUDGET} adders (native) ===");
    let mut total = 0.0;
    let mut peak = (0.0f64, "");
    for (name, app) in &suite {
        let s = native(&cz, app, HEADLINE_BUDGET);
        println!("  {name:<10} {s:.2}x");
        total += s;
        if s > peak.0 {
            peak = (s, name);
        }
    }
    println!(
        "  peak {:.2}x ({}); suite average {:.2}x   [paper: 1.94x rawdaudio, avg 1.47x]",
        peak.0,
        peak.1,
        total / suite.len() as f64
    );
    if let Some(t) = trace {
        t.finish();
    }
}
