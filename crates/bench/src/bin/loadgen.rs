//! Serve-layer load generator: N concurrent clients against an
//! in-process `isax serve` instance over the extended corpus.
//!
//! Each client replays the corpus `ISAX_LOADGEN_ROUNDS` times (so every
//! round after a kernel's first service is a content-addressed cache
//! hit), measuring client-side latency per request. Writes
//! `BENCH_serve.json` with throughput, p50/p99 latency, the cache hit
//! rate, and the same `oversubscribed` flag `BENCH_pipeline.json`
//! carries — on a host where workers outnumber CPUs the throughput
//! numbers demonstrate determinism and caching, not parallel scaling,
//! and the report says so.
//!
//! Knobs (all optional):
//!
//! * `ISAX_LOADGEN_CLIENTS` — concurrent clients (default 4);
//! * `ISAX_LOADGEN_ROUNDS` — corpus replays per client (default 2);
//! * `ISAX_LOADGEN_KERNELS` — corpus prefix length (default: all).
//!
//! Sanity gates (exit status is the CI signal): zero request errors,
//! and a cache hit rate within tolerance of the blessed baseline in
//! `results/loadgen_baseline.json`. Re-bless an intentional change with
//! `ISAX_BLESS=1 loadgen` and commit the new baseline.

#![forbid(unsafe_code)]

use isax_bench::{extended_corpus, host_cpus, oversubscribed, HEADLINE_BUDGET};
use isax_graph::par::thread_count;
use isax_serve::{Client, EnvMode, Request, ServeConfig, Server};
use std::time::Instant;

const BASELINE: &str = "results/loadgen_baseline.json";
/// Allowed hit-rate drift before the gate trips. The hit rate is almost
/// deterministic — `(requests - kernels) / requests` — but concurrent
/// cold misses on one key can each count as a miss, so the gate keeps
/// a small margin.
const HIT_RATE_TOLERANCE: f64 = 0.05;

fn env_usize(key: &str, default: usize) -> usize {
    match std::env::var(key) {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("{key} must be a positive integer, got `{v}`")),
        Err(_) => default,
    }
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

fn main() {
    let clients = env_usize("ISAX_LOADGEN_CLIENTS", 4);
    let rounds = env_usize("ISAX_LOADGEN_ROUNDS", 2);
    let corpus = extended_corpus();
    let kernels = env_usize("ISAX_LOADGEN_KERNELS", corpus.len()).min(corpus.len());
    assert!(clients > 0 && rounds > 0 && kernels > 0);

    // Pre-render each kernel once: (name, text, work budget).
    let requests: Vec<(String, String, Option<u64>)> = corpus[..kernels]
        .iter()
        .map(|k| {
            let text = k
                .program
                .functions
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n");
            (k.name.clone(), text, k.work_budget)
        })
        .collect();

    let workers = thread_count();
    let server = Server::spawn(ServeConfig {
        workers,
        stats: EnvMode::Off,
        ..ServeConfig::default()
    })
    .expect("server spawns");
    let addr = server.addr();
    eprintln!(
        "loadgen: {clients} client(s) x {rounds} round(s) x {kernels} kernel(s), \
         {workers} worker(s)"
    );

    let t0 = Instant::now();
    let per_client: Vec<(Vec<u64>, u64)> = std::thread::scope(|scope| {
        let requests = &requests;
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("client connects");
                    let mut latencies_us = Vec::with_capacity(rounds * requests.len());
                    let mut errors = 0u64;
                    for _ in 0..rounds {
                        // Offset each client's walk so cold misses spread
                        // across the corpus instead of piling on one key.
                        for i in 0..requests.len() {
                            let (name, text, work) = &requests[(i + c) % requests.len()];
                            let t = Instant::now();
                            let outcome = client.artifacts(Request::Customize {
                                kernel: text.clone(),
                                name: name.clone(),
                                budget: HEADLINE_BUDGET,
                                multifunction: false,
                                work_budget: *work,
                            });
                            latencies_us.push(t.elapsed().as_micros() as u64);
                            match outcome {
                                Ok((_, art)) => assert!(art.mdes.is_some()),
                                Err(e) => {
                                    eprintln!("loadgen: {name}: {e}");
                                    errors += 1;
                                }
                            }
                        }
                    }
                    (latencies_us, errors)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall_s = t0.elapsed().as_secs_f64();

    let mut latencies: Vec<u64> = per_client
        .iter()
        .flat_map(|(l, _)| l.iter().copied())
        .collect();
    let errors: u64 = per_client.iter().map(|(_, e)| e).sum();
    latencies.sort_unstable();
    let total_requests = latencies.len() as u64;

    let stats = server.stats_value();
    server.shutdown();
    let cache = stats.get("cache").expect("stats.cache");
    let hit_rate = cache
        .get("hit_rate")
        .and_then(|v| v.as_f64())
        .unwrap_or(0.0);
    let hits = cache.get("hits").and_then(|v| v.as_u64()).unwrap_or(0);
    let misses = cache.get("misses").and_then(|v| v.as_u64()).unwrap_or(0);
    let entries = cache.get("entries").and_then(|v| v.as_u64()).unwrap_or(0);

    let cpus = host_cpus();
    let oversub = oversubscribed(workers.max(clients), cpus);
    let doc = isax_json::object([
        ("clients", isax_json::Value::from(clients as u64)),
        ("rounds", (rounds as u64).into()),
        ("kernels", (kernels as u64).into()),
        ("workers", (workers as u64).into()),
        ("budget", HEADLINE_BUDGET.into()),
        ("host_cpus", (cpus as u64).into()),
        // Same contract as BENCH_pipeline.json: when set, throughput
        // demonstrates determinism and caching, not parallel scaling.
        ("oversubscribed", oversub.into()),
        ("requests", total_requests.into()),
        ("errors", errors.into()),
        ("wall_s", wall_s.into()),
        (
            "throughput_rps",
            (total_requests as f64 / wall_s.max(1e-9)).into(),
        ),
        ("p50_us", percentile(&latencies, 0.50).into()),
        ("p99_us", percentile(&latencies, 0.99).into()),
        (
            "cache",
            isax_json::object([
                ("entries", isax_json::Value::from(entries)),
                ("hits", hits.into()),
                ("misses", misses.into()),
                ("hit_rate", hit_rate.into()),
            ]),
        ),
    ]);
    let rendered = {
        let mut s = doc.to_string_pretty();
        s.push('\n');
        s
    };
    std::fs::write("BENCH_serve.json", &rendered).expect("write BENCH_serve.json");
    println!("{rendered}");

    if oversub {
        eprintln!(
            "loadgen: {total_requests} requests in {wall_s:.2}s with {workers} worker(s) on \
             {cpus} CPU(s) — oversubscribed, so throughput demonstrates determinism and \
             caching, not parallel scaling"
        );
    } else {
        eprintln!(
            "loadgen: {total_requests} requests in {wall_s:.2}s \
             ({:.1} req/s, p50 {}us, p99 {}us)",
            total_requests as f64 / wall_s.max(1e-9),
            percentile(&latencies, 0.50),
            percentile(&latencies, 0.99),
        );
    }

    // Gate 1: every request must succeed.
    assert_eq!(errors, 0, "loadgen saw {errors} request error(s)");
    // Gate 2: the cache must actually serve repeats.
    let expected_hit_rate =
        (total_requests.saturating_sub(entries)) as f64 / (total_requests as f64).max(1.0);
    assert!(
        hit_rate > 0.0,
        "no cache hits across {rounds} round(s) — content addressing is broken"
    );

    // Gate 3: the blessed baseline (hit rate within tolerance, at the
    // blessed knob configuration).
    let baseline_doc = isax_json::object([
        ("clients", isax_json::Value::from(clients as u64)),
        ("rounds", (rounds as u64).into()),
        ("kernels", (kernels as u64).into()),
        ("hit_rate", hit_rate.into()),
    ]);
    if std::env::var("ISAX_BLESS").is_ok_and(|v| v == "1") {
        let mut s = baseline_doc.to_string_pretty();
        s.push('\n');
        std::fs::write(BASELINE, &s).expect("write baseline");
        eprintln!("blessed {BASELINE}");
        return;
    }
    let text = std::fs::read_to_string(BASELINE).unwrap_or_else(|e| {
        panic!("{BASELINE}: {e}\nrun with ISAX_BLESS=1 to generate the baseline")
    });
    let base = isax_json::parse(&text).expect("baseline parses");
    let knobs_match = ["clients", "rounds", "kernels"].iter().all(|k| {
        base.get(k).and_then(|v| v.as_u64()) == baseline_doc.get(k).and_then(|v| v.as_u64())
    });
    if !knobs_match {
        eprintln!(
            "loadgen: knob configuration differs from the blessed baseline — \
             skipping the hit-rate gate (hit rate {hit_rate:.3}, expected ~{expected_hit_rate:.3})"
        );
        return;
    }
    let base_hit_rate = base
        .get("hit_rate")
        .and_then(|v| v.as_f64())
        .expect("baseline hit_rate");
    assert!(
        hit_rate >= base_hit_rate - HIT_RATE_TOLERANCE,
        "cache hit rate regressed: {hit_rate:.3} vs blessed {base_hit_rate:.3} — \
         re-bless with ISAX_BLESS=1 if intentional"
    );
    eprintln!("loadgen OK: hit rate {hit_rate:.3} (blessed {base_hit_rate:.3})");
}
