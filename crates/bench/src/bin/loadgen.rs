//! Serve-layer load generator: N concurrent clients against an
//! in-process `isax serve` instance over the extended corpus.
//!
//! Each client replays the corpus `ISAX_LOADGEN_ROUNDS` times (so every
//! round after a kernel's first service is a content-addressed cache
//! hit), measuring client-side latency per request. Writes
//! `BENCH_serve.json` with throughput, histogram-derived
//! p50/p90/p99/p999 latency, the full client-latency and server
//! queue-wait histograms, the cache hit rate, and the same
//! `oversubscribed` flag `BENCH_pipeline.json` carries — on a host
//! where workers outnumber CPUs the throughput numbers demonstrate
//! determinism and caching, not parallel scaling, and the report says
//! so. Percentiles come from the mergeable log-bucketed
//! [`isax_trace::Hist`]; the exact sorted samples are kept only to
//! assert the histogram's documented error bound on every run.
//!
//! Knobs (all optional):
//!
//! * `ISAX_LOADGEN_CLIENTS` — concurrent clients (default 4);
//! * `ISAX_LOADGEN_ROUNDS` — corpus replays per client (default 2);
//! * `ISAX_LOADGEN_KERNELS` — corpus prefix length (default: all).
//!
//! Sanity gates (exit status is the CI signal): zero request errors,
//! zero uncounted requests (`received == completed + Σ per-code
//! errors`), the histogram quantile bound against exact-sort, and a
//! cache hit rate within tolerance of the blessed baseline in
//! `results/loadgen_baseline.json`. Re-bless an intentional change with
//! `ISAX_BLESS=1 loadgen` and commit the new baseline.

#![forbid(unsafe_code)]

use isax_bench::{extended_corpus, host_cpus, oversubscribed, HEADLINE_BUDGET};
use isax_graph::par::thread_count;
use isax_serve::{Client, EnvMode, Request, ServeConfig, Server};
use isax_trace::hist::{ABS_ERR_SLACK, REL_ERR_BOUND_E9};
use isax_trace::Hist;
use std::time::Instant;

const BASELINE: &str = "results/loadgen_baseline.json";
/// Allowed hit-rate drift before the gate trips. The hit rate is almost
/// deterministic — `(requests - kernels) / requests` — but concurrent
/// cold misses on one key can each count as a miss, so the gate keeps
/// a small margin.
const HIT_RATE_TOLERANCE: f64 = 0.05;

fn env_usize(key: &str, default: usize) -> usize {
    match std::env::var(key) {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("{key} must be a positive integer, got `{v}`")),
        Err(_) => default,
    }
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

/// Renders a histogram as JSON: exact aggregates plus the non-empty
/// buckets as `{lo, hi, count}` (hi is the exclusive upper boundary).
fn hist_json(h: &Hist) -> isax_json::Value {
    let buckets: Vec<isax_json::Value> = h
        .nonzero_buckets()
        .map(|(idx, count)| {
            isax_json::object([
                (
                    "lo",
                    isax_json::Value::from(isax_trace::hist::bucket_lower(idx)),
                ),
                ("hi", isax_trace::hist::bucket_upper(idx).into()),
                ("count", count.into()),
            ])
        })
        .collect();
    isax_json::object([
        ("count", isax_json::Value::from(h.count())),
        ("sum", h.sum().into()),
        ("min", h.min().into()),
        ("max", h.max().into()),
        ("buckets", isax_json::Value::Array(buckets)),
    ])
}

/// Asserts the histogram estimate for quantile `q` agrees with the
/// exact sorted value to within the documented bound — the same pure
/// integer inequality `tests/hist.rs` proves by property testing.
fn assert_quantile_bound(h: &Hist, sorted_us: &[u64], q: f64) {
    let rank = isax_trace::hist::quantile_rank(q, sorted_us.len() as u64) as usize;
    let exact = sorted_us[rank - 1];
    let est = h.quantile(q);
    assert!(
        est <= exact,
        "hist q{q}: estimate {est} exceeds exact {exact}"
    );
    let gap = u128::from(exact - est) * 1_000_000_000;
    let allowed = u128::from(est) * REL_ERR_BOUND_E9 + ABS_ERR_SLACK * 1_000_000_000;
    assert!(
        gap <= allowed,
        "hist q{q}: exact={exact} est={est} violates the relative-error bound"
    );
}

fn main() {
    let clients = env_usize("ISAX_LOADGEN_CLIENTS", 4);
    let rounds = env_usize("ISAX_LOADGEN_ROUNDS", 2);
    let corpus = extended_corpus();
    let kernels = env_usize("ISAX_LOADGEN_KERNELS", corpus.len()).min(corpus.len());
    assert!(clients > 0 && rounds > 0 && kernels > 0);

    // Pre-render each kernel once: (name, text, work budget).
    let requests: Vec<(String, String, Option<u64>)> = corpus[..kernels]
        .iter()
        .map(|k| {
            let text = k
                .program
                .functions
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n");
            (k.name.clone(), text, k.work_budget)
        })
        .collect();

    let workers = thread_count();
    let server = Server::spawn(ServeConfig {
        workers,
        stats: EnvMode::Off,
        ..ServeConfig::default()
    })
    .expect("server spawns");
    let addr = server.addr();
    eprintln!(
        "loadgen: {clients} client(s) x {rounds} round(s) x {kernels} kernel(s), \
         {workers} worker(s)"
    );

    let t0 = Instant::now();
    let per_client: Vec<(Vec<u64>, u64)> = std::thread::scope(|scope| {
        let requests = &requests;
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("client connects");
                    let mut latencies_us = Vec::with_capacity(rounds * requests.len());
                    let mut errors = 0u64;
                    for _ in 0..rounds {
                        // Offset each client's walk so cold misses spread
                        // across the corpus instead of piling on one key.
                        for i in 0..requests.len() {
                            let (name, text, work) = &requests[(i + c) % requests.len()];
                            let t = Instant::now();
                            let outcome = client.artifacts(Request::Customize {
                                kernel: text.clone(),
                                name: name.clone(),
                                budget: HEADLINE_BUDGET,
                                multifunction: false,
                                work_budget: *work,
                            });
                            latencies_us.push(t.elapsed().as_micros() as u64);
                            match outcome {
                                Ok((_, art)) => assert!(art.mdes.is_some()),
                                Err(e) => {
                                    eprintln!("loadgen: {name}: {e}");
                                    errors += 1;
                                }
                            }
                        }
                    }
                    (latencies_us, errors)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall_s = t0.elapsed().as_secs_f64();

    let mut latencies: Vec<u64> = per_client
        .iter()
        .flat_map(|(l, _)| l.iter().copied())
        .collect();
    let errors: u64 = per_client.iter().map(|(_, e)| e).sum();
    latencies.sort_unstable();
    let total_requests = latencies.len() as u64;

    // Merge per-client histograms exactly as a sharded collector would;
    // the merge algebra makes this equal to one big histogram.
    let latency_hist = {
        let mut h = Hist::new();
        for (client_lat, _) in &per_client {
            let mut shard = Hist::new();
            for &us in client_lat {
                shard.record(us);
            }
            h.merge(&shard);
        }
        h
    };

    let stats = server.stats_value();
    let server_hists = server.hists();
    server.shutdown();
    let cache = stats.get("cache").expect("stats.cache");
    let hit_rate = cache
        .get("hit_rate")
        .and_then(|v| v.as_f64())
        .unwrap_or(0.0);
    let hits = cache.get("hits").and_then(|v| v.as_u64()).unwrap_or(0);
    let misses = cache.get("misses").and_then(|v| v.as_u64()).unwrap_or(0);
    let entries = cache.get("entries").and_then(|v| v.as_u64()).unwrap_or(0);

    let cpus = host_cpus();
    let oversub = oversubscribed(workers.max(clients), cpus);
    let doc = isax_json::object([
        ("clients", isax_json::Value::from(clients as u64)),
        ("rounds", (rounds as u64).into()),
        ("kernels", (kernels as u64).into()),
        ("workers", (workers as u64).into()),
        ("budget", HEADLINE_BUDGET.into()),
        ("host_cpus", (cpus as u64).into()),
        // Same contract as BENCH_pipeline.json: when set, throughput
        // demonstrates determinism and caching, not parallel scaling.
        ("oversubscribed", oversub.into()),
        ("requests", total_requests.into()),
        ("errors", errors.into()),
        ("wall_s", wall_s.into()),
        (
            "throughput_rps",
            (total_requests as f64 / wall_s.max(1e-9)).into(),
        ),
        ("p50_us", latency_hist.quantile(0.50).into()),
        ("p90_us", latency_hist.quantile(0.90).into()),
        ("p99_us", latency_hist.quantile(0.99).into()),
        ("p999_us", latency_hist.quantile(0.999).into()),
        ("latency_hist", hist_json(&latency_hist)),
        ("queue_wait_hist", hist_json(&server_hists.queue_wait_us)),
        (
            "cache",
            isax_json::object([
                ("entries", isax_json::Value::from(entries)),
                ("hits", hits.into()),
                ("misses", misses.into()),
                ("hit_rate", hit_rate.into()),
            ]),
        ),
    ]);
    let rendered = {
        let mut s = doc.to_string_pretty();
        s.push('\n');
        s
    };
    std::fs::write("BENCH_serve.json", &rendered).expect("write BENCH_serve.json");
    println!("{rendered}");

    if oversub {
        eprintln!(
            "loadgen: {total_requests} requests in {wall_s:.2}s with {workers} worker(s) on \
             {cpus} CPU(s) — oversubscribed, so throughput demonstrates determinism and \
             caching, not parallel scaling"
        );
    } else {
        eprintln!(
            "loadgen: {total_requests} requests in {wall_s:.2}s \
             ({:.1} req/s, p50 {}us, p99 {}us)",
            total_requests as f64 / wall_s.max(1e-9),
            percentile(&latencies, 0.50),
            percentile(&latencies, 0.99),
        );
    }

    // Gate 1: every request must succeed.
    assert_eq!(errors, 0, "loadgen saw {errors} request error(s)");
    // Gate 1b: zero uncounted requests — everything the server received
    // is either completed or attributed to exactly one error code.
    let req = stats.get("requests").expect("stats.requests");
    let received = req.get("received").and_then(|v| v.as_u64()).unwrap_or(0);
    let completed = req.get("completed").and_then(|v| v.as_u64()).unwrap_or(0);
    let by_code_sum: u64 = match req.get("by_code") {
        Some(isax_json::Value::Object(pairs)) => pairs.iter().filter_map(|(_, v)| v.as_u64()).sum(),
        _ => panic!("stats.requests.by_code missing"),
    };
    assert_eq!(
        received,
        completed + by_code_sum,
        "uncounted requests: received {received} != completed {completed} + errors {by_code_sum}"
    );
    // Gate 1c: histogram percentiles agree with exact-sort to within
    // the documented bucket error bound.
    for q in [0.50, 0.90, 0.99, 0.999] {
        assert_quantile_bound(&latency_hist, &latencies, q);
    }
    // Gate 2: the cache must actually serve repeats.
    let expected_hit_rate =
        (total_requests.saturating_sub(entries)) as f64 / (total_requests as f64).max(1.0);
    assert!(
        hit_rate > 0.0,
        "no cache hits across {rounds} round(s) — content addressing is broken"
    );

    // Gate 3: the blessed baseline (hit rate within tolerance, at the
    // blessed knob configuration).
    let baseline_doc = isax_json::object([
        ("clients", isax_json::Value::from(clients as u64)),
        ("rounds", (rounds as u64).into()),
        ("kernels", (kernels as u64).into()),
        ("hit_rate", hit_rate.into()),
    ]);
    if std::env::var("ISAX_BLESS").is_ok_and(|v| v == "1") {
        let mut s = baseline_doc.to_string_pretty();
        s.push('\n');
        std::fs::write(BASELINE, &s).expect("write baseline");
        eprintln!("blessed {BASELINE}");
        return;
    }
    let text = std::fs::read_to_string(BASELINE).unwrap_or_else(|e| {
        panic!("{BASELINE}: {e}\nrun with ISAX_BLESS=1 to generate the baseline")
    });
    let base = isax_json::parse(&text).expect("baseline parses");
    let knobs_match = ["clients", "rounds", "kernels"].iter().all(|k| {
        base.get(k).and_then(|v| v.as_u64()) == baseline_doc.get(k).and_then(|v| v.as_u64())
    });
    if !knobs_match {
        eprintln!(
            "loadgen: knob configuration differs from the blessed baseline — \
             skipping the hit-rate gate (hit rate {hit_rate:.3}, expected ~{expected_hit_rate:.3})"
        );
        return;
    }
    let base_hit_rate = base
        .get("hit_rate")
        .and_then(|v| v.as_f64())
        .expect("baseline hit_rate");
    assert!(
        hit_rate >= base_hit_rate - HIT_RATE_TOLERANCE,
        "cache hit rate regressed: {hit_rate:.3} vs blessed {base_hit_rate:.3} — \
         re-bless with ISAX_BLESS=1 if intentional"
    );
    eprintln!("loadgen OK: hit rate {hit_rate:.3} (blessed {base_hit_rate:.3})");
}
