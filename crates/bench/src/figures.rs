//! String renderers for the paper-figure tables.
//!
//! The `src/bin/` binaries used to build their tables with inline
//! `println!` calls, which made the evaluation output impossible to
//! regression-test. Each renderer here returns the table as a `String`,
//! parameterized by workload subset / size axis, so the binaries print
//! exactly what they always printed while `tests/golden_figures.rs`
//! byte-compares small-kernel snapshots against `tests/golden/`.

use crate::AnalyzedApp;
use isax::{Customizer, MatchMode, MatchOptions};
use isax_explore::{explore_dfg, explore_dfg_naive, ExploreConfig};
use isax_hwlib::HwLibrary;
use isax_ir::{function_dfgs, Program};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Figure 3 table: candidates examined, guided vs exponential, per
/// maximum candidate size, for every DFG of `program`.
///
/// `naive_budget` caps the exponential search (a `+` marks rows where it
/// hit the cap), matching the binary's behavior; `None` runs unbounded.
pub fn figure3_table(
    title: &str,
    program: &Program,
    sizes: &[usize],
    naive_budget: Option<u64>,
) -> String {
    let hw = HwLibrary::micron_018();
    let dfgs: Vec<_> = program.functions.iter().flat_map(function_dfgs).collect();
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "{:>9} {:>16} {:>16} {:>9}",
        "max size", "guided", "exponential", "ratio"
    );
    for &max_nodes in sizes {
        let naive_cfg = ExploreConfig {
            max_nodes,
            max_inputs: usize::MAX,
            max_outputs: usize::MAX,
            ..ExploreConfig::default()
        };
        let guided_cfg = ExploreConfig {
            taper_size: Some(5),
            taper_fanout: 2,
            ..naive_cfg.clone()
        };
        let mut guided = 0u64;
        let mut naive = 0u64;
        let mut truncated = false;
        for dfg in &dfgs {
            guided += explore_dfg(dfg, &hw, &guided_cfg).stats.examined;
            let n = explore_dfg_naive(dfg, &hw, &naive_cfg, naive_budget);
            naive += n.stats.examined;
            truncated |= n.stats.truncated;
        }
        let _ = writeln!(
            out,
            "{:>9} {:>16} {:>15}{} {:>9.2}",
            max_nodes,
            guided,
            naive,
            if truncated { "+" } else { " " },
            naive as f64 / guided.max(1) as f64
        );
    }
    out
}

/// One speedup table (a Figure 7 panel): one row per series, one column
/// per budget.
pub fn render_series(title: &str, budgets: &[f64], rows: &[(String, Vec<f64>)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\n=== {title} ===");
    let _ = write!(out, "{:<24}", "series \\ budget");
    for &b in budgets {
        let _ = write!(out, " {:>5}", b as u32);
    }
    let _ = writeln!(out);
    for (name, values) in rows {
        let _ = write!(out, "{name:<24}");
        for v in values {
            let _ = write!(out, " {v:>5.2}");
        }
        let _ = writeln!(out);
    }
    out
}

/// Figure 7 native panel for a set of applications: speedup of each app
/// on its own CFUs across the budget axis.
pub fn figure7_native_table(
    title: &str,
    cz: &Customizer,
    suite: &BTreeMap<&'static str, AnalyzedApp>,
    names: &[&str],
    budgets: &[f64],
) -> String {
    let rows: Vec<(String, Vec<f64>)> = names
        .iter()
        .map(|name| {
            let app = &suite[name];
            let curve = budgets.iter().map(|&b| crate::native(cz, app, b)).collect();
            (name.to_string(), curve)
        })
        .collect();
    render_series(title, budgets, &rows)
}

/// Figure 7 cross panel: every app on every *other* member's CFUs.
pub fn figure7_cross_table(
    title: &str,
    cz: &Customizer,
    suite: &BTreeMap<&'static str, AnalyzedApp>,
    names: &[&str],
    budgets: &[f64],
) -> String {
    let mut rows = Vec::new();
    for app_name in names {
        for src_name in names {
            if app_name == src_name {
                continue;
            }
            let curve = budgets
                .iter()
                .map(|&b| {
                    crate::cross(
                        cz,
                        &suite[src_name],
                        &suite[app_name],
                        b,
                        MatchOptions::exact(),
                    )
                })
                .collect();
            rows.push((format!("{app_name}-{src_name}"), curve));
        }
    }
    render_series(title, budgets, &rows)
}

/// Per-domain speedup panel: one row per kernel (its own CFUs at
/// `budget`, subsumed matching), grouped by corpus domain with a
/// geometric-mean summary row per domain.
///
/// Takes `(name, domain, program)` triples so callers can mix paper
/// workloads, curated corpus members, and freshly generated kernels;
/// rows keep input order, domains keep first-appearance order.
pub fn domain_speedup_table(
    title: &str,
    cz: &Customizer,
    kernels: &[(String, &'static str, Program)],
    budget: f64,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\n=== {title} ===");
    let _ = writeln!(out, "{:<8} {:<20} {:>8}", "domain", "kernel", "speedup");
    let mut by_domain: Vec<(&str, Vec<f64>)> = Vec::new();
    for (name, domain, program) in kernels {
        let analysis = cz.analyze(program);
        let (mdes, _) = cz.select(name, &analysis, budget);
        let speedup = cz
            .evaluate(program, &mdes, MatchOptions::with_subsumed())
            .speedup;
        let _ = writeln!(out, "{domain:<8} {name:<20} {speedup:>7.2}x");
        match by_domain.iter_mut().find(|(d, _)| d == domain) {
            Some((_, v)) => v.push(speedup),
            None => by_domain.push((domain, vec![speedup])),
        }
    }
    let _ = writeln!(out);
    for (domain, speedups) in &by_domain {
        let _ = writeln!(
            out,
            "{:<8} {:<20} {:>7.2}x",
            domain,
            "geomean",
            crate::geomean(speedups)
        );
    }
    out
}

/// Figures 8/9 panel: the four paper bars (exact, +subsumed, wildcard,
/// wildcard+subsumed) for every (application × CFU source) pair drawn
/// from `names`, at one cost point.
pub fn figure8_9_table(
    title: &str,
    cz: &Customizer,
    suite: &BTreeMap<&'static str, AnalyzedApp>,
    names: &[&str],
    budget: f64,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\n=== {title} ===");
    let _ = writeln!(
        out,
        "{:<22} {:>7} {:>10} {:>10} {:>10}",
        "app-on-CFUs", "exact", "+subsumed", "wild", "wild+sub"
    );
    for app_name in names {
        for src_name in names {
            let app = &suite[app_name];
            let src = &suite[src_name];
            let bar = |m: MatchOptions| crate::cross(cz, src, app, budget, m);
            let exact = bar(MatchOptions::exact());
            let subsumed = bar(MatchOptions::with_subsumed());
            let wild = bar(MatchOptions {
                mode: MatchMode::Wildcard,
                allow_subsumed: false,
            });
            let wild_sub = bar(MatchOptions::generalized());
            let _ = writeln!(
                out,
                "{:<22} {:>6.2}x {:>9.2}x {:>9.2}x {:>9.2}x",
                format!("{app_name}-{src_name}"),
                exact,
                subsumed,
                wild,
                wild_sub
            );
        }
    }
    out
}
