//! Criterion microbenchmarks: one group per pipeline stage, so a
//! performance regression anywhere in the toolflow is visible.
//!
//! ```sh
//! cargo bench -p isax-bench
//! ```

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use isax::{Customizer, MatchOptions};
use isax_compiler::{compile, CompileOptions, Mdes, VliwModel};
use isax_explore::{explore_dfg, ExploreConfig};
use isax_graph::vf2;
use isax_hwlib::HwLibrary;
use isax_ir::function_dfgs;
use isax_select::{combine, select_greedy, SelectConfig};

fn bench_exploration(c: &mut Criterion) {
    let hw = HwLibrary::micron_018();
    let mut g = c.benchmark_group("explore");
    for name in ["blowfish", "rijndael", "rawdaudio"] {
        let w = isax_workloads::by_name(name).unwrap();
        let dfgs = function_dfgs(&w.program.functions[0]);
        // The hot block is always block 1 in these kernels.
        let dfg = dfgs[1].clone();
        g.bench_function(name, |b| {
            b.iter(|| explore_dfg(&dfg, &hw, &ExploreConfig::default()))
        });
    }
    g.finish();
}

fn bench_matching(c: &mut Criterion) {
    let cz = Customizer::new();
    let w = isax_workloads::by_name("blowfish").unwrap();
    let (mdes, _) = cz.customize(w.name, &w.program, 15.0);
    let dfgs = function_dfgs(&w.program.functions[0]);
    let target = dfgs[1].to_digraph();
    let pattern = mdes.cfus[0].pattern.clone();
    c.bench_function("vf2/cfu0-in-blowfish-hot-block", |b| {
        b.iter(|| {
            vf2::Matcher::new(&pattern, &target)
                .node_compat(isax_ir::DfgLabel::matches_exact)
                .commutative(|l| l.opcode.is_commutative())
                .find_all()
        })
    });
}

fn bench_combination_and_selection(c: &mut Criterion) {
    let hw = HwLibrary::micron_018();
    let w = isax_workloads::by_name("rawdaudio").unwrap();
    let dfgs: Vec<_> = w.program.functions.iter().flat_map(function_dfgs).collect();
    let found = isax_explore::explore_app(&dfgs, &hw, &ExploreConfig::default());
    c.bench_function("combine/rawdaudio", |b| {
        b.iter(|| combine(&dfgs, &found.candidates, &hw))
    });
    let cfus = combine(&dfgs, &found.candidates, &hw);
    c.bench_function("select-greedy/rawdaudio@15", |b| {
        b.iter(|| select_greedy(&cfus, &SelectConfig::with_budget(15.0)))
    });
}

fn bench_compile(c: &mut Criterion) {
    let cz = Customizer::new();
    let hw = HwLibrary::micron_018();
    let mut g = c.benchmark_group("compile");
    for name in ["blowfish", "mpeg2dec"] {
        let w = isax_workloads::by_name(name).unwrap();
        let (mdes, _) = cz.customize(w.name, &w.program, 15.0);
        g.bench_function(format!("{name}@15"), |b| {
            b.iter_batched(
                || (w.program.clone(), mdes.clone()),
                |(p, m)| compile(&p, &m, &hw, &CompileOptions::default()),
                BatchSize::SmallInput,
            )
        });
        g.bench_function(format!("{name}-baseline"), |b| {
            b.iter_batched(
                || w.program.clone(),
                |p| compile(&p, &Mdes::baseline(), &hw, &CompileOptions::default()),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
    let _ = VliwModel::default();
}

fn bench_end_to_end(c: &mut Criterion) {
    let cz = Customizer::new();
    let w = isax_workloads::by_name("crc").unwrap();
    c.bench_function("pipeline/crc-analyze-select-evaluate", |b| {
        b.iter(|| {
            let (mdes, _) = cz.customize(w.name, &w.program, 15.0);
            cz.evaluate(&w.program, &mdes, MatchOptions::exact()).speedup
        })
    });
}

criterion_group!(
    benches,
    bench_exploration,
    bench_matching,
    bench_combination_and_selection,
    bench_compile,
    bench_end_to_end
);
criterion_main!(benches);
