//! Enforces the commit-or-regenerate policy for checked-in
//! `.proptest-regressions` artifacts.
//!
//! The vendored proptest does **not** replay those files (it seeds
//! deterministically from the test name), so a bare `cc <hash>` line
//! regression-tests nothing. The policy, stated in each file's header:
//! every `cc` line must be paired with a deterministic
//! `recorded_regression_*` unit test in the matching suite that rebuilds
//! the shrunken input by hand. This test walks the repository, finds
//! every artifact, and fails when a `cc` line has no companion test or
//! when an artifact still carries the stale upstream header claiming the
//! file is "automatically read".

use std::path::{Path, PathBuf};

/// Every checked-in artifact together with the test-suite source whose
/// `recorded_regression_*` tests cover it.
fn artifacts(root: &Path) -> Vec<(PathBuf, PathBuf)> {
    let pairs = [
        ("tests/parser.proptest-regressions", "tests/parser.rs"),
        ("tests/ifconvert.proptest-regressions", "tests/ifconvert.rs"),
        (
            "crates/compiler/tests/proptest_schedule.proptest-regressions",
            "crates/compiler/tests/proptest_schedule.rs",
        ),
        (
            "crates/select/tests/proptest_select.proptest-regressions",
            "crates/select/tests/proptest_select.rs",
        ),
    ];
    pairs
        .iter()
        .map(|(a, s)| (root.join(a), root.join(s)))
        .collect()
}

/// Walks the repo for artifacts the list above forgot — a new
/// `.proptest-regressions` file must be added to [`artifacts`] (and get
/// a companion test) or deleted.
fn find_all_artifacts(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("readable repo dir") {
        let entry = entry.expect("dir entry");
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" || name == "vendor" {
                continue;
            }
            find_all_artifacts(&path, out);
        } else if name.ends_with(".proptest-regressions") {
            out.push(path);
        }
    }
}

fn repo_root() -> PathBuf {
    // CARGO_MANIFEST_DIR of the root `isax-repro` package is the repo.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn every_artifact_is_registered() {
    let root = repo_root();
    let mut found = Vec::new();
    find_all_artifacts(&root, &mut found);
    let registered: Vec<PathBuf> = artifacts(&root).into_iter().map(|(a, _)| a).collect();
    for f in &found {
        assert!(
            registered.contains(f),
            "unregistered proptest artifact {}: add it to tests/proptest_artifacts.rs \
             with a recorded_regression_* companion test, or delete it",
            f.display()
        );
    }
    assert_eq!(
        found.len(),
        registered.len(),
        "a registered artifact is missing from disk"
    );
}

#[test]
fn every_cc_line_has_a_companion_test_and_a_truthful_header() {
    for (artifact, suite) in artifacts(&repo_root()) {
        let text = std::fs::read_to_string(&artifact)
            .unwrap_or_else(|e| panic!("{}: {e}", artifact.display()));
        assert!(
            !text.contains("automatically read"),
            "{}: stale upstream header — the vendored proptest does not replay \
             this file; keep the commit-or-regenerate header instead",
            artifact.display()
        );
        assert!(
            text.contains("recorded_regression_"),
            "{}: header must state the companion-test policy",
            artifact.display()
        );
        let cc_lines: Vec<&str> = text
            .lines()
            .filter(|l| l.trim_start().starts_with("cc "))
            .collect();
        assert!(
            !cc_lines.is_empty(),
            "{}: artifact with no cc lines should be deleted",
            artifact.display()
        );
        let suite_src =
            std::fs::read_to_string(&suite).unwrap_or_else(|e| panic!("{}: {e}", suite.display()));
        let companion_tests = suite_src.matches("fn recorded_regression_").count();
        assert!(
            companion_tests >= cc_lines.len(),
            "{}: {} cc line(s) but only {} recorded_regression_* test(s) in {} — \
             each pinned seed needs a deterministic reconstruction",
            artifact.display(),
            cc_lines.len(),
            companion_tests,
            suite.display()
        );
    }
}
