//! Pathological-input stress suite for `isax-guard`.
//!
//! Each kernel in `kernels/stress/` is constructed so the explorer's
//! candidate space dwarfs any reasonable budget (see `isax_gen::stress`,
//! which regenerates them byte-identically). Ungoverned, these inputs run for
//! minutes to hours; under a work-unit budget every one of them must
//!
//!   1. terminate,
//!   2. report a structured [`isax::Degradation`] saying what was cut,
//!   3. still produce *sound* partial output: every checker checkpoint
//!      stays clean (`cz.check = true` panics on any violation), and the
//!      customized program executes bit-identically to the original.
//!
//! The budget is deliberately small so the suite is fast in debug CI
//! runs; the `stress` CI job re-runs the corpus at the acceptance-level
//! 10^6-unit budget in release mode via `ISAX_STRESS_BUDGET`.

use isax::{Customizer, DegradationKind, Guard, MatchOptions, Stage};
use isax_check::check_differential;
use isax_ir::parse_program;
use isax_machine::Memory;

const STRESS_KERNELS: [&str; 4] = [
    "deep_chain",
    "wide_fanout",
    "dense_clique",
    "mem_alu_ladder",
];

/// Work-unit budget per (stage, item). Overridable so the release-mode
/// CI stress job can run the full 10^6-unit acceptance configuration.
fn stress_budget() -> u64 {
    std::env::var("ISAX_STRESS_BUDGET")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000)
}

fn load(kernel: &str) -> isax_ir::Program {
    let path = format!(
        "{}/kernels/stress/{kernel}.isax",
        env!("CARGO_MANIFEST_DIR")
    );
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    parse_program(&text).unwrap_or_else(|e| panic!("{path}: {e}"))
}

/// Runs one stress kernel through the governed pipeline with every
/// checker checkpoint armed, returning the degradation records from all
/// three stages in pipeline order.
fn run_governed(kernel: &str, budget: u64) -> Vec<isax::Degradation> {
    let program = load(kernel);
    let mut cz = Customizer::new();
    cz.check = true;
    cz.guard = Guard::unlimited().with_units(budget);

    let analysis = cz.analyze(&program);
    let (mdes, sel) = cz.select(kernel, &analysis, 15.0);
    let ev = cz.evaluate(&program, &mdes, MatchOptions::exact());

    assert!(
        ev.custom_cycles <= ev.baseline_cycles,
        "{kernel}: partial customization made the estimate worse"
    );

    // The governed output must stay *sound*, not just check-clean:
    // interpret both programs on concrete inputs and compare.
    let entry = &program.functions[0].name;
    let report = check_differential(
        &program,
        &ev.compiled.program,
        entry,
        &[0x1000, 0x0f0f_3c5a],
        &Memory::new(),
        50_000_000,
    );
    assert!(
        report.is_clean(),
        "{kernel}: governed output diverges from the original:\n{report}"
    );

    let mut degradations = analysis.degradations.clone();
    degradations.extend(sel.degradations.iter().cloned());
    degradations.extend(ev.compiled.degradations.iter().cloned());
    degradations
}

/// Every stress kernel terminates under the budget, reports an explore
/// budget-exhaustion degradation, and keeps all checkpoints clean.
#[test]
fn stress_corpus_terminates_with_sound_partial_results() {
    let budget = stress_budget();
    for kernel in STRESS_KERNELS {
        let degradations = run_governed(kernel, budget);
        assert!(
            degradations
                .iter()
                .any(|d| d.stage == Stage::Explore && d.kind == DegradationKind::BudgetExhausted),
            "{kernel}: candidate space should exceed the {budget}-unit budget, \
             got degradations: {degradations:?}"
        );
        for d in &degradations {
            assert!(
                d.kind.reproducible(),
                "{kernel}: work-unit governance produced a non-reproducible record: {d}"
            );
        }
    }
}

/// The degradation records themselves are part of the deterministic
/// output: running the same kernel under the same budget twice yields
/// identical reports.
#[test]
fn stress_degradations_are_stable_across_runs() {
    let budget = stress_budget().min(5_000);
    let a = run_governed("deep_chain", budget);
    let b = run_governed("deep_chain", budget);
    assert_eq!(
        a.iter().map(|d| d.to_string()).collect::<Vec<_>>(),
        b.iter().map(|d| d.to_string()).collect::<Vec<_>>(),
        "same kernel + same budget must reproduce the same degradations"
    );
    assert!(
        !a.is_empty(),
        "deep_chain must exhaust a {budget}-unit budget"
    );
}

/// An *unlimited* governed run of a stress kernel head must match the
/// ungoverned pipeline exactly — governance is observability plus
/// budgets, never a behaviour change. Uses a truncated kernel (first
/// 120 instructions) so the ungoverned run stays fast.
#[test]
fn unlimited_guard_matches_ungoverned_on_stress_head() {
    let path = format!(
        "{}/kernels/stress/deep_chain.isax",
        env!("CARGO_MANIFEST_DIR")
    );
    let text = std::fs::read_to_string(&path).expect("read deep_chain");
    // Header (2 lines) + first 120 instructions, then return the last
    // destination register so the head is a well-formed function.
    let mut head: Vec<String> = text.lines().take(122).map(str::to_string).collect();
    let last_dest = head
        .last()
        .and_then(|l| l.split_whitespace().nth(1))
        .map(|d| d.trim_end_matches(',').to_string())
        .expect("last instruction has a destination");
    head.push(format!("    ret {last_dest}"));
    let program = parse_program(&format!("{}\n", head.join("\n"))).expect("head parses");

    let ungoverned = Customizer::new();
    let mut governed = Customizer::new();
    governed.guard = Guard::unlimited();

    let a = ungoverned.analyze(&program);
    let b = governed.analyze(&program);
    assert_eq!(a.stats.examined, b.stats.examined);
    assert_eq!(a.cfus.len(), b.cfus.len());
    assert!(b.degradations.is_empty());
}
