//! The §3.2 validation experiment: "To ensure that good candidates are
//! not dismissed, the heuristic was compared against a full exponential
//! search for several small benchmarks. The results showed that both
//! approaches selected identical sets of candidates. The heuristic was
//! also compared against full exponential search using restricted
//! constraints (3 input, 2 output ports and a five adder maximum cost) on
//! larger benchmarks."

use isax_explore::{explore_dfg, explore_dfg_naive, ExploreConfig};
use isax_hwlib::HwLibrary;
use isax_ir::{function_dfgs, Dfg};
use std::collections::BTreeSet;

fn candidate_sets(dfg: &Dfg, cfg: &ExploreConfig) -> (BTreeSet<Vec<usize>>, BTreeSet<Vec<usize>>) {
    let hw = HwLibrary::micron_018();
    let guided = explore_dfg(dfg, &hw, cfg);
    let naive = explore_dfg_naive(dfg, &hw, cfg, None);
    let g = guided
        .candidates
        .iter()
        .map(|c| c.nodes.iter().collect::<Vec<_>>())
        .collect();
    let n = naive
        .candidates
        .iter()
        .map(|c| c.nodes.iter().collect::<Vec<_>>())
        .collect();
    (g, n)
}

#[test]
fn small_benchmarks_identical_candidate_sets() {
    // The small end of the suite: crc, url, ipchains hot blocks.
    for name in ["crc", "url", "ipchains"] {
        let w = isax_workloads::by_name(name).unwrap();
        for f in &w.program.functions {
            for dfg in function_dfgs(f) {
                let (g, n) = candidate_sets(&dfg, &ExploreConfig::default());
                assert_eq!(g, n, "{name}: guided vs exhaustive candidate sets");
            }
        }
    }
}

#[test]
fn larger_benchmarks_under_restricted_constraints() {
    // The paper's restricted setting: 3-in/2-out, five-adder cap.
    let cfg = ExploreConfig {
        max_inputs: 3,
        max_outputs: 2,
        max_area: Some(5.0),
        ..ExploreConfig::default()
    };
    for name in ["blowfish", "sha", "gsmencode", "mpeg2dec"] {
        let w = isax_workloads::by_name(name).unwrap();
        for f in &w.program.functions {
            for dfg in function_dfgs(f) {
                let (g, n) = candidate_sets(&dfg, &cfg);
                // "the results found using the heuristic were comparable
                // with those of full exponential search": guided must be a
                // subset, and must recover nearly everything.
                assert!(
                    g.is_subset(&n),
                    "{name}: guided found candidates the oracle missed?"
                );
                if n.is_empty() {
                    assert!(g.is_empty());
                    continue; // nothing viable in this block (e.g. exits)
                }
                let recovered = g.len() as f64 / n.len() as f64;
                assert!(
                    recovered >= 0.9,
                    "{name}: guided recovered only {:.0}% of {} candidates",
                    recovered * 100.0,
                    n.len()
                );
            }
        }
    }
}

#[test]
fn guided_explores_no_more_than_naive() {
    let hw = HwLibrary::micron_018();
    for w in isax_workloads::all() {
        for f in &w.program.functions {
            for dfg in function_dfgs(f) {
                if dfg.len() > 40 {
                    continue; // keep the oracle tractable
                }
                let g = explore_dfg(&dfg, &hw, &ExploreConfig::default());
                let n = explore_dfg_naive(&dfg, &hw, &ExploreConfig::default(), Some(2_000_000));
                if n.stats.truncated {
                    continue;
                }
                assert!(
                    g.stats.examined <= n.stats.examined,
                    "{}: guided examined more candidates than exhaustive",
                    w.name
                );
            }
        }
    }
}
