//! Fault-injection suite: every `ISAX_FAULT` target point, exercised
//! programmatically.
//!
//! The guard compiles the fault hook in unconditionally (it is inert
//! unless configured), and these tests configure it through
//! [`Guard::with_fault`] rather than the environment so the suite is
//! free of env-var races under the parallel test runner. For each of
//! the four governed stages we inject both fault kinds:
//!
//! * `panic` — the stage's worker panics mid-item. The panic must be
//!   contained at the fan-out join, converted to a structured
//!   [`Degradation`], and the pipeline must finish with sound output.
//! * `exhaust` — the item's meter is forced to an immediate budget
//!   exhaustion. The stage must keep the sound prefix of its work and
//!   report what was cut.
//!
//! Every case runs with `cz.check = true`, so any unsound partial
//! artifact panics inside the pipeline and fails the test.

use isax::{
    Customizer, Degradation, DegradationKind, FaultKind, FaultPlan, Guard, MatchOptions, Stage,
};
use isax_ir::parse_program;

/// A small rotate-diamond kernel: enough structure that all four
/// governed stages (explore, select, match, schedule) do real work.
fn kernel() -> isax_ir::Program {
    let mut src = String::from("func fi_kernel(v0, v1)\nb0:  ; weight 100000\n");
    let mut acc = 0u32; // v0
    let mut next = 2u32;
    for _ in 0..12 {
        let (t, l, r, o) = (next, next + 1, next + 2, next + 3);
        src.push_str(&format!("    xor v{t}, v{acc}, v1\n"));
        src.push_str(&format!("    shl v{l}, v{t}, #5\n"));
        src.push_str(&format!("    shr v{r}, v{t}, #27\n"));
        src.push_str(&format!("    or v{o}, v{l}, v{r}\n"));
        acc = o;
        next += 4;
    }
    src.push_str(&format!("    ret v{acc}\n"));
    parse_program(&src).expect("fault kernel parses")
}

struct Run {
    analysis_degradations: Vec<Degradation>,
    select_degradations: Vec<Degradation>,
    compile_degradations: Vec<Degradation>,
    chosen: usize,
    custom_cycles: u64,
    baseline_cycles: u64,
}

/// Full governed pipeline under one injected fault, checkpoints armed.
fn run_with_fault(stage: Stage, kind: FaultKind) -> Run {
    let program = kernel();
    let mut cz = Customizer::new();
    cz.check = true;
    cz.guard = Guard::unlimited().with_fault(FaultPlan {
        stage,
        kind,
        nth: 0,
    });

    let analysis = cz.analyze(&program);
    let (mdes, sel) = cz.select("fi_kernel", &analysis, 15.0);
    let ev = cz.evaluate(&program, &mdes, MatchOptions::exact());
    Run {
        analysis_degradations: analysis.degradations,
        select_degradations: sel.degradations,
        compile_degradations: ev.compiled.degradations,
        chosen: sel.chosen.len(),
        custom_cycles: ev.custom_cycles,
        baseline_cycles: ev.baseline_cycles,
    }
}

fn assert_has(degradations: &[Degradation], stage: Stage, kind: DegradationKind) {
    assert!(
        degradations
            .iter()
            .any(|d| d.stage == stage && d.kind == kind),
        "expected a {kind:?} degradation at stage {stage}, got: {degradations:?}",
    );
}

#[test]
fn explore_panic_is_contained() {
    let r = run_with_fault(Stage::Explore, FaultKind::Panic);
    assert_has(
        &r.analysis_degradations,
        Stage::Explore,
        DegradationKind::Panicked,
    );
    // The single DFG's worker died, so analysis is empty — but the
    // pipeline still runs to completion on the baseline ISA.
    assert_eq!(r.chosen, 0);
    assert_eq!(r.custom_cycles, r.baseline_cycles);
}

#[test]
fn explore_exhaust_degrades_to_empty_analysis() {
    let r = run_with_fault(Stage::Explore, FaultKind::Exhaust);
    assert_has(
        &r.analysis_degradations,
        Stage::Explore,
        DegradationKind::BudgetExhausted,
    );
    let d = &r.analysis_degradations[0];
    assert!(
        d.detail.contains("fault-injected exhaustion"),
        "detail should mark the injection: {d}"
    );
    assert_eq!(d.units_spent, 0, "a forced exhaustion spends nothing");
}

#[test]
fn select_panic_falls_back_to_baseline_isa() {
    let r = run_with_fault(Stage::Select, FaultKind::Panic);
    assert_has(
        &r.select_degradations,
        Stage::Select,
        DegradationKind::Panicked,
    );
    assert_eq!(
        r.chosen, 0,
        "a panicked selection must yield the empty selection"
    );
    assert_eq!(r.custom_cycles, r.baseline_cycles);
}

#[test]
fn select_exhaust_keeps_empty_prefix() {
    let r = run_with_fault(Stage::Select, FaultKind::Exhaust);
    assert_has(
        &r.select_degradations,
        Stage::Select,
        DegradationKind::BudgetExhausted,
    );
    assert!(
        r.select_degradations[0]
            .detail
            .contains("fault-injected exhaustion"),
        "detail should mark the injection: {:?}",
        r.select_degradations
    );
    assert_eq!(
        r.chosen, 0,
        "exhaustion before the first candidate keeps none"
    );
}

#[test]
fn match_panic_is_contained_and_output_stays_sound() {
    let r = run_with_fault(Stage::Match, FaultKind::Panic);
    assert!(
        r.chosen > 0,
        "precondition: selection must feed the matcher"
    );
    assert_has(
        &r.compile_degradations,
        Stage::Match,
        DegradationKind::Panicked,
    );
    assert!(r.custom_cycles <= r.baseline_cycles);
}

#[test]
fn match_exhaust_keeps_sound_match_prefix() {
    let r = run_with_fault(Stage::Match, FaultKind::Exhaust);
    assert!(
        r.chosen > 0,
        "precondition: selection must feed the matcher"
    );
    assert_has(
        &r.compile_degradations,
        Stage::Match,
        DegradationKind::BudgetExhausted,
    );
    assert!(
        r.compile_degradations
            .iter()
            .any(|d| d.detail.contains("fault-injected exhaustion")),
        "detail should mark the injection: {:?}",
        r.compile_degradations
    );
    assert!(r.custom_cycles <= r.baseline_cycles);
}

#[test]
fn schedule_panic_reschedules_the_function_sequentially() {
    let r = run_with_fault(Stage::Schedule, FaultKind::Panic);
    assert_has(
        &r.compile_degradations,
        Stage::Schedule,
        DegradationKind::Panicked,
    );
    // check = true already validated the sequential fallback schedule;
    // the cycle estimate may be worse than the list schedule but must
    // still be finite and the run must have completed.
    assert!(r.custom_cycles > 0);
}

#[test]
fn schedule_exhaust_reschedules_the_function_sequentially() {
    let r = run_with_fault(Stage::Schedule, FaultKind::Exhaust);
    assert_has(
        &r.compile_degradations,
        Stage::Schedule,
        DegradationKind::BudgetExhausted,
    );
    assert!(
        r.compile_degradations
            .iter()
            .any(|d| d.detail.contains("fault-injected exhaustion")),
        "detail should mark the injection: {:?}",
        r.compile_degradations
    );
    assert!(r.custom_cycles > 0);
}

/// The fault hook is present in every build but must be inert when no
/// plan is configured: a guard with no fault and no budget takes the
/// legacy code paths and reports nothing.
#[test]
fn unconfigured_fault_hook_is_inert() {
    let program = kernel();
    let mut cz = Customizer::new();
    cz.check = true;
    assert!(!cz.guard.is_active(), "default guard must be inactive");
    let analysis = cz.analyze(&program);
    let (mdes, sel) = cz.select("fi_kernel", &analysis, 15.0);
    let ev = cz.evaluate(&program, &mdes, MatchOptions::exact());
    assert!(analysis.degradations.is_empty());
    assert!(sel.degradations.is_empty());
    assert!(ev.compiled.degradations.is_empty());
}
