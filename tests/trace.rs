//! Tentpole guarantees of the `isax-trace` observability layer:
//!
//! 1. **Determinism safety** — enabling tracing must not change a single
//!    byte of any compared artifact (MDES JSON, customized program text,
//!    cycle counts). Counters are fed from statistics aggregated at
//!    parallel join points in input order, and wall-clock timing never
//!    enters an artifact, so enabled-vs-disabled runs must be identical.
//! 2. **Structural validity** — the Chrome `trace_event` export must be
//!    well-formed JSON of the shape chrome://tracing and Perfetto load:
//!    a `traceEvents` array of `X` (complete span), `C` (counter) and
//!    `M` (thread-name metadata) events with the required fields.
//! 3. **CLI plumbing** — `isax customize --trace-out t.json` writes such
//!    a file next to its normal outputs.
//!
//! The trace sink is process-global, so every test here serializes on
//! one lock; artifact byte-comparison is unaffected either way (that is
//! the point of guarantee 1), but "recorder saw my events" assertions
//! would race without it.

use isax::{Customizer, MatchOptions};
use isax_trace::Recorder;
use std::sync::Mutex;

static TEST_LOCK: Mutex<()> = Mutex::new(());

/// The three kernels of the differential: small enough for debug-mode
/// CI, and together they exercise both parallel fan-out shapes (multi-
/// function programs and single hot loops).
const KERNELS: [&str; 3] = ["crc", "rawcaudio", "rawdaudio"];

/// Everything a run produces that other tooling diffs byte-for-byte.
#[derive(PartialEq, Debug)]
struct Artifacts {
    mdes_json: String,
    program_text: String,
    baseline_cycles: u64,
    custom_cycles: u64,
    vf2_calls: u64,
}

/// The CLI's `--emit` text form: functions in the `Display` assembly
/// format, joined by blank separators.
fn program_text(p: &isax_ir::Program) -> String {
    p.functions
        .iter()
        .map(|f| f.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

fn run_pipeline(name: &str) -> Artifacts {
    let cz = Customizer::new();
    let w = isax_workloads::by_name(name).unwrap_or_else(|| panic!("unknown workload {name}"));
    let analysis = cz.analyze(&w.program);
    let (mdes, _) = cz.select(name, &analysis, 6.0);
    let ev = cz.evaluate(&w.program, &mdes, MatchOptions::with_subsumed());
    Artifacts {
        mdes_json: mdes.to_json().expect("mdes serializes"),
        program_text: program_text(&ev.compiled.program),
        baseline_cycles: ev.baseline_cycles,
        custom_cycles: ev.custom_cycles,
        vf2_calls: ev.compiled.match_stats.vf2_calls,
    }
}

#[test]
fn tracing_is_invisible_in_every_compared_artifact() {
    let _guard = TEST_LOCK.lock().unwrap();
    for name in KERNELS {
        let disabled = run_pipeline(name);

        let rec = Recorder::install();
        let enabled = run_pipeline(name);
        isax_trace::uninstall();

        assert_eq!(
            disabled, enabled,
            "{name}: enabling tracing changed a compared artifact"
        );
        let events = rec.events();
        assert!(
            !events.is_empty(),
            "{name}: the enabled run recorded nothing — the pipeline is not wired"
        );
        // The recorder's own counter sums must agree with the pipeline's
        // deterministic statistics: the trace reports real work, it does
        // not sample it.
        assert_eq!(
            rec.counter_total("match.vf2_calls"),
            enabled.vf2_calls,
            "{name}: trace counter diverges from the matcher's own stats"
        );
        assert!(
            events.iter().any(|e| matches!(
                e,
                isax_trace::Event::Span { name, .. } if *name == "pipeline.analyze"
            )),
            "{name}: no pipeline.analyze span"
        );
        // Deriving the latency histogram and the folded stacks from
        // the recorded events is read-only and deterministic — the
        // artifact comparison above already proved recording them
        // changed nothing.
        let mut h = isax_trace::Hist::new();
        let mut spans = 0u64;
        for e in &events {
            if let isax_trace::Event::Span { dur_us, .. } = e {
                h.record(*dur_us);
                spans += 1;
            }
        }
        assert_eq!(h.count(), spans, "{name}: histogram loses span samples");
        assert!(spans > 0 && h.quantile(0.5) <= h.max());
        let folded = rec.folded_stacks();
        assert!(!folded.is_empty(), "{name}: no folded stacks");
        assert_eq!(
            folded,
            rec.folded_stacks(),
            "{name}: folded export not deterministic"
        );
    }
}

/// Folded-stack export: any traced run yields inferno-compatible
/// `path value` lines, rooted at thread tracks, with one aggregated
/// line per distinct stack.
#[test]
fn folded_stacks_export_is_inferno_compatible() {
    let _guard = TEST_LOCK.lock().unwrap();
    let rec = Recorder::install();
    let _ = run_pipeline("crc");
    isax_trace::uninstall();
    let folded = rec.folded_stacks();
    assert!(!folded.is_empty(), "traced run must yield folded stacks");
    let mut seen = std::collections::HashSet::new();
    for line in folded.lines() {
        let (path, value) = line.rsplit_once(' ').expect("`path value` line shape");
        assert!(!path.is_empty(), "empty stack path");
        value
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("value must be integer microseconds: {line}"));
        let root = path.split(';').next().unwrap();
        assert!(
            root == "main" || root.starts_with("worker-"),
            "stack must be rooted at a thread track: {root}"
        );
        assert!(
            seen.insert(path.to_string()),
            "stacks must be aggregated; duplicate path {path}"
        );
    }
    assert!(
        folded.lines().any(|l| l.contains("pipeline.analyze")),
        "pipeline spans must appear in the stacks"
    );
}

/// Walks a parsed Chrome trace and asserts the invariants every
/// trace_event consumer relies on.
fn assert_valid_chrome_trace(doc: &isax_json::Value) {
    assert_eq!(
        doc.get("displayTimeUnit").and_then(|v| v.as_str()),
        Some("ms"),
        "displayTimeUnit must be present"
    );
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty(), "empty traceEvents");
    let (mut spans, mut counters, mut metas) = (0usize, 0usize, 0usize);
    for e in events {
        let ph = e.get("ph").and_then(|v| v.as_str()).expect("ph field");
        assert!(e.get("pid").and_then(|v| v.as_u64()).is_some(), "pid");
        match ph {
            "X" => {
                spans += 1;
                for field in ["name", "ts", "dur", "tid"] {
                    assert!(e.get(field).is_some(), "X event missing {field}");
                }
            }
            "C" => {
                counters += 1;
                assert!(e.get("name").is_some(), "C event missing name");
                assert!(
                    e.get("args").and_then(|a| a.as_object()).is_some(),
                    "C event needs an args object with the running total"
                );
            }
            "M" => {
                metas += 1;
                assert_eq!(
                    e.get("name").and_then(|v| v.as_str()),
                    Some("thread_name"),
                    "only thread_name metadata is emitted"
                );
            }
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    assert!(spans > 0, "no X span events");
    assert!(counters > 0, "no C counter events");
    assert!(metas > 0, "no M thread_name events");
}

#[test]
fn chrome_export_is_structurally_valid() {
    let _guard = TEST_LOCK.lock().unwrap();
    let rec = Recorder::install();
    let _ = run_pipeline("crc");
    isax_trace::uninstall();
    let text = rec.chrome_trace();
    let doc = isax_json::parse(&text).expect("chrome trace parses as JSON");
    assert_valid_chrome_trace(&doc);
}

#[test]
fn cli_trace_out_writes_a_valid_chrome_trace() {
    let _guard = TEST_LOCK.lock().unwrap();
    let dir = std::env::temp_dir().join(format!("isax-trace-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let kernel = dir.join("crc.isax");
    let mdes_out = dir.join("mdes.json");
    let trace_out = dir.join("trace.json");
    let w = isax_workloads::by_name("crc").unwrap();
    std::fs::write(&kernel, program_text(&w.program)).unwrap();

    let cmd = isax_cli::Command::Customize {
        file: kernel.display().to_string(),
        budget: 6.0,
        name: "crc".into(),
        out: Some(mdes_out.display().to_string()),
        multifunction: false,
        check: false,
        trace_out: Some(trace_out.display().to_string()),
        work_budget: None,
        prov_out: None,
        beam_width: None,
        width_aware: false,
    };
    let mut out = Vec::new();
    isax_cli::execute(&cmd, &mut out).expect("customize succeeds");
    let stdout = String::from_utf8(out).unwrap();
    assert!(
        stdout.contains("chrome trace written to"),
        "CLI should announce the trace file: {stdout}"
    );

    let text = std::fs::read_to_string(&trace_out).expect("trace file written");
    let doc = isax_json::parse(&text).expect("trace file parses as JSON");
    assert_valid_chrome_trace(&doc);
    assert!(mdes_out.exists(), "normal output still written");
    let _ = std::fs::remove_dir_all(&dir);
}
