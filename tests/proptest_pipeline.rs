//! Property-based fuzzing of the entire customization pipeline.
//!
//! Random programs (arbitrary opcode mixes, shared registers,
//! immediates, loads/stores with conservative ordering, loops) are
//! customized at random budgets; the rewritten program must verify and
//! must compute exactly what the original computes on random inputs.

use isax::{Customizer, MatchOptions};
use isax_ir::{FunctionBuilder, Opcode, Program, VReg};
use isax_machine::{run, Memory};
use proptest::prelude::*;

/// Opcodes the generator draws from (everything the interpreter defines,
/// minus custom).
const OPS: [Opcode; 24] = [
    Opcode::Add,
    Opcode::Sub,
    Opcode::Mul,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::AndN,
    Opcode::Not,
    Opcode::Shl,
    Opcode::Shr,
    Opcode::Sar,
    Opcode::Ror,
    Opcode::Eq,
    Opcode::Ne,
    Opcode::Lt,
    Opcode::Ltu,
    Opcode::Ge,
    Opcode::Geu,
    Opcode::Select,
    Opcode::Mov,
    Opcode::SxtB,
    Opcode::ZxtH,
    Opcode::LdW,
    Opcode::StW,
];

#[derive(Debug, Clone)]
struct GenInst {
    op_idx: usize,
    src_picks: [usize; 3],
    imm: i64,
    use_imm: bool,
}

fn gen_inst() -> impl Strategy<Value = GenInst> {
    (
        0..OPS.len(),
        [0..64usize, 0..64usize, 0..64usize],
        -64i64..64i64,
        any::<bool>(),
    )
        .prop_map(|(op_idx, src_picks, imm, use_imm)| GenInst {
            op_idx,
            src_picks,
            imm,
            use_imm,
        })
}

/// Builds a one-block program from the generated instruction recipe.
/// Register operands are drawn from the pool of previously defined
/// registers (so dataflow chains form), plus the four parameters.
fn build_program(insts: &[GenInst]) -> Program {
    let mut fb = FunctionBuilder::new("fuzz", 4);
    fb.set_entry_weight(1_000);
    let mut pool: Vec<VReg> = (0..4).map(|i| fb.param(i)).collect();
    for g in insts {
        let op = OPS[g.op_idx];
        let pick = |k: usize, pool: &[VReg]| pool[g.src_picks[k] % pool.len()];
        let r0 = pick(0, &pool);
        let r1 = pick(1, &pool);
        let r2 = pick(2, &pool);
        let d = match op {
            Opcode::Select => Some(fb.select(r0, r1, r2)),
            Opcode::StW => {
                // Keep stores in a small window so loads can observe them.
                let addr = fb.and(r0, 0xFCi64);
                fb.stw(addr, r1);
                Some(addr)
            }
            Opcode::LdW => {
                let addr = fb.and(r0, 0xFCi64);
                Some(fb.ldw(addr))
            }
            op if op.arity() == 1 => Some(match op {
                Opcode::Not => fb.not_(r0),
                Opcode::Mov => fb.mov(r0),
                Opcode::SxtB => fb.sxtb(r0),
                Opcode::ZxtH => fb.zxth(r0),
                _ => unreachable!(),
            }),
            _ => {
                // Binary op, optionally with an immediate second operand.
                let second: isax_ir::Operand = if g.use_imm { g.imm.into() } else { r1.into() };
                Some(match op {
                    Opcode::Add => fb.add(r0, second),
                    Opcode::Sub => fb.sub(r0, second),
                    Opcode::Mul => fb.mul(r0, second),
                    Opcode::And => fb.and(r0, second),
                    Opcode::Or => fb.or(r0, second),
                    Opcode::Xor => fb.xor(r0, second),
                    Opcode::AndN => fb.andn(r0, second),
                    Opcode::Shl => fb.shl(r0, second),
                    Opcode::Shr => fb.shr(r0, second),
                    Opcode::Sar => fb.sar(r0, second),
                    Opcode::Ror => fb.ror(r0, second),
                    Opcode::Eq => fb.eq(r0, second),
                    Opcode::Ne => fb.ne(r0, second),
                    Opcode::Lt => fb.lt(r0, second),
                    Opcode::Ltu => fb.ltu(r0, second),
                    Opcode::Ge => fb.ge(r0, second),
                    Opcode::Geu => fb.geu(r0, second),
                    _ => unreachable!(),
                })
            }
        };
        if let Some(d) = d {
            pool.push(d);
        }
    }
    // Return the last four defined values: plenty of live-outs.
    let rets: Vec<isax_ir::Operand> = pool.iter().rev().take(4).map(|&r| r.into()).collect();
    fb.ret(&rets);
    Program::new(vec![fb.finish()])
}

proptest! {
    #![proptest_config(ProptestConfig::with_env_cases(96))]

    #[test]
    fn customization_preserves_semantics(
        insts in proptest::collection::vec(gen_inst(), 3..40),
        budget in 0.5f64..20.0,
        args in proptest::array::uniform4(any::<u32>()),
        subsumed in any::<bool>(),
        wildcard in any::<bool>(),
    ) {
        let p = build_program(&insts);
        prop_assert!(isax_ir::verify_program(&p).is_ok());
        let cz = Customizer::new();
        let (mdes, _) = cz.customize("fuzz", &p, budget);
        let matching = MatchOptions {
            mode: if wildcard { isax::MatchMode::Wildcard } else { isax::MatchMode::Exact },
            allow_subsumed: subsumed,
        };
        let ev = cz.evaluate(&p, &mdes, matching);
        prop_assert!(isax_ir::verify_program(&ev.compiled.program).is_ok());
        prop_assert!(ev.custom_cycles <= ev.baseline_cycles,
            "custom instructions never slow the estimate");

        let mut mem_a = Memory::new();
        let mut mem_b = Memory::new();
        let a = run(&p, "fuzz", &args, &mut mem_a, 1_000_000).unwrap();
        let b = run(&ev.compiled.program, "fuzz", &args, &mut mem_b, 1_000_000).unwrap();
        prop_assert_eq!(a.ret, b.ret, "outputs must not change");
        prop_assert_eq!(mem_a, mem_b, "memory must not change");
    }

    #[test]
    fn exploration_is_deterministic(
        insts in proptest::collection::vec(gen_inst(), 3..25),
    ) {
        let p = build_program(&insts);
        let cz = Customizer::new();
        let a1 = cz.analyze(&p);
        let a2 = cz.analyze(&p);
        prop_assert_eq!(a1.stats.examined, a2.stats.examined);
        prop_assert_eq!(a1.cfus.len(), a2.cfus.len());
        let (m1, _) = cz.select("fuzz", &a1, 10.0);
        let (m2, _) = cz.select("fuzz", &a2, 10.0);
        prop_assert_eq!(m1.to_json().unwrap(), m2.to_json().unwrap());
    }
}
