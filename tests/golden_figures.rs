//! Golden-file regression tests for the paper-figure renderers.
//!
//! Each test renders a small-kernel edition of a paper table through
//! the exact code path the `isax-bench` binaries use
//! (`isax_bench::figures`) and byte-compares it against a checked-in
//! snapshot under `tests/golden/`. Any change to exploration order,
//! selection tie-breaking, matching, scheduling, or table formatting
//! shows up as a diff here before it silently rewrites the paper
//! figures.
//!
//! To bless intentional changes, rerun with `ISAX_BLESS=1` and commit
//! the regenerated snapshots together with the code change.

use isax::Customizer;
use isax_bench::{analyze_subset, figures};
use std::path::PathBuf;

/// The small-kernel cast: cheap enough for debug-mode CI while still
/// covering three domains' worth of distinct DFG shapes.
const KERNELS: [&str; 3] = ["crc", "rawcaudio", "rawdaudio"];
const BUDGETS: [f64; 3] = [2.0, 6.0, 10.0];

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Byte-for-byte comparison against `tests/golden/<name>`, or a
/// regeneration pass when `ISAX_BLESS=1`.
fn check_golden(name: &str, rendered: &str) {
    let path = golden_path(name);
    if std::env::var("ISAX_BLESS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\nrun with ISAX_BLESS=1 to generate the snapshot",
            path.display()
        )
    });
    assert!(
        expected == rendered,
        "{name} drifted from its golden snapshot.\n\
         If the change is intentional, rerun with ISAX_BLESS=1 and commit \
         the new snapshot.\n--- golden ---\n{expected}\n--- rendered ---\n{rendered}",
    );
}

/// The per-domain speedup panel over a cheap cross-domain cast: one
/// paper kernel, two curated kernels per new domain, and one freshly
/// generated mixed kernel (regenerated from its recipe, so the table is
/// fully deterministic).
#[test]
fn domain_speedup_table_is_stable() {
    let cz = Customizer::new();
    let mut kernels: Vec<(String, &'static str, isax_ir::Program)> = vec![(
        "crc".to_string(),
        "paper",
        isax_workloads::by_name("crc").unwrap().program,
    )];
    for name in ["dijkstra_relax", "prim_minedge", "fir8", "crc_brev"] {
        let k = isax_gen::curated_by_name(name).unwrap();
        kernels.push((
            k.name.to_string(),
            k.domain,
            isax_ir::parse_program(&(k.text)()).unwrap(),
        ));
    }
    let cfg = isax_gen::GenConfig {
        seed: 1,
        domain: isax_gen::GenDomain::Mixed,
        blocks: 12,
    };
    kernels.push((
        cfg.entry_name(),
        "gen",
        isax_ir::parse_program(&isax_gen::generate(&cfg)).unwrap(),
    ));
    let table =
        figures::domain_speedup_table("Per-domain speedups (golden edition)", &cz, &kernels, 8.0);
    check_golden("domain_speedups.txt", &table);
}

#[test]
fn figure3_guided_vs_exponential_is_stable() {
    let w = isax_workloads::by_name("crc").unwrap();
    let table = figures::figure3_table(
        "Figure 3 (golden edition) — candidates examined for crc",
        &w.program,
        &[2, 4, 6],
        Some(50_000),
    );
    check_golden("figure3_crc.txt", &table);
}

#[test]
fn figure7_and_figure8_9_speedup_tables_are_stable() {
    let cz = Customizer::new();
    let suite = analyze_subset(&cz, &KERNELS);

    let native = figures::figure7_native_table(
        "Figure 7 (golden edition) — native speedups",
        &cz,
        &suite,
        &KERNELS,
        &BUDGETS,
    );
    check_golden("figure7_native.txt", &native);

    let cross = figures::figure7_cross_table(
        "Figure 7 (golden edition) — cross speedups",
        &cz,
        &suite,
        &KERNELS,
        &BUDGETS,
    );
    check_golden("figure7_cross.txt", &cross);

    let bars = figures::figure8_9_table(
        "Figures 8/9 (golden edition) — generalization bars",
        &cz,
        &suite,
        &KERNELS,
        8.0,
    );
    check_golden("figure8_9.txt", &bars);
}

/// The Prometheus text renderer behind `isax serve`'s `metrics`
/// request, pinned byte-for-byte: section split, HELP/TYPE comments,
/// label rendering, float formatting, and cumulative histogram buckets
/// with exact `_sum`/`_count`. Fed with fixed values so the snapshot is
/// fully deterministic.
#[test]
fn metrics_exposition_renderer_is_stable() {
    use isax_trace::{Expo, Hist, Section};
    let mut h = Hist::new();
    for v in [0, 1, 2, 3, 5, 8, 13, 100, 1000, 65_536, 1_000_000] {
        h.record(v);
    }
    let mut e = Expo::new();
    e.counter(
        Section::Deterministic,
        "isax_requests_total",
        "Requests received",
        42,
    );
    e.counter_by_label(
        Section::Deterministic,
        "isax_errors_total",
        "Errors by code",
        "code",
        &[("busy", 2), ("parse-error", 0)],
    );
    e.hist(
        Section::Deterministic,
        "isax_admitted_units",
        "Admitted work units",
        &h,
    );
    e.gauge(Section::WallClock, "isax_inflight", "Requests in flight", 3);
    e.gauge_f64(Section::WallClock, "isax_uptime_seconds", "Uptime", 12.5);
    e.hist(Section::WallClock, "isax_e2e_us", "End-to-end latency", &h);
    check_golden("metrics_expo.txt", &e.render());
}
