//! The guard's headline contract: a work-unit budget truncates the SAME
//! work at any thread count.
//!
//! Budgets are counted (candidates examined, VF2 states visited,
//! scheduler steps), never timed, and every parallel work item carries
//! its own meter — so where a budget lands is a pure function of the
//! input and the budget, not of scheduling. This test runs three stress
//! kernels under a tight budget serially and at four threads and
//! requires byte-identical MDES JSON, byte-identical emitted assembly,
//! identical cycle estimates, and identical degradation reports.
//!
//! Single `#[test]` on purpose: `set_thread_override` is process-global,
//! so the serial and parallel runs must not interleave with each other
//! (or with another test doing the same).

use isax::{Customizer, Guard, MatchOptions};
use isax_graph::par;
use isax_ir::parse_program;

const BUDGET: u64 = 15_000;
const KERNELS: [&str; 3] = ["deep_chain", "dense_clique", "mem_alu_ladder"];

/// Every deterministic artifact of one governed pipeline run, rendered
/// to bytes for exact comparison.
struct Artifacts {
    mdes_json: String,
    assembly: String,
    custom_cycles: u64,
    degradations: Vec<String>,
}

fn run(kernel: &str) -> Artifacts {
    let path = format!(
        "{}/kernels/stress/{kernel}.isax",
        env!("CARGO_MANIFEST_DIR")
    );
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    let program = parse_program(&text).unwrap_or_else(|e| panic!("{path}: {e}"));

    let mut cz = Customizer::new();
    cz.guard = Guard::unlimited().with_units(BUDGET);
    let analysis = cz.analyze(&program);
    let (mdes, sel) = cz.select(kernel, &analysis, 15.0);
    let ev = cz.evaluate(&program, &mdes, MatchOptions::exact());

    let mut degradations: Vec<String> = analysis
        .degradations
        .iter()
        .map(|d| d.to_string())
        .collect();
    degradations.extend(sel.degradations.iter().map(|d| d.to_string()));
    degradations.extend(ev.compiled.degradations.iter().map(|d| d.to_string()));

    Artifacts {
        mdes_json: mdes.to_json().expect("mdes serializes"),
        assembly: ev
            .compiled
            .program
            .functions
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n"),
        custom_cycles: ev.custom_cycles,
        degradations,
    }
}

#[test]
fn budget_truncation_is_identical_across_thread_counts() {
    for kernel in KERNELS {
        par::set_thread_override(Some(1));
        let serial = run(kernel);
        par::set_thread_override(Some(4));
        let parallel = run(kernel);
        par::set_thread_override(None);

        assert!(
            !serial.degradations.is_empty(),
            "{kernel}: the {BUDGET}-unit budget must bite for this test to mean anything"
        );
        assert_eq!(
            serial.degradations, parallel.degradations,
            "{kernel}: degradation records diverged between 1 and 4 threads"
        );
        assert_eq!(
            serial.mdes_json, parallel.mdes_json,
            "{kernel}: MDES JSON diverged between 1 and 4 threads"
        );
        assert_eq!(
            serial.assembly, parallel.assembly,
            "{kernel}: emitted assembly diverged between 1 and 4 threads"
        );
        assert_eq!(
            serial.custom_cycles, parallel.custom_cycles,
            "{kernel}: cycle estimate diverged between 1 and 4 threads"
        );
    }
}
