//! The serve-vs-CLI differential suite.
//!
//! `isax serve` claims that a concurrent, cached, long-running server
//! returns **byte-identical artifacts** to the one-shot serial CLI.
//! This suite is that claim's proof:
//!
//! * for every paper workload and every curated kernel, the MDES,
//!   provenance report and customized assembly served by a 4-client
//!   concurrent server equal the bytes `isax customize` / `isax
//!   compile` write for the same request;
//! * a cold miss and the warm hit that follows return identical bytes
//!   (and the hit is actually served from cache);
//! * malformed, oversized and truncated frames produce structured
//!   errors and never kill the server;
//! * budget-exhausted requests degrade exactly like the governed CLI —
//!   sound artifacts plus intact `Degradation` records.
//!
//! Tests share one process, and the server enables the global
//! provenance flag for its lifetime, so every test serializes on
//! `TEST_LOCK` (the same discipline as `tests/trace.rs`).

use isax_serve::{Client, EnvMode, ErrorCode, Reply, Request, ServeConfig, Server};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

static TEST_LOCK: Mutex<()> = Mutex::new(());

/// The CLI's `--emit` text form: functions in the `Display` assembly
/// format, joined by blank separators.
fn program_text(p: &isax_ir::Program) -> String {
    p.functions
        .iter()
        .map(|f| f.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

/// Every paper workload plus every curated kernel, as (name, source).
fn corpus() -> Vec<(String, String)> {
    let mut kernels: Vec<(String, String)> = isax_workloads::all()
        .into_iter()
        .map(|w| (w.name.to_string(), program_text(&w.program)))
        .collect();
    for k in isax_gen::curated() {
        kernels.push((k.name.to_string(), (k.text)()));
    }
    kernels
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("isax-serve-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// What the serial CLI produces for one kernel at one configuration.
struct CliRef {
    mdes: String,
    customize_prov: String,
    assembly: String,
    compile_prov: String,
}

/// Runs `isax customize` then `isax compile --emit` through the CLI
/// library (the exact code path of the binary) and collects the four
/// artifacts' bytes.
fn cli_reference(dir: &Path, name: &str, text: &str, budget: f64, work: Option<u64>) -> CliRef {
    let kernel = dir.join(format!("{name}.isax"));
    let mdes_path = dir.join(format!("{name}.mdes.json"));
    let cprov_path = dir.join(format!("{name}.customize.prov.json"));
    let asm_path = dir.join(format!("{name}.out.isax"));
    let kprov_path = dir.join(format!("{name}.compile.prov.json"));
    std::fs::write(&kernel, text).unwrap();
    let mut out = Vec::new();
    isax_cli::execute(
        &isax_cli::Command::Customize {
            file: kernel.display().to_string(),
            budget,
            name: name.into(),
            out: Some(mdes_path.display().to_string()),
            multifunction: false,
            check: false,
            trace_out: None,
            work_budget: work,
            prov_out: Some(cprov_path.display().to_string()),
            beam_width: None,
            width_aware: false,
        },
        &mut out,
    )
    .expect("CLI customize succeeds");
    isax_cli::execute(
        &isax_cli::Command::Compile {
            file: kernel.display().to_string(),
            mdes: mdes_path.display().to_string(),
            subsumed: false,
            wildcard: false,
            emit: Some(asm_path.display().to_string()),
            check: false,
            trace_out: None,
            work_budget: work,
            prov_out: Some(kprov_path.display().to_string()),
        },
        &mut out,
    )
    .expect("CLI compile succeeds");
    CliRef {
        mdes: std::fs::read_to_string(&mdes_path).unwrap(),
        customize_prov: std::fs::read_to_string(&cprov_path).unwrap(),
        assembly: std::fs::read_to_string(&asm_path).unwrap(),
        compile_prov: std::fs::read_to_string(&kprov_path).unwrap(),
    }
}

fn customize_request(name: &str, text: &str, work: Option<u64>) -> Request {
    Request::Customize {
        kernel: text.to_string(),
        name: name.to_string(),
        budget: 15.0,
        multifunction: false,
        work_budget: work,
    }
}

fn compile_request(name: &str, text: &str, mdes: &str, work: Option<u64>) -> Request {
    Request::Compile {
        kernel: text.to_string(),
        name: name.to_string(),
        mdes: mdes.to_string(),
        subsumed: false,
        wildcard: false,
        work_budget: work,
    }
}

/// The headline test: 4 concurrent clients sweep every paper + curated
/// kernel through a shared server; every artifact byte must equal the
/// serial CLI's, cold misses must fill the cache, and warm hits (served
/// to *different* clients) must be byte-identical to the cold copies.
#[test]
fn concurrent_server_matches_serial_cli_on_all_kernels() {
    let _guard = TEST_LOCK.lock().unwrap();
    let dir = scratch_dir("diff");
    let kernels = corpus();
    assert!(kernels.len() >= 19, "13 paper + 6 curated kernels");

    // Phase 1: serial CLI references (the provenance enable guard
    // inside the CLI must not overlap the server's, so all CLI work
    // happens before the server starts).
    let refs: Vec<CliRef> = kernels
        .iter()
        .map(|(name, text)| cli_reference(&dir, name, text, 15.0, None))
        .collect();

    // Phase 2: one server, 4 concurrent clients, each client owns a
    // quarter of the corpus (cold), then re-requests a *different*
    // client's quarter (warm).
    let server = Server::spawn(ServeConfig {
        workers: 4,
        stats: EnvMode::Off,
        ..ServeConfig::default()
    })
    .expect("server spawns");
    let addr = server.addr();
    let n_clients = 4;
    std::thread::scope(|scope| {
        let kernels = &kernels;
        let refs = &refs;
        let handles: Vec<_> = (0..n_clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("client connects");
                    // Cold pass over this client's quarter.
                    for i in (c..kernels.len()).step_by(n_clients) {
                        let (name, text) = &kernels[i];
                        let (cached, art) = client
                            .artifacts(customize_request(name, text, None))
                            .unwrap_or_else(|e| panic!("{name}: customize failed: {e}"));
                        assert!(!cached, "{name}: first customize must be a cold miss");
                        assert_eq!(
                            art.mdes.as_deref(),
                            Some(refs[i].mdes.as_str()),
                            "{name}: MDES differs from CLI"
                        );
                        assert_eq!(
                            art.prov.as_deref(),
                            Some(refs[i].customize_prov.as_str()),
                            "{name}: customize prov report differs from CLI"
                        );
                        assert!(art.degraded.is_empty(), "{name}: ungoverned run degraded");
                        let (cached, art) = client
                            .artifacts(compile_request(name, text, &refs[i].mdes, None))
                            .unwrap_or_else(|e| panic!("{name}: compile failed: {e}"));
                        assert!(!cached, "{name}: first compile must be a cold miss");
                        assert_eq!(
                            art.assembly.as_deref(),
                            Some(refs[i].assembly.as_str()),
                            "{name}: assembly differs from CLI"
                        );
                        assert_eq!(
                            art.prov.as_deref(),
                            Some(refs[i].compile_prov.as_str()),
                            "{name}: compile prov report differs from CLI"
                        );
                        assert!(art.baseline_cycles.is_some() && art.custom_cycles.is_some());
                    }
                    (c, client)
                })
            })
            .collect();
        let mut clients: Vec<(usize, Client)> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Warm pass: each client replays the next client's quarter.
        for (c, client) in clients.iter_mut() {
            let c = (*c + 1) % n_clients;
            for i in (c..kernels.len()).step_by(n_clients) {
                let (name, text) = &kernels[i];
                let (cached, art) = client
                    .artifacts(customize_request(name, text, None))
                    .unwrap_or_else(|e| panic!("{name}: warm customize failed: {e}"));
                assert!(cached, "{name}: repeat customize must hit the cache");
                assert_eq!(
                    art.mdes.as_deref(),
                    Some(refs[i].mdes.as_str()),
                    "{name}: warm MDES differs from cold/CLI"
                );
                assert_eq!(art.prov.as_deref(), Some(refs[i].customize_prov.as_str()));
            }
        }
    });

    // Phase 3: stats reflect the workload, then graceful shutdown.
    let mut client = Client::connect(addr).expect("stats client connects");
    let resp = client.request(Request::Stats).expect("stats succeeds");
    let Reply::Stats(stats) = resp.reply else {
        panic!("expected stats reply, got {:?}", resp.reply);
    };
    let cache = stats.get("cache").expect("stats.cache");
    assert_eq!(
        cache.get("entries").and_then(|v| v.as_u64()),
        Some(2 * kernels.len() as u64),
        "one customize + one compile entry per kernel"
    );
    let hits = cache.get("hits").and_then(|v| v.as_u64()).unwrap();
    assert_eq!(hits, kernels.len() as u64, "one warm hit per kernel");
    assert!(cache.get("hit_rate").and_then(|v| v.as_f64()).unwrap() > 0.0);
    let requests = stats.get("requests").expect("stats.requests");
    assert_eq!(requests.get("errors").and_then(|v| v.as_u64()), Some(0));
    assert!(stats.get("queue").and_then(|q| q.get("depth")).is_some());
    assert!(
        stats
            .get("latency_us")
            .and_then(|l| l.get("analyze"))
            .and_then(|a| a.get("count"))
            .and_then(|v| v.as_u64())
            .unwrap_or(0)
            >= kernels.len() as u64,
        "per-stage latency must cover every cold analyze"
    );
    let resp = client.request(Request::Shutdown).expect("shutdown ack");
    assert_eq!(resp.reply, Reply::Shutdown);
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Malformed, unknown, oversized and truncated frames each produce a
/// structured error — and the server keeps serving real work after
/// every one of them.
#[test]
fn protocol_errors_are_structured_and_nonfatal() {
    let _guard = TEST_LOCK.lock().unwrap();
    let server = Server::spawn(ServeConfig {
        workers: 1,
        max_frame_bytes: 64 * 1024,
        stats: EnvMode::Off,
        ..ServeConfig::default()
    })
    .expect("server spawns");
    let addr = server.addr();
    let mut client = Client::connect(addr).unwrap();

    let expect_error = |resp: Result<isax_serve::Response, isax_serve::WireError>,
                        code: ErrorCode| {
        let resp = resp.expect("transport survives");
        match resp.reply {
            Reply::Error(e) => assert_eq!(e.code, code, "unexpected error: {e}"),
            other => panic!("expected {code:?} error, got {other:?}"),
        }
    };

    // Not JSON at all.
    expect_error(
        client.send_raw("this is not json"),
        ErrorCode::MalformedFrame,
    );
    // JSON, but not a request object.
    expect_error(client.send_raw("[1,2,3]"), ErrorCode::BadRequest);
    expect_error(client.send_raw("{\"id\":9}"), ErrorCode::BadRequest);
    // Unknown request kind; the id still echoes back.
    let resp = client
        .send_raw("{\"req\":\"frobnicate\",\"id\":7}")
        .expect("transport survives");
    assert_eq!(resp.id, 7);
    assert!(matches!(resp.reply, Reply::Error(ref e) if e.code == ErrorCode::BadRequest));
    // Missing required fields.
    expect_error(
        client.send_raw("{\"req\":\"customize\",\"id\":1}"),
        ErrorCode::BadRequest,
    );
    // Kernel text that is not IR.
    expect_error(
        client.request(Request::Customize {
            kernel: "function { nope".into(),
            name: "x".into(),
            budget: 15.0,
            multifunction: false,
            work_budget: None,
        }),
        ErrorCode::ParseError,
    );
    // An MDES that is not an MDES.
    expect_error(
        client.request(Request::Compile {
            kernel: corpus()[0].1.clone(),
            name: "x".into(),
            mdes: "{\"not\":\"an mdes\"}".into(),
            subsumed: false,
            wildcard: false,
            work_budget: None,
        }),
        ErrorCode::BadMdes,
    );
    // A frame over the size cap (the connection keeps working after).
    let huge = format!(
        "{{\"req\":\"stats\",\"pad\":\"{}\"}}",
        "x".repeat(80 * 1024)
    );
    expect_error(client.send_raw(&huge), ErrorCode::OversizedFrame);

    // The same connection still serves real work after all that.
    let (name, text) = &corpus()[0];
    let (cached, art) = client
        .artifacts(customize_request(name, text, None))
        .expect("server still serves after protocol abuse");
    assert!(!cached);
    assert!(art.mdes.is_some() && art.prov.is_some());

    // A truncated frame: bytes, then EOF with no newline.
    let mut trunc = Client::connect(addr).unwrap();
    trunc.write_bytes(b"{\"req\":\"stats\",\"id\":3").unwrap();
    trunc.shutdown_write().unwrap();
    let resp = trunc.read_response().expect("truncation error is sent");
    assert!(matches!(resp.reply, Reply::Error(ref e) if e.code == ErrorCode::TruncatedFrame));

    // And the server is *still* alive for other connections.
    let mut last = Client::connect(addr).unwrap();
    let resp = last.request(Request::Stats).expect("stats after abuse");
    let Reply::Stats(stats) = resp.reply else {
        panic!("expected stats");
    };
    let errors = stats
        .get("requests")
        .and_then(|r| r.get("errors"))
        .and_then(|v| v.as_u64())
        .unwrap();
    assert!(errors >= 8, "every abuse above is counted, got {errors}");
    server.shutdown();
}

/// Budget-exhausted requests return sound degraded artifacts with the
/// `Degradation` records intact — byte-identical to the governed CLI —
/// whether the budget came from the client or from the server's
/// admission cap.
#[test]
fn budget_exhausted_requests_degrade_like_the_cli() {
    let _guard = TEST_LOCK.lock().unwrap();
    let dir = scratch_dir("degrade");
    // A paper kernel, governed so tightly exploration cannot finish.
    let w = isax_workloads::by_name("crc").unwrap();
    let text = program_text(&w.program);
    let tight: u64 = 50;
    let cli = cli_reference(&dir, "crc", &text, 15.0, Some(tight));

    // Client-requested budget.
    let server = Server::spawn(ServeConfig {
        workers: 2,
        stats: EnvMode::Off,
        ..ServeConfig::default()
    })
    .expect("server spawns");
    let mut client = Client::connect(server.addr()).unwrap();
    let (_, art) = client
        .artifacts(customize_request("crc", &text, Some(tight)))
        .expect("governed customize succeeds");
    assert_eq!(art.mdes.as_deref(), Some(cli.mdes.as_str()));
    assert_eq!(art.prov.as_deref(), Some(cli.customize_prov.as_str()));
    assert!(
        !art.degraded.is_empty(),
        "50 units cannot finish exploration; Degradation records must survive"
    );
    for d in &art.degraded {
        assert!(
            d.contains("work budget") || d.contains("exhausted") || d.contains("budget"),
            "degradation record should describe the truncation: {d}"
        );
    }
    let (_, art) = client
        .artifacts(compile_request("crc", &text, &cli.mdes, Some(tight)))
        .expect("governed compile succeeds");
    assert_eq!(art.assembly.as_deref(), Some(cli.assembly.as_str()));
    assert_eq!(art.prov.as_deref(), Some(cli.compile_prov.as_str()));
    server.shutdown();

    // Server-side admission cap: an *unbudgeted* request is clamped to
    // the cap and produces the same bytes as the capped CLI run.
    let server = Server::spawn(ServeConfig {
        workers: 2,
        max_work_units: Some(tight),
        stats: EnvMode::Off,
        ..ServeConfig::default()
    })
    .expect("server spawns");
    let mut client = Client::connect(server.addr()).unwrap();
    let (_, art) = client
        .artifacts(customize_request("crc", &text, None))
        .expect("admission-capped customize succeeds");
    assert_eq!(
        art.mdes.as_deref(),
        Some(cli.mdes.as_str()),
        "admission cap must equal an explicit client budget"
    );
    assert!(!art.degraded.is_empty());
    // A request asking for *more* than the cap is clamped down to it.
    let (cached, art) = client
        .artifacts(customize_request("crc", &text, Some(tight * 1000)))
        .expect("over-cap request is admitted clamped");
    assert!(cached, "clamped request shares the capped cache entry");
    assert_eq!(art.mdes.as_deref(), Some(cli.mdes.as_str()));
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A zero-capacity queue rejects work with `busy` (backpressure is an
/// explicit structured error, not a hang), while control requests keep
/// flowing; and `ISAX_SERVE_STATS=PATH` semantics write the final stats
/// document at shutdown.
#[test]
fn backpressure_and_stats_sink() {
    let _guard = TEST_LOCK.lock().unwrap();
    let dir = scratch_dir("stats");
    let stats_path = dir.join("serve_stats.json");
    let server = Server::spawn(ServeConfig {
        workers: 1,
        queue_cap: 0,
        stats: EnvMode::Path(stats_path.display().to_string()),
        ..ServeConfig::default()
    })
    .expect("server spawns");
    let mut client = Client::connect(server.addr()).unwrap();
    let (name, text) = &corpus()[0];
    let err = client
        .artifacts(customize_request(name, text, None))
        .expect_err("zero-capacity queue must reject work");
    assert_eq!(err.code, ErrorCode::Busy);
    // Control plane still answers while the data plane is saturated.
    let resp = client.request(Request::Stats).expect("stats still served");
    let Reply::Stats(stats) = resp.reply else {
        panic!("expected stats");
    };
    assert_eq!(
        stats
            .get("requests")
            .and_then(|r| r.get("busy_rejected"))
            .and_then(|v| v.as_u64()),
        Some(1)
    );
    server.shutdown();
    let text = std::fs::read_to_string(&stats_path).expect("final stats written at shutdown");
    let doc = isax_json::parse(&text).expect("stats file is valid JSON");
    assert!(
        doc.get("trace_counters").is_some(),
        "recorder was installed"
    );
    assert!(doc.get("cache").is_some() && doc.get("queue").is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Runs one fixed request script against a server and returns the
/// metrics exposition it reports at the end, plus the final
/// (received, completed, per-code-sum) counters from `stats`.
fn run_metrics_script(server: &Server, kernels: &[(String, String)]) -> (String, u64, u64, u64) {
    let mut client = Client::connect(server.addr()).expect("client connects");
    // Two cold customizes, then a repeat (a cache hit).
    for (name, text) in &kernels[..2] {
        let (cached, art) = client
            .artifacts(customize_request(name, text, None))
            .unwrap_or_else(|e| panic!("{name}: customize failed: {e}"));
        assert!(!cached);
        assert!(art.mdes.is_some());
    }
    let (name, text) = &kernels[0];
    let (cached, _) = client
        .artifacts(customize_request(name, text, None))
        .expect("warm customize succeeds");
    assert!(cached);
    // One malformed frame and one parse error, so per-code counters
    // have something to count.
    let resp = client.send_raw("this is not json").expect("transport ok");
    assert!(matches!(resp.reply, Reply::Error(ref e) if e.code == ErrorCode::MalformedFrame));
    let resp = client
        .request(Request::Customize {
            kernel: "function { nope".into(),
            name: "x".into(),
            budget: 15.0,
            multifunction: false,
            work_budget: None,
        })
        .expect("transport ok");
    assert!(matches!(resp.reply, Reply::Error(ref e) if e.code == ErrorCode::ParseError));
    let metrics = client.metrics().expect("metrics reply");
    let resp = client.request(Request::Stats).expect("stats reply");
    let Reply::Stats(stats) = resp.reply else {
        panic!("expected stats");
    };
    let req = stats.get("requests").expect("stats.requests");
    let received = req.get("received").and_then(|v| v.as_u64()).unwrap();
    let completed = req.get("completed").and_then(|v| v.as_u64()).unwrap();
    let by_code_sum = match req.get("by_code") {
        Some(isax_json::Value::Object(pairs)) => pairs.iter().filter_map(|(_, v)| v.as_u64()).sum(),
        _ => panic!("stats.requests.by_code missing"),
    };
    (metrics, received, completed, by_code_sum)
}

/// The tentpole determinism claim: for the same request script, the
/// deterministic section of the metrics exposition is byte-identical
/// whether the server runs 1 worker or 4 — only lines below the
/// wall-clock marker (latency histograms, uptime, worker config) may
/// differ. Also proves the counting invariant `received == completed +
/// Σ per-code errors` on both servers.
#[test]
fn metrics_deterministic_section_is_worker_count_invariant() {
    let _guard = TEST_LOCK.lock().unwrap();
    let kernels = corpus();

    let run = |workers: usize| {
        let server = Server::spawn(ServeConfig {
            workers,
            stats: EnvMode::Off,
            ..ServeConfig::default()
        })
        .expect("server spawns");
        let out = run_metrics_script(&server, &kernels);
        server.shutdown();
        out
    };
    let (serial, r1, c1, e1) = run(1);
    let (concurrent, r4, c4, e4) = run(4);

    assert_eq!(r1, c1 + e1, "1-worker: uncounted requests");
    assert_eq!(r4, c4 + e4, "4-worker: uncounted requests");

    let det1 = isax_trace::deterministic_section(&serial);
    let det4 = isax_trace::deterministic_section(&concurrent);
    assert!(!det1.is_empty(), "deterministic section must be non-empty");
    assert_eq!(
        det1, det4,
        "deterministic exposition section must be byte-identical at any worker count"
    );
    // The wall-clock section exists and is where the timing lives.
    assert!(serial.contains(isax_trace::WALL_MARKER));
    assert!(serial.contains("isax_serve_e2e_us_bucket"));
    assert!(det1.contains("isax_serve_requests_received_total"));
    assert!(det1.contains("isax_serve_errors_total{code=\"malformed-frame\"} 1"));
    assert!(det1.contains("isax_serve_errors_total{code=\"parse-error\"} 1"));
    assert!(det1.contains("isax_serve_cache_hits_total 1"));
}

/// Every request the server receives — accepted work, cache hits,
/// malformed frames, busy rejections, control requests — produces
/// exactly one access-log line, with the outcome and deterministic
/// request id on it.
#[test]
fn access_log_records_every_request_exactly_once() {
    let _guard = TEST_LOCK.lock().unwrap();
    let dir = scratch_dir("access");
    let log_path = dir.join("access.jsonl");
    let server = Server::spawn(ServeConfig {
        workers: 2,
        access_log: EnvMode::Path(log_path.display().to_string()),
        stats: EnvMode::Off,
        ..ServeConfig::default()
    })
    .expect("server spawns");
    let mut client = Client::connect(server.addr()).unwrap();
    let (name, text) = &corpus()[0];
    client
        .artifacts(customize_request(name, text, None))
        .expect("cold customize");
    let (cached, _) = client
        .artifacts(customize_request(name, text, None))
        .expect("warm customize");
    assert!(cached);
    let _ = client.send_raw("not json").expect("transport ok");
    let resp = client.request(Request::Stats).expect("stats reply");
    let Reply::Stats(stats) = resp.reply else {
        panic!("expected stats");
    };
    let received = stats
        .get("requests")
        .and_then(|r| r.get("received"))
        .and_then(|v| v.as_u64())
        .unwrap();
    assert_eq!(received, 4, "4 frames sent");
    assert_eq!(server.access_log_lines(), received);
    server.shutdown();

    let log = std::fs::read_to_string(&log_path).expect("access log written");
    let lines: Vec<isax_json::Value> = log
        .lines()
        .map(|l| isax_json::parse(l).expect("access-log line is valid JSON"))
        .collect();
    assert_eq!(lines.len(), 4, "one line per received frame");
    let mut seqs: Vec<u64> = lines
        .iter()
        .map(|l| l.get("seq").and_then(|v| v.as_u64()).unwrap())
        .collect();
    seqs.sort_unstable();
    assert_eq!(
        seqs,
        vec![1, 2, 3, 4],
        "sequence numbers are dense and unique"
    );
    for l in &lines {
        let seq = l.get("seq").and_then(|v| v.as_u64()).unwrap();
        let id = l.get("id").and_then(|v| v.as_str()).unwrap();
        assert!(
            id.starts_with(&format!("{seq}-")),
            "request id embeds the sequence number: {id}"
        );
        assert!(l.get("outcome").is_some() && l.get("total_us").is_some());
    }
    let outcomes: Vec<&str> = lines
        .iter()
        .map(|l| l.get("outcome").and_then(|v| v.as_str()).unwrap())
        .collect();
    assert_eq!(outcomes.iter().filter(|o| **o == "ok").count(), 3);
    assert_eq!(
        outcomes.iter().filter(|o| **o == "malformed-frame").count(),
        1
    );
    assert_eq!(
        lines
            .iter()
            .filter(|l| l.get("cached") == Some(&isax_json::Value::Bool(true)))
            .count(),
        1,
        "exactly one request was served from cache"
    );
    assert!(
        lines
            .iter()
            .filter(|l| l.get("outcome").and_then(|v| v.as_str()) == Some("ok")
                && l.get("req").and_then(|v| v.as_str()) == Some("customize"))
            .all(|l| l.get("stages_us").is_some()),
        "worker-served requests carry per-stage latencies"
    );

    // Busy rejections are logged too: a zero-capacity queue.
    let log2 = dir.join("access2.jsonl");
    let server = Server::spawn(ServeConfig {
        workers: 1,
        queue_cap: 0,
        access_log: EnvMode::Path(log2.display().to_string()),
        stats: EnvMode::Off,
        ..ServeConfig::default()
    })
    .expect("server spawns");
    let mut client = Client::connect(server.addr()).unwrap();
    let err = client
        .artifacts(customize_request(name, text, None))
        .expect_err("zero-capacity queue rejects");
    assert_eq!(err.code, ErrorCode::Busy);
    assert_eq!(server.access_log_lines(), 1);
    server.shutdown();
    let log = std::fs::read_to_string(&log2).expect("access log written");
    let rec = isax_json::parse(log.lines().next().unwrap()).unwrap();
    assert_eq!(rec.get("outcome").and_then(|v| v.as_str()), Some("busy"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Telemetry must be invisible to the artifact plane: the same request
/// returns byte-identical artifacts with the access log and metrics
/// sink on or off. `--metrics-out` writes a final parseable exposition
/// at shutdown.
#[test]
fn telemetry_never_changes_artifacts_and_metrics_out_is_written() {
    let _guard = TEST_LOCK.lock().unwrap();
    let dir = scratch_dir("telemetry");
    let (name, text) = &corpus()[0];

    // Telemetry fully off.
    let server = Server::spawn(ServeConfig {
        workers: 1,
        stats: EnvMode::Off,
        ..ServeConfig::default()
    })
    .expect("server spawns");
    let mut client = Client::connect(server.addr()).unwrap();
    let (_, plain) = client
        .artifacts(customize_request(name, text, None))
        .expect("customize without telemetry");
    server.shutdown();

    // Access log + metrics sink on.
    let metrics_path = dir.join("metrics.prom");
    let server = Server::spawn(ServeConfig {
        workers: 1,
        stats: EnvMode::Off,
        access_log: EnvMode::Path(dir.join("access.jsonl").display().to_string()),
        metrics_out: Some(metrics_path.display().to_string()),
        ..ServeConfig::default()
    })
    .expect("server spawns");
    let mut client = Client::connect(server.addr()).unwrap();
    let (_, traced) = client
        .artifacts(customize_request(name, text, None))
        .expect("customize with telemetry");
    server.shutdown();

    assert_eq!(plain.mdes, traced.mdes, "telemetry changed the MDES bytes");
    assert_eq!(plain.prov, traced.prov, "telemetry changed the prov bytes");

    let expo = std::fs::read_to_string(&metrics_path).expect("metrics-out written at shutdown");
    assert!(expo.contains(isax_trace::WALL_MARKER));
    assert!(!isax_trace::deterministic_section(&expo).is_empty());
    assert!(expo.contains("isax_serve_requests_received_total 1"));
    for line in expo.lines() {
        assert!(
            line.starts_with('#')
                || line
                    .split_once(' ')
                    .is_some_and(|(name, v)| !name.is_empty() && !v.is_empty()),
            "exposition line must be `name value` or a comment: {line}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
