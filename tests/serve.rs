//! The serve-vs-CLI differential suite.
//!
//! `isax serve` claims that a concurrent, cached, long-running server
//! returns **byte-identical artifacts** to the one-shot serial CLI.
//! This suite is that claim's proof:
//!
//! * for every paper workload and every curated kernel, the MDES,
//!   provenance report and customized assembly served by a 4-client
//!   concurrent server equal the bytes `isax customize` / `isax
//!   compile` write for the same request;
//! * a cold miss and the warm hit that follows return identical bytes
//!   (and the hit is actually served from cache);
//! * malformed, oversized and truncated frames produce structured
//!   errors and never kill the server;
//! * budget-exhausted requests degrade exactly like the governed CLI —
//!   sound artifacts plus intact `Degradation` records.
//!
//! Tests share one process, and the server enables the global
//! provenance flag for its lifetime, so every test serializes on
//! `TEST_LOCK` (the same discipline as `tests/trace.rs`).

use isax_serve::{Client, EnvMode, ErrorCode, Reply, Request, ServeConfig, Server};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

static TEST_LOCK: Mutex<()> = Mutex::new(());

/// The CLI's `--emit` text form: functions in the `Display` assembly
/// format, joined by blank separators.
fn program_text(p: &isax_ir::Program) -> String {
    p.functions
        .iter()
        .map(|f| f.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

/// Every paper workload plus every curated kernel, as (name, source).
fn corpus() -> Vec<(String, String)> {
    let mut kernels: Vec<(String, String)> = isax_workloads::all()
        .into_iter()
        .map(|w| (w.name.to_string(), program_text(&w.program)))
        .collect();
    for k in isax_gen::curated() {
        kernels.push((k.name.to_string(), (k.text)()));
    }
    kernels
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("isax-serve-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// What the serial CLI produces for one kernel at one configuration.
struct CliRef {
    mdes: String,
    customize_prov: String,
    assembly: String,
    compile_prov: String,
}

/// Runs `isax customize` then `isax compile --emit` through the CLI
/// library (the exact code path of the binary) and collects the four
/// artifacts' bytes.
fn cli_reference(dir: &Path, name: &str, text: &str, budget: f64, work: Option<u64>) -> CliRef {
    let kernel = dir.join(format!("{name}.isax"));
    let mdes_path = dir.join(format!("{name}.mdes.json"));
    let cprov_path = dir.join(format!("{name}.customize.prov.json"));
    let asm_path = dir.join(format!("{name}.out.isax"));
    let kprov_path = dir.join(format!("{name}.compile.prov.json"));
    std::fs::write(&kernel, text).unwrap();
    let mut out = Vec::new();
    isax_cli::execute(
        &isax_cli::Command::Customize {
            file: kernel.display().to_string(),
            budget,
            name: name.into(),
            out: Some(mdes_path.display().to_string()),
            multifunction: false,
            check: false,
            trace_out: None,
            work_budget: work,
            prov_out: Some(cprov_path.display().to_string()),
            beam_width: None,
            width_aware: false,
        },
        &mut out,
    )
    .expect("CLI customize succeeds");
    isax_cli::execute(
        &isax_cli::Command::Compile {
            file: kernel.display().to_string(),
            mdes: mdes_path.display().to_string(),
            subsumed: false,
            wildcard: false,
            emit: Some(asm_path.display().to_string()),
            check: false,
            trace_out: None,
            work_budget: work,
            prov_out: Some(kprov_path.display().to_string()),
        },
        &mut out,
    )
    .expect("CLI compile succeeds");
    CliRef {
        mdes: std::fs::read_to_string(&mdes_path).unwrap(),
        customize_prov: std::fs::read_to_string(&cprov_path).unwrap(),
        assembly: std::fs::read_to_string(&asm_path).unwrap(),
        compile_prov: std::fs::read_to_string(&kprov_path).unwrap(),
    }
}

fn customize_request(name: &str, text: &str, work: Option<u64>) -> Request {
    Request::Customize {
        kernel: text.to_string(),
        name: name.to_string(),
        budget: 15.0,
        multifunction: false,
        work_budget: work,
    }
}

fn compile_request(name: &str, text: &str, mdes: &str, work: Option<u64>) -> Request {
    Request::Compile {
        kernel: text.to_string(),
        name: name.to_string(),
        mdes: mdes.to_string(),
        subsumed: false,
        wildcard: false,
        work_budget: work,
    }
}

/// The headline test: 4 concurrent clients sweep every paper + curated
/// kernel through a shared server; every artifact byte must equal the
/// serial CLI's, cold misses must fill the cache, and warm hits (served
/// to *different* clients) must be byte-identical to the cold copies.
#[test]
fn concurrent_server_matches_serial_cli_on_all_kernels() {
    let _guard = TEST_LOCK.lock().unwrap();
    let dir = scratch_dir("diff");
    let kernels = corpus();
    assert!(kernels.len() >= 19, "13 paper + 6 curated kernels");

    // Phase 1: serial CLI references (the provenance enable guard
    // inside the CLI must not overlap the server's, so all CLI work
    // happens before the server starts).
    let refs: Vec<CliRef> = kernels
        .iter()
        .map(|(name, text)| cli_reference(&dir, name, text, 15.0, None))
        .collect();

    // Phase 2: one server, 4 concurrent clients, each client owns a
    // quarter of the corpus (cold), then re-requests a *different*
    // client's quarter (warm).
    let server = Server::spawn(ServeConfig {
        workers: 4,
        stats: EnvMode::Off,
        ..ServeConfig::default()
    })
    .expect("server spawns");
    let addr = server.addr();
    let n_clients = 4;
    std::thread::scope(|scope| {
        let kernels = &kernels;
        let refs = &refs;
        let handles: Vec<_> = (0..n_clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("client connects");
                    // Cold pass over this client's quarter.
                    for i in (c..kernels.len()).step_by(n_clients) {
                        let (name, text) = &kernels[i];
                        let (cached, art) = client
                            .artifacts(customize_request(name, text, None))
                            .unwrap_or_else(|e| panic!("{name}: customize failed: {e}"));
                        assert!(!cached, "{name}: first customize must be a cold miss");
                        assert_eq!(
                            art.mdes.as_deref(),
                            Some(refs[i].mdes.as_str()),
                            "{name}: MDES differs from CLI"
                        );
                        assert_eq!(
                            art.prov.as_deref(),
                            Some(refs[i].customize_prov.as_str()),
                            "{name}: customize prov report differs from CLI"
                        );
                        assert!(art.degraded.is_empty(), "{name}: ungoverned run degraded");
                        let (cached, art) = client
                            .artifacts(compile_request(name, text, &refs[i].mdes, None))
                            .unwrap_or_else(|e| panic!("{name}: compile failed: {e}"));
                        assert!(!cached, "{name}: first compile must be a cold miss");
                        assert_eq!(
                            art.assembly.as_deref(),
                            Some(refs[i].assembly.as_str()),
                            "{name}: assembly differs from CLI"
                        );
                        assert_eq!(
                            art.prov.as_deref(),
                            Some(refs[i].compile_prov.as_str()),
                            "{name}: compile prov report differs from CLI"
                        );
                        assert!(art.baseline_cycles.is_some() && art.custom_cycles.is_some());
                    }
                    (c, client)
                })
            })
            .collect();
        let mut clients: Vec<(usize, Client)> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Warm pass: each client replays the next client's quarter.
        for (c, client) in clients.iter_mut() {
            let c = (*c + 1) % n_clients;
            for i in (c..kernels.len()).step_by(n_clients) {
                let (name, text) = &kernels[i];
                let (cached, art) = client
                    .artifacts(customize_request(name, text, None))
                    .unwrap_or_else(|e| panic!("{name}: warm customize failed: {e}"));
                assert!(cached, "{name}: repeat customize must hit the cache");
                assert_eq!(
                    art.mdes.as_deref(),
                    Some(refs[i].mdes.as_str()),
                    "{name}: warm MDES differs from cold/CLI"
                );
                assert_eq!(art.prov.as_deref(), Some(refs[i].customize_prov.as_str()));
            }
        }
    });

    // Phase 3: stats reflect the workload, then graceful shutdown.
    let mut client = Client::connect(addr).expect("stats client connects");
    let resp = client.request(Request::Stats).expect("stats succeeds");
    let Reply::Stats(stats) = resp.reply else {
        panic!("expected stats reply, got {:?}", resp.reply);
    };
    let cache = stats.get("cache").expect("stats.cache");
    assert_eq!(
        cache.get("entries").and_then(|v| v.as_u64()),
        Some(2 * kernels.len() as u64),
        "one customize + one compile entry per kernel"
    );
    let hits = cache.get("hits").and_then(|v| v.as_u64()).unwrap();
    assert_eq!(hits, kernels.len() as u64, "one warm hit per kernel");
    assert!(cache.get("hit_rate").and_then(|v| v.as_f64()).unwrap() > 0.0);
    let requests = stats.get("requests").expect("stats.requests");
    assert_eq!(requests.get("errors").and_then(|v| v.as_u64()), Some(0));
    assert!(stats.get("queue").and_then(|q| q.get("depth")).is_some());
    assert!(
        stats
            .get("latency_us")
            .and_then(|l| l.get("analyze"))
            .and_then(|a| a.get("count"))
            .and_then(|v| v.as_u64())
            .unwrap_or(0)
            >= kernels.len() as u64,
        "per-stage latency must cover every cold analyze"
    );
    let resp = client.request(Request::Shutdown).expect("shutdown ack");
    assert_eq!(resp.reply, Reply::Shutdown);
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Malformed, unknown, oversized and truncated frames each produce a
/// structured error — and the server keeps serving real work after
/// every one of them.
#[test]
fn protocol_errors_are_structured_and_nonfatal() {
    let _guard = TEST_LOCK.lock().unwrap();
    let server = Server::spawn(ServeConfig {
        workers: 1,
        max_frame_bytes: 64 * 1024,
        stats: EnvMode::Off,
        ..ServeConfig::default()
    })
    .expect("server spawns");
    let addr = server.addr();
    let mut client = Client::connect(addr).unwrap();

    let expect_error = |resp: Result<isax_serve::Response, isax_serve::WireError>,
                        code: ErrorCode| {
        let resp = resp.expect("transport survives");
        match resp.reply {
            Reply::Error(e) => assert_eq!(e.code, code, "unexpected error: {e}"),
            other => panic!("expected {code:?} error, got {other:?}"),
        }
    };

    // Not JSON at all.
    expect_error(
        client.send_raw("this is not json"),
        ErrorCode::MalformedFrame,
    );
    // JSON, but not a request object.
    expect_error(client.send_raw("[1,2,3]"), ErrorCode::BadRequest);
    expect_error(client.send_raw("{\"id\":9}"), ErrorCode::BadRequest);
    // Unknown request kind; the id still echoes back.
    let resp = client
        .send_raw("{\"req\":\"frobnicate\",\"id\":7}")
        .expect("transport survives");
    assert_eq!(resp.id, 7);
    assert!(matches!(resp.reply, Reply::Error(ref e) if e.code == ErrorCode::BadRequest));
    // Missing required fields.
    expect_error(
        client.send_raw("{\"req\":\"customize\",\"id\":1}"),
        ErrorCode::BadRequest,
    );
    // Kernel text that is not IR.
    expect_error(
        client.request(Request::Customize {
            kernel: "function { nope".into(),
            name: "x".into(),
            budget: 15.0,
            multifunction: false,
            work_budget: None,
        }),
        ErrorCode::ParseError,
    );
    // An MDES that is not an MDES.
    expect_error(
        client.request(Request::Compile {
            kernel: corpus()[0].1.clone(),
            name: "x".into(),
            mdes: "{\"not\":\"an mdes\"}".into(),
            subsumed: false,
            wildcard: false,
            work_budget: None,
        }),
        ErrorCode::BadMdes,
    );
    // A frame over the size cap (the connection keeps working after).
    let huge = format!(
        "{{\"req\":\"stats\",\"pad\":\"{}\"}}",
        "x".repeat(80 * 1024)
    );
    expect_error(client.send_raw(&huge), ErrorCode::OversizedFrame);

    // The same connection still serves real work after all that.
    let (name, text) = &corpus()[0];
    let (cached, art) = client
        .artifacts(customize_request(name, text, None))
        .expect("server still serves after protocol abuse");
    assert!(!cached);
    assert!(art.mdes.is_some() && art.prov.is_some());

    // A truncated frame: bytes, then EOF with no newline.
    let mut trunc = Client::connect(addr).unwrap();
    trunc.write_bytes(b"{\"req\":\"stats\",\"id\":3").unwrap();
    trunc.shutdown_write().unwrap();
    let resp = trunc.read_response().expect("truncation error is sent");
    assert!(matches!(resp.reply, Reply::Error(ref e) if e.code == ErrorCode::TruncatedFrame));

    // And the server is *still* alive for other connections.
    let mut last = Client::connect(addr).unwrap();
    let resp = last.request(Request::Stats).expect("stats after abuse");
    let Reply::Stats(stats) = resp.reply else {
        panic!("expected stats");
    };
    let errors = stats
        .get("requests")
        .and_then(|r| r.get("errors"))
        .and_then(|v| v.as_u64())
        .unwrap();
    assert!(errors >= 8, "every abuse above is counted, got {errors}");
    server.shutdown();
}

/// Budget-exhausted requests return sound degraded artifacts with the
/// `Degradation` records intact — byte-identical to the governed CLI —
/// whether the budget came from the client or from the server's
/// admission cap.
#[test]
fn budget_exhausted_requests_degrade_like_the_cli() {
    let _guard = TEST_LOCK.lock().unwrap();
    let dir = scratch_dir("degrade");
    // A paper kernel, governed so tightly exploration cannot finish.
    let w = isax_workloads::by_name("crc").unwrap();
    let text = program_text(&w.program);
    let tight: u64 = 50;
    let cli = cli_reference(&dir, "crc", &text, 15.0, Some(tight));

    // Client-requested budget.
    let server = Server::spawn(ServeConfig {
        workers: 2,
        stats: EnvMode::Off,
        ..ServeConfig::default()
    })
    .expect("server spawns");
    let mut client = Client::connect(server.addr()).unwrap();
    let (_, art) = client
        .artifacts(customize_request("crc", &text, Some(tight)))
        .expect("governed customize succeeds");
    assert_eq!(art.mdes.as_deref(), Some(cli.mdes.as_str()));
    assert_eq!(art.prov.as_deref(), Some(cli.customize_prov.as_str()));
    assert!(
        !art.degraded.is_empty(),
        "50 units cannot finish exploration; Degradation records must survive"
    );
    for d in &art.degraded {
        assert!(
            d.contains("work budget") || d.contains("exhausted") || d.contains("budget"),
            "degradation record should describe the truncation: {d}"
        );
    }
    let (_, art) = client
        .artifacts(compile_request("crc", &text, &cli.mdes, Some(tight)))
        .expect("governed compile succeeds");
    assert_eq!(art.assembly.as_deref(), Some(cli.assembly.as_str()));
    assert_eq!(art.prov.as_deref(), Some(cli.compile_prov.as_str()));
    server.shutdown();

    // Server-side admission cap: an *unbudgeted* request is clamped to
    // the cap and produces the same bytes as the capped CLI run.
    let server = Server::spawn(ServeConfig {
        workers: 2,
        max_work_units: Some(tight),
        stats: EnvMode::Off,
        ..ServeConfig::default()
    })
    .expect("server spawns");
    let mut client = Client::connect(server.addr()).unwrap();
    let (_, art) = client
        .artifacts(customize_request("crc", &text, None))
        .expect("admission-capped customize succeeds");
    assert_eq!(
        art.mdes.as_deref(),
        Some(cli.mdes.as_str()),
        "admission cap must equal an explicit client budget"
    );
    assert!(!art.degraded.is_empty());
    // A request asking for *more* than the cap is clamped down to it.
    let (cached, art) = client
        .artifacts(customize_request("crc", &text, Some(tight * 1000)))
        .expect("over-cap request is admitted clamped");
    assert!(cached, "clamped request shares the capped cache entry");
    assert_eq!(art.mdes.as_deref(), Some(cli.mdes.as_str()));
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A zero-capacity queue rejects work with `busy` (backpressure is an
/// explicit structured error, not a hang), while control requests keep
/// flowing; and `ISAX_SERVE_STATS=PATH` semantics write the final stats
/// document at shutdown.
#[test]
fn backpressure_and_stats_sink() {
    let _guard = TEST_LOCK.lock().unwrap();
    let dir = scratch_dir("stats");
    let stats_path = dir.join("serve_stats.json");
    let server = Server::spawn(ServeConfig {
        workers: 1,
        queue_cap: 0,
        stats: EnvMode::Path(stats_path.display().to_string()),
        ..ServeConfig::default()
    })
    .expect("server spawns");
    let mut client = Client::connect(server.addr()).unwrap();
    let (name, text) = &corpus()[0];
    let err = client
        .artifacts(customize_request(name, text, None))
        .expect_err("zero-capacity queue must reject work");
    assert_eq!(err.code, ErrorCode::Busy);
    // Control plane still answers while the data plane is saturated.
    let resp = client.request(Request::Stats).expect("stats still served");
    let Reply::Stats(stats) = resp.reply else {
        panic!("expected stats");
    };
    assert_eq!(
        stats
            .get("requests")
            .and_then(|r| r.get("busy_rejected"))
            .and_then(|v| v.as_u64()),
        Some(1)
    );
    server.shutdown();
    let text = std::fs::read_to_string(&stats_path).expect("final stats written at shutdown");
    let doc = isax_json::parse(&text).expect("stats file is valid JSON");
    assert!(
        doc.get("trace_counters").is_some(),
        "recorder was installed"
    );
    assert!(doc.get("cache").is_some() && doc.get("queue").is_some());
    let _ = std::fs::remove_dir_all(&dir);
}
