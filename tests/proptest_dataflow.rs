//! Property-based soundness proofs for the dataflow analyses.
//!
//! Two layers, mirroring the structure of `isax_ir::dataflow`:
//!
//! 1. **Transfer functions**: for every non-memory opcode, random
//!    concrete operands are wrapped in random abstract values that
//!    contain them; the concrete [`isax_ir::eval`] result must be
//!    contained in the abstract transfer result, for both the interval
//!    and the known-bits domain.
//! 2. **Whole-CFG**: random programs (straight-line with loads/stores,
//!    diamonds, counted loops) are run under the instrumented
//!    interpreter and every observed register definition must lie
//!    inside the solved facts ([`isax_check::check_value_facts`]).

use isax_check::check_value_facts;
use isax_ir::dataflow::{Domain, Interval, KnownBits};
use isax_ir::{eval, FunctionBuilder, Opcode, Program, VReg};
use isax_machine::Memory;
use proptest::prelude::*;

/// Every opcode with a pure transfer function (memory and custom ops
/// take the dedicated `Domain::load` / top paths instead).
const PURE_OPS: [Opcode; 30] = [
    Opcode::Add,
    Opcode::Sub,
    Opcode::Mul,
    Opcode::Div,
    Opcode::Rem,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::AndN,
    Opcode::Not,
    Opcode::Shl,
    Opcode::Shr,
    Opcode::Sar,
    Opcode::Ror,
    Opcode::Eq,
    Opcode::Ne,
    Opcode::Lt,
    Opcode::Le,
    Opcode::Gt,
    Opcode::Ge,
    Opcode::Ltu,
    Opcode::Leu,
    Opcode::Gtu,
    Opcode::Geu,
    Opcode::Select,
    Opcode::Mov,
    Opcode::SxtB,
    Opcode::SxtH,
    Opcode::ZxtB,
    Opcode::ZxtH,
];

/// A concrete value plus an abstraction of it in both domains.
#[derive(Debug, Clone, Copy)]
struct AbsVal {
    v: u32,
    iv: Interval,
    kb: KnownBits,
}

/// Strategy: a concrete `u32` wrapped in a random interval containing it
/// and a random known-bits value consistent with it.
fn abs_val() -> impl Strategy<Value = AbsVal> {
    (any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>()).prop_map(|(v, down, up, mask)| {
        AbsVal {
            v,
            iv: Interval::new(v.saturating_sub(down), v.saturating_add(up)),
            kb: KnownBits {
                known: mask,
                value: v & mask,
            },
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_env_cases(96))]

    /// Interval and known-bits transfers over-approximate `eval` for
    /// every pure opcode on the same random operands.
    #[test]
    fn transfer_functions_are_sound(
        a in abs_val(),
        b in abs_val(),
        c in abs_val(),
    ) {
        for op in PURE_OPS {
            let n = if op == Opcode::Select { 3 } else { op.arity() };
            let concrete: Vec<u32> = [a.v, b.v, c.v][..n].to_vec();
            let got = eval(op, &concrete);

            let ivs: Vec<Interval> = [a.iv, b.iv, c.iv][..n].to_vec();
            let iv_out = Interval::transfer(op, &ivs);
            prop_assert!(
                iv_out.contains(got),
                "{op}: eval {:?} = {got} outside interval {iv_out:?} (args {ivs:?})",
                concrete
            );

            let kbs: Vec<KnownBits> = [a.kb, b.kb, c.kb][..n].to_vec();
            let kb_out = KnownBits::transfer(op, &kbs);
            prop_assert!(
                kb_out.contains(got),
                "{op}: eval {:?} = {got:#010x} contradicts known bits {kb_out:?} (args {kbs:?})",
                concrete
            );
        }
    }

    /// The abstract load results contain every value the interpreter's
    /// width-correct loads can produce.
    #[test]
    fn load_abstractions_are_sound(raw in any::<u32>()) {
        for (op, loaded) in [
            (Opcode::LdBu, raw & 0xFF),
            (Opcode::LdHu, raw & 0xFFFF),
            (Opcode::LdB, raw as u8 as i8 as i32 as u32),
            (Opcode::LdH, raw as u16 as i16 as i32 as u32),
            (Opcode::LdW, raw),
        ] {
            prop_assert!(<Interval as Domain>::load(op).contains(loaded), "{op}");
            prop_assert!(<KnownBits as Domain>::load(op).contains(loaded), "{op}");
        }
    }
}

/// Ops the CFG generator draws from (a representative mix including the
/// narrowing ops that make facts interesting).
const GEN_OPS: [Opcode; 12] = [
    Opcode::Add,
    Opcode::Sub,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Shl,
    Opcode::Shr,
    Opcode::Mul,
    Opcode::ZxtB,
    Opcode::SxtB,
    Opcode::Ne,
    Opcode::Ltu,
];

#[derive(Debug, Clone)]
struct GenInst {
    op_idx: usize,
    src_picks: [usize; 2],
    imm: i64,
    use_imm: bool,
}

fn gen_inst() -> impl Strategy<Value = GenInst> {
    (
        0..GEN_OPS.len(),
        [0..64usize, 0..64usize],
        0i64..256,
        any::<bool>(),
    )
        .prop_map(|(op_idx, src_picks, imm, use_imm)| GenInst {
            op_idx,
            src_picks,
            imm,
            use_imm,
        })
}

/// Appends one generated instruction to the builder, drawing register
/// operands from `pool`.
fn emit(fb: &mut FunctionBuilder, g: &GenInst, pool: &mut Vec<VReg>) {
    let op = GEN_OPS[g.op_idx];
    let r0 = pool[g.src_picks[0] % pool.len()];
    let r1 = pool[g.src_picks[1] % pool.len()];
    let second: isax_ir::Operand = if g.use_imm { g.imm.into() } else { r1.into() };
    let d = match op {
        Opcode::Add => fb.add(r0, second),
        Opcode::Sub => fb.sub(r0, second),
        Opcode::And => fb.and(r0, second),
        Opcode::Or => fb.or(r0, second),
        Opcode::Xor => fb.xor(r0, second),
        Opcode::Shl => fb.shl(r0, second),
        Opcode::Shr => fb.shr(r0, second),
        Opcode::Mul => fb.mul(r0, second),
        Opcode::ZxtB => fb.zxtb(r0),
        Opcode::SxtB => fb.sxtb(r0),
        Opcode::Ne => fb.ne(r0, second),
        Opcode::Ltu => fb.ltu(r0, second),
        _ => unreachable!(),
    };
    pool.push(d);
}

/// A straight-line function with a sprinkling of loads and stores.
fn straightline(insts: &[GenInst], with_mem: bool) -> Program {
    let mut fb = FunctionBuilder::new("fuzz", 4);
    fb.set_entry_weight(100);
    let mut pool: Vec<VReg> = (0..4).map(|i| fb.param(i)).collect();
    for (i, g) in insts.iter().enumerate() {
        if with_mem && i % 5 == 4 {
            let r = pool[g.src_picks[0] % pool.len()];
            let addr = fb.and(r, 0xFCi64);
            if i % 2 == 0 {
                fb.stw(addr, r);
            } else {
                pool.push(fb.ldw(addr));
            }
            pool.push(addr);
        } else {
            emit(&mut fb, g, &mut pool);
        }
    }
    let last = *pool.last().unwrap();
    fb.ret(&[last.into()]);
    Program::new(vec![fb.finish()])
}

/// entry → (then | else) → join: the join block sees the union of two
/// different abstract states, exercising the solver's merge.
fn diamond(head: &[GenInst], arm_a: &[GenInst], arm_b: &[GenInst]) -> Program {
    let mut fb = FunctionBuilder::new("fuzz", 4);
    fb.set_entry_weight(100);
    let then_b = fb.new_block(50);
    let else_b = fb.new_block(50);
    let join = fb.new_block(100);
    let mut pool: Vec<VReg> = (0..4).map(|i| fb.param(i)).collect();
    for g in head {
        emit(&mut fb, g, &mut pool);
    }
    let result = fb.mov(0i64);
    let cond = fb.ne(*pool.last().unwrap(), 0i64);
    fb.branch(cond, then_b, else_b);

    fb.switch_to(then_b);
    let mut pa = pool.clone();
    for g in arm_a {
        emit(&mut fb, g, &mut pa);
    }
    fb.copy_to(result, *pa.last().unwrap());
    fb.jump(join);

    fb.switch_to(else_b);
    let mut pb = pool.clone();
    for g in arm_b {
        emit(&mut fb, g, &mut pb);
    }
    fb.copy_to(result, *pb.last().unwrap());
    fb.jump(join);

    fb.switch_to(join);
    fb.ret(&[result.into()]);
    Program::new(vec![fb.finish()])
}

/// A counted loop accumulating through a generated body: exercises
/// widening and fixpoint joins on back edges.
fn counted_loop(body: &[GenInst], trip: u32) -> Program {
    let mut fb = FunctionBuilder::new("fuzz", 1);
    fb.set_entry_weight(1);
    let loop_b = fb.new_block(u64::from(trip));
    let exit = fb.new_block(1);
    let n = fb.param(0);
    let limit = fb.and(n, i64::from(trip.max(1) - 1));
    let i = fb.mov(0i64);
    let acc = fb.mov(0i64);
    fb.jump(loop_b);

    fb.switch_to(loop_b);
    let mut pool = vec![i, acc, limit];
    for g in body {
        emit(&mut fb, g, &mut pool);
    }
    let acc2 = fb.add(acc, *pool.last().unwrap());
    fb.copy_to(acc, acc2);
    let i2 = fb.add(i, 1i64);
    fb.copy_to(i, i2);
    let c = fb.leu(i, limit);
    fb.branch(c, loop_b, exit);

    fb.switch_to(exit);
    fb.ret(&[acc.into()]);
    Program::new(vec![fb.finish()])
}

proptest! {
    #![proptest_config(ProptestConfig::with_env_cases(64))]

    #[test]
    fn straightline_observations_lie_in_facts(
        insts in proptest::collection::vec(gen_inst(), 3..40),
        with_mem in any::<bool>(),
        args in proptest::array::uniform4(any::<u32>()),
    ) {
        let p = straightline(&insts, with_mem);
        prop_assert!(isax_ir::verify_program(&p).is_ok());
        let r = check_value_facts(&p, "fuzz", &args, &Memory::new(), 1_000_000);
        prop_assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn diamond_observations_lie_in_facts(
        head in proptest::collection::vec(gen_inst(), 1..12),
        arm_a in proptest::collection::vec(gen_inst(), 1..8),
        arm_b in proptest::collection::vec(gen_inst(), 1..8),
        args in proptest::array::uniform4(any::<u32>()),
    ) {
        let p = diamond(&head, &arm_a, &arm_b);
        prop_assert!(isax_ir::verify_program(&p).is_ok());
        let r = check_value_facts(&p, "fuzz", &args, &Memory::new(), 1_000_000);
        prop_assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn loop_observations_lie_in_facts(
        body in proptest::collection::vec(gen_inst(), 1..10),
        trip in 1u32..64,
        arg in any::<u32>(),
    ) {
        let p = counted_loop(&body, trip);
        prop_assert!(isax_ir::verify_program(&p).is_ok());
        let r = check_value_facts(&p, "fuzz", &[arg], &Memory::new(), 1_000_000);
        prop_assert!(r.is_clean(), "{r}");
    }

    /// Effective widths are always in `[1, 32]` and a function of the
    /// program alone (deterministic across resolves).
    #[test]
    fn effective_widths_are_bounded_and_deterministic(
        insts in proptest::collection::vec(gen_inst(), 3..25),
    ) {
        let p = straightline(&insts, false);
        let w1 = isax_ir::effective_widths(&p.functions[0]);
        let w2 = isax_ir::effective_widths(&p.functions[0]);
        prop_assert_eq!(&w1, &w2);
        for row in &w1 {
            for &w in row {
                prop_assert!((1..=32).contains(&w), "width {w}");
            }
        }
    }
}
