//! The §6 memory relaxation end to end: load-bearing custom function
//! units must be discovered, selected, matched, replaced — and must
//! compute exactly what the original code computed, on every benchmark.

use isax::{Customizer, MatchOptions, Mdes};
use isax_machine::{run, Memory};
use isax_select::{select_greedy, Objective, SelectConfig};
use isax_workloads::all;

const FUEL: u64 = 50_000_000;

#[test]
fn memory_cfus_preserve_semantics_on_every_benchmark() {
    let cz = Customizer::with_memory_cfus();
    for w in all() {
        let (mdes, _) = cz.customize(w.name, &w.program, 15.0);
        let ev = cz.evaluate(&w.program, &mdes, MatchOptions::exact());
        isax_ir::verify_program(&ev.compiled.program).expect("valid");
        for (entry, args_fn) in w.entries() {
            for seed in [1u64, 2] {
                let mut mem_a = Memory::new();
                (w.init_memory)(&mut mem_a, seed);
                let mut mem_b = mem_a.clone();
                let args = args_fn(seed);
                let a = run(&w.program, entry, &args, &mut mem_a, FUEL).unwrap();
                let b = run(&ev.compiled.program, entry, &args, &mut mem_b, FUEL)
                    .unwrap_or_else(|e| panic!("{}::{entry}: {e}", w.name));
                assert_eq!(a.ret, b.ret, "{}::{entry} seed {seed}", w.name);
                assert_eq!(mem_a, mem_b, "{}::{entry} seed {seed}", w.name);
            }
        }
    }
}

#[test]
fn table_lookup_codes_gain_from_memory_cfus() {
    // The whole point of the relaxation: kernels built around table
    // lookups fuse address arithmetic, the load and the combine into one
    // unit. Ratio-greedy's granularity bias keeps it from picking the
    // large load-bearing units (it must merely not regress); the
    // value-greedy selector must show clear gains.
    let plain = Customizer::new();
    let relaxed = Customizer::with_memory_cfus();
    let mut improved = 0;
    for name in ["blowfish", "sha", "crc"] {
        let w = isax_workloads::by_name(name).unwrap();
        let (m1, _) = plain.customize(w.name, &w.program, 15.0);
        let s1 = plain
            .evaluate(&w.program, &m1, MatchOptions::exact())
            .speedup;
        let analysis = relaxed.analyze(&w.program);
        let (m2, _) = relaxed.select(w.name, &analysis, 15.0);
        let s2 = relaxed
            .evaluate(&w.program, &m2, MatchOptions::exact())
            .speedup;
        assert!(
            s2 >= s1 * 0.98,
            "{name}: relaxation must not lose much under ratio-greedy ({s1:.3} -> {s2:.3})"
        );
        let sel = select_greedy(
            &analysis.cfus,
            &SelectConfig {
                objective: Objective::Value,
                ..SelectConfig::with_budget(15.0)
            },
        );
        let m3 = Mdes::from_selection(w.name, &analysis.cfus, &sel, &relaxed.hw, 64);
        let s3 = relaxed
            .evaluate(&w.program, &m3, MatchOptions::exact())
            .speedup;
        if s3 > s1 + 0.25 {
            improved += 1;
        }
    }
    assert!(
        improved >= 2,
        "value-greedy must clearly exploit memory CFUs on the lookup kernels"
    );
}

#[test]
fn load_bearing_units_appear_in_the_mdes() {
    // Value-objective selection reliably reaches the load-bearing units.
    let cz = Customizer::with_memory_cfus();
    let w = isax_workloads::by_name("blowfish").unwrap();
    let analysis = cz.analyze(&w.program);
    let sel = select_greedy(
        &analysis.cfus,
        &SelectConfig {
            objective: Objective::Value,
            ..SelectConfig::with_budget(15.0)
        },
    );
    let mdes = Mdes::from_selection(w.name, &analysis.cfus, &sel, &cz.hw, 64);
    let with_loads = mdes
        .cfus
        .iter()
        .filter(|c| c.pattern.node_ids().any(|n| c.pattern[n].opcode.is_load()))
        .count();
    assert!(with_loads > 0, "no load-bearing CFU selected for blowfish");
    // And the compiled program records their cache-port usage.
    let ev = cz.evaluate(&w.program, &mdes, MatchOptions::exact());
    assert!(ev.compiled.custom_info.values().any(|i| i.mem_reads > 0));
}

#[test]
fn stores_never_join_units() {
    let cz = Customizer::with_memory_cfus();
    for w in all() {
        let (mdes, _) = cz.customize(w.name, &w.program, 15.0);
        for c in &mdes.cfus {
            for n in c.pattern.node_ids() {
                assert!(
                    !c.pattern[n].opcode.is_store(),
                    "{}: store inside {}",
                    w.name,
                    c.name
                );
            }
        }
    }
}
