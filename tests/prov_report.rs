//! Schema validation for provenance reports (`--prov-out` / `ISAX_PROV`).
//!
//! A report is a contract with external tooling, so its shape is pinned
//! by a pure-Rust validator (no JSON-schema engine exists in this tree):
//! required fields, value types, the closed event-kind and fate
//! vocabularies, kind/stage pairing, and summary-vs-body consistency.
//!
//! Two consumers:
//! * an in-process report for the `crc` kernel, also byte-compared
//!   against `tests/golden/prov_crc.json` (rerun with `ISAX_BLESS=1` to
//!   bless intentional changes);
//! * every `*.json` under `ISAX_PROV_REPORT_DIR`, when set — the CI
//!   `prov` job points this at reports the release CLI generated for
//!   the whole benchmark suite.

use isax::{Customizer, MatchOptions};
use std::path::PathBuf;

fn ty(v: &isax_json::Value) -> &'static str {
    match v {
        isax_json::Value::Null => "null",
        isax_json::Value::Bool(_) => "bool",
        isax_json::Value::Int(_) | isax_json::Value::UInt(_) => "int",
        isax_json::Value::Float(_) => "float",
        isax_json::Value::Str(_) => "string",
        isax_json::Value::Array(_) => "array",
        isax_json::Value::Object(_) => "object",
    }
}

/// Checks `v[key]` exists and satisfies `ok`; records a problem if not.
fn field(
    problems: &mut Vec<String>,
    at: &str,
    v: &isax_json::Value,
    key: &str,
    kind: &str,
    ok: impl Fn(&isax_json::Value) -> bool,
) {
    match v.get(key) {
        None => problems.push(format!("{at}: missing `{key}`")),
        Some(x) if !ok(x) => {
            problems.push(format!("{at}: `{key}` should be {kind}, got {}", ty(x)))
        }
        Some(_) => {}
    }
}

fn is_u(v: &isax_json::Value) -> bool {
    v.as_u64().is_some()
}

fn is_f(v: &isax_json::Value) -> bool {
    v.as_f64().is_some()
}

fn is_s(v: &isax_json::Value) -> bool {
    v.as_str().is_some()
}

fn check_score(problems: &mut Vec<String>, at: &str, s: &isax_json::Value) {
    for axis in ["criticality", "latency", "area", "io", "total"] {
        field(problems, at, s, axis, "a number", is_f);
    }
}

/// Validates one parsed provenance report against the version-1 schema.
/// Returns every problem found (empty = valid).
fn validate_report(doc: &isax_json::Value) -> Vec<String> {
    let mut problems = Vec::new();
    let p = &mut problems;
    field(p, "report", doc, "version", "an integer", is_u);
    if let Some(v) = doc.get("version").and_then(|v| v.as_u64()) {
        if v != isax_prov::REPORT_VERSION {
            p.push(format!("report: unknown version {v}"));
        }
    }
    field(p, "report", doc, "app", "a string", is_s);
    field(p, "report", doc, "summary", "an object", |v| {
        v.as_object().is_some()
    });
    if let Some(s) = doc.get("summary") {
        field(p, "summary", s, "candidates", "an integer", is_u);
        field(p, "summary", s, "events", "an integer", is_u);
        for (group, keys) in [
            ("fates", ["selected", "not_selected", "pruned"]),
            ("stages", ["explore", "select", "compile"]),
        ] {
            match s.get(group) {
                None => p.push(format!("summary: missing `{group}`")),
                Some(g) => {
                    for k in keys {
                        field(p, &format!("summary.{group}"), g, k, "an integer", is_u);
                    }
                }
            }
        }
    }
    let Some(cands) = doc.get("candidates").and_then(|v| v.as_array()) else {
        problems.push("report: missing `candidates` array".into());
        return problems;
    };
    let mut fate_counts = (0u64, 0u64, 0u64);
    for (i, c) in cands.iter().enumerate() {
        let at = format!("candidate[{i}]");
        field(p, &at, c, "fingerprint", "a 16-digit hex string", |v| {
            v.as_str().is_some_and(|s| {
                s.len() == 16
                    && s.bytes()
                        .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
            })
        });
        field(p, &at, c, "fate", "selected|not_selected|pruned", |v| {
            matches!(v.as_str(), Some("selected" | "not_selected" | "pruned"))
        });
        match c.get("fate").and_then(|v| v.as_str()) {
            Some("selected") => fate_counts.0 += 1,
            Some("not_selected") => fate_counts.1 += 1,
            Some("pruned") => fate_counts.2 += 1,
            _ => {}
        }
        for opt in ["cfu", "matches", "cycles_saved"] {
            if let Some(v) = c.get(opt) {
                if !is_u(v) {
                    p.push(format!("{at}: `{opt}` should be an integer, got {}", ty(v)));
                }
            }
        }
        let Some(events) = c.get("events").and_then(|v| v.as_array()) else {
            p.push(format!("{at}: missing `events` array"));
            continue;
        };
        if events.is_empty() {
            p.push(format!("{at}: empty `events` array"));
        }
        for (j, e) in events.iter().enumerate() {
            let at = format!("{at}.events[{j}]");
            let kind = e.get("event").and_then(|v| v.as_str()).unwrap_or("");
            let expected_stage = match kind {
                "discovered" | "pruned" => "explore",
                "subsumed_by" | "wildcarded" | "selected_as_cfu" => "select",
                "matched" | "replaced" => "compile",
                other => {
                    p.push(format!("{at}: unknown event kind `{other}`"));
                    continue;
                }
            };
            if e.get("stage").and_then(|v| v.as_str()) != Some(expected_stage) {
                p.push(format!(
                    "{at}: `{kind}` must carry stage `{expected_stage}`"
                ));
            }
            match kind {
                "discovered" => {
                    for k in ["dfg", "size", "inputs", "outputs"] {
                        field(p, &at, e, k, "an integer", is_u);
                    }
                    for k in ["delay", "area"] {
                        field(p, &at, e, k, "a number", is_f);
                    }
                    if let Some(s) = e.get("score") {
                        check_score(p, &at, s);
                    }
                }
                "pruned" => {
                    field(p, &at, e, "dfg", "an integer", is_u);
                    field(p, &at, e, "threshold", "a number", is_f);
                    field(
                        p,
                        &at,
                        e,
                        "reason",
                        "below_threshold|fanout_cap|beam_dropped",
                        |v| {
                            matches!(
                                v.as_str(),
                                Some("below_threshold" | "fanout_cap" | "beam_dropped")
                            )
                        },
                    );
                    match e.get("score") {
                        None => p.push(format!("{at}: missing `score`")),
                        Some(s) => check_score(p, &at, s),
                    }
                }
                "subsumed_by" => field(p, &at, e, "cfu", "an integer", is_u),
                "wildcarded" => field(p, &at, e, "partner", "an integer", is_u),
                "selected_as_cfu" => {
                    field(p, &at, e, "cfu", "an integer", is_u);
                    field(p, &at, e, "estimated_value", "an integer", is_u);
                    for k in ["area", "delay"] {
                        field(p, &at, e, k, "a number", is_f);
                    }
                }
                "matched" => {
                    field(p, &at, e, "function", "a string", is_s);
                    for k in ["block", "count"] {
                        field(p, &at, e, k, "an integer", is_u);
                    }
                }
                "replaced" => {
                    field(p, &at, e, "function", "a string", is_s);
                    for k in ["block", "cycles_before", "cycles_after"] {
                        field(p, &at, e, k, "an integer", is_u);
                    }
                }
                _ => unreachable!(),
            }
        }
    }
    // The summary must agree with the body it summarizes.
    if let Some(s) = doc.get("summary") {
        let expect = [
            ("candidates", cands.len() as u64),
            ("fates.selected", fate_counts.0),
            ("fates.not_selected", fate_counts.1),
            ("fates.pruned", fate_counts.2),
        ];
        for (path, want) in expect {
            let got = match path.split_once('.') {
                Some((g, k)) => s.get(g).and_then(|g| g.get(k)).and_then(|v| v.as_u64()),
                None => s.get(path).and_then(|v| v.as_u64()),
            };
            if got != Some(want) {
                problems.push(format!("summary.{path}: {got:?} != body count {want}"));
            }
        }
    }
    problems
}

/// The CLI's `customize --prov-out` log assembly, in process.
fn crc_report() -> isax_json::Value {
    let _on = isax_prov::enable();
    let cz = Customizer::new();
    let w = isax_workloads::by_name("crc").unwrap();
    let analysis = cz.analyze(&w.program);
    let (mdes, sel) = cz.select("crc", &analysis, 6.0);
    let ev = cz.evaluate(&w.program, &mdes, MatchOptions::with_subsumed());
    let mut log = analysis.prov.clone();
    log.merge(sel.prov.clone());
    log.merge(ev.compiled.prov.clone());
    isax::build_report("crc", &log)
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Byte-for-byte comparison against `tests/golden/<name>`, or a
/// regeneration pass when `ISAX_BLESS=1`.
fn check_golden(name: &str, rendered: &str) {
    let path = golden_path(name);
    if std::env::var("ISAX_BLESS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\nrun with ISAX_BLESS=1 to generate the snapshot",
            path.display()
        )
    });
    assert!(
        expected == rendered,
        "{name} drifted from its golden snapshot.\n\
         If the change is intentional, rerun with ISAX_BLESS=1 and commit \
         the new snapshot.\n--- golden ---\n{expected}\n--- rendered ---\n{rendered}",
    );
}

#[test]
fn crc_report_is_valid_and_stable() {
    let doc = crc_report();
    let problems = validate_report(&doc);
    assert!(
        problems.is_empty(),
        "schema violations:\n{}",
        problems.join("\n")
    );
    let mut text = doc.to_string_pretty();
    text.push('\n');
    check_golden("prov_crc.json", &text);
}

#[test]
fn validator_rejects_malformed_reports() {
    let doc = crc_report();
    let text = doc.to_string_pretty();
    for (needle, replacement) in [
        ("\"version\": 1", "\"version\": 99"),
        ("\"fate\": \"selected\"", "\"fate\": \"blessed\""),
        ("\"event\": \"discovered\"", "\"event\": \"imagined\""),
        ("\"stage\": \"select\"", "\"stage\": \"compile\""),
    ] {
        let corrupted = text.replacen(needle, replacement, 1);
        assert_ne!(corrupted, text, "corruption `{needle}` did not apply");
        let doc = isax_json::parse(&corrupted).unwrap();
        assert!(
            !validate_report(&doc).is_empty(),
            "validator accepted a report corrupted via `{needle}`"
        );
    }
}

/// CI hook: validate every CLI-generated report in `ISAX_PROV_REPORT_DIR`.
#[test]
fn all_cli_generated_reports_validate() {
    let Ok(dir) = std::env::var("ISAX_PROV_REPORT_DIR") else {
        eprintln!("ISAX_PROV_REPORT_DIR not set — skipping CLI-report sweep");
        return;
    };
    let mut seen = 0usize;
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("{dir}: {e}"))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    entries.sort();
    for path in entries {
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = isax_json::parse(&text)
            .unwrap_or_else(|e| panic!("{}: parse error {e}", path.display()));
        let problems = validate_report(&doc);
        assert!(
            problems.is_empty(),
            "{}: schema violations:\n{}",
            path.display(),
            problems.join("\n")
        );
        seen += 1;
    }
    assert!(seen > 0, "{dir}: no *.json reports found");
    eprintln!("validated {seen} provenance report(s) from {dir}");
}
