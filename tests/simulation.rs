//! Timing-simulation validation: the simulator and the estimator must
//! tell a consistent story on every benchmark, and custom instructions
//! must shorten *simulated* execution too (not just the static estimate).

use isax::{Customizer, MatchOptions};
use isax_compiler::CustomInfo;
use isax_compiler::VliwModel;
use isax_hwlib::HwLibrary;
use isax_machine::{simulate, Memory};

const FUEL: u64 = 50_000_000;

#[test]
fn customization_shortens_simulated_time_on_every_benchmark() {
    let cz = Customizer::new();
    let hw = HwLibrary::micron_018();
    let model = VliwModel::default();
    for w in isax_workloads::all() {
        let (mdes, _) = cz.customize(w.name, &w.program, 15.0);
        let ev = cz.evaluate(&w.program, &mdes, MatchOptions::exact());
        let mut mem_a = Memory::new();
        (w.init_memory)(&mut mem_a, 3);
        let mut mem_b = mem_a.clone();
        let args = (w.args)(3);
        let base = simulate(
            &w.program,
            w.entry,
            &args,
            &mut mem_a,
            &CustomInfo::new(),
            &hw,
            &model,
            FUEL,
        )
        .unwrap_or_else(|e| panic!("{} baseline sim: {e}", w.name));
        let custom = simulate(
            &ev.compiled.program,
            w.entry,
            &args,
            &mut mem_b,
            &ev.compiled.custom_info,
            &hw,
            &model,
            FUEL,
        )
        .unwrap_or_else(|e| panic!("{} custom sim: {e}", w.name));
        assert_eq!(base.outcome.ret, custom.outcome.ret, "{}", w.name);
        assert!(
            custom.cycles <= base.cycles,
            "{}: custom {} cycles > baseline {}",
            w.name,
            custom.cycles,
            base.cycles
        );
        // And where the estimator predicts a win, the simulation agrees.
        if ev.custom_cycles < ev.baseline_cycles {
            assert!(
                custom.cycles < base.cycles,
                "{}: estimator predicts a win the simulator does not see",
                w.name
            );
        }
    }
}

#[test]
fn estimated_speedups_track_simulated_ones() {
    // The §3.3 accuracy claim: the profile-weighted estimate is close to
    // exact measurement. Our profile weights are synthetic, so demand
    // agreement within 25% relative error on the speedup ratio.
    let cz = Customizer::new();
    let hw = HwLibrary::micron_018();
    let model = VliwModel::default();
    for w in isax_workloads::all() {
        let (mdes, _) = cz.customize(w.name, &w.program, 15.0);
        let ev = cz.evaluate(&w.program, &mdes, MatchOptions::exact());
        let estimated = ev.speedup;
        let mut mem_a = Memory::new();
        (w.init_memory)(&mut mem_a, 9);
        let mut mem_b = mem_a.clone();
        let args = (w.args)(9);
        let base = simulate(
            &w.program,
            w.entry,
            &args,
            &mut mem_a,
            &CustomInfo::new(),
            &hw,
            &model,
            FUEL,
        )
        .unwrap();
        let custom = simulate(
            &ev.compiled.program,
            w.entry,
            &args,
            &mut mem_b,
            &ev.compiled.custom_info,
            &hw,
            &model,
            FUEL,
        )
        .unwrap();
        let simulated = base.cycles as f64 / custom.cycles.max(1) as f64;
        let rel = (estimated - simulated).abs() / simulated;
        assert!(
            rel < 0.25,
            "{}: estimated {estimated:.3} vs simulated {simulated:.3} ({:.0}% off)",
            w.name,
            rel * 100.0
        );
    }
}

#[test]
fn simulated_cycles_decompose_into_block_schedules() {
    // cycles == Σ executions × schedule length, by construction — verify
    // the invariant explicitly for one benchmark.
    let hw = HwLibrary::micron_018();
    let model = VliwModel::default();
    let w = isax_workloads::by_name("crc").unwrap();
    let mut mem = Memory::new();
    (w.init_memory)(&mut mem, 1);
    let r = simulate(
        &w.program,
        w.entry,
        &(w.args)(1),
        &mut mem,
        &CustomInfo::new(),
        &hw,
        &model,
        FUEL,
    )
    .unwrap();
    let f = &w.program.functions[0];
    let dfgs = isax_ir::function_dfgs(f);
    let total: u64 = dfgs
        .iter()
        .enumerate()
        .map(|(bi, dfg)| {
            let s = isax_compiler::schedule_block(
                dfg,
                &f.blocks[bi].term,
                &hw,
                &CustomInfo::new(),
                &model,
            );
            s.cycles as u64 * r.block_executions[bi]
        })
        .sum();
    assert_eq!(r.cycles, total);
    assert_eq!(r.block_executions[1], isax_workloads::crc::MSG_LEN as u64);
}
