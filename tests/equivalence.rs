//! The strongest correctness property in the repository: for every
//! benchmark, compiling against customized hardware must not change what
//! the program computes.
//!
//! Each workload is customized at several budgets and matching
//! generalities, then the original and the rewritten programs are
//! executed by the `isax-machine` interpreter on multiple seeds; returned
//! values must agree exactly. (Custom instructions execute through the
//! semantics the replacement pass registered, so this exercises matching,
//! reordering, operand wiring and output selection end to end.)

use isax::{Customizer, MatchOptions};
use isax_machine::{run, Memory};
use isax_workloads::{all, Workload};

const FUEL: u64 = 50_000_000;

fn check_equivalence(w: &Workload, budget: f64, matching: MatchOptions, seeds: &[u64]) {
    let cz = Customizer::new();
    let (mdes, _) = cz.customize(w.name, &w.program, budget);
    let ev = cz.evaluate(&w.program, &mdes, matching);
    isax_ir::verify_program(&ev.compiled.program)
        .unwrap_or_else(|e| panic!("{}: customized program invalid: {e:?}", w.name));
    for &seed in seeds {
        for (entry, args_fn) in w.entries() {
            let mut mem_a = Memory::new();
            (w.init_memory)(&mut mem_a, seed);
            let mut mem_b = mem_a.clone();
            let args = args_fn(seed);
            let a = run(&w.program, entry, &args, &mut mem_a, FUEL)
                .unwrap_or_else(|e| panic!("{}::{entry} baseline run failed: {e}", w.name));
            let b = run(&ev.compiled.program, entry, &args, &mut mem_b, FUEL)
                .unwrap_or_else(|e| panic!("{}::{entry} customized run failed: {e}", w.name));
            assert_eq!(
                a.ret, b.ret,
                "{}::{entry} @ {budget} adders ({matching:?}): outputs diverge on seed {seed}",
                w.name
            );
            assert_eq!(
                mem_a, mem_b,
                "{}::{entry} @ {budget} adders ({matching:?}): memory diverges on seed {seed}",
                w.name
            );
            assert!(
                b.steps <= a.steps,
                "{}::{entry}: custom instructions never add dynamic operations",
                w.name
            );
        }
    }
}

#[test]
fn all_benchmarks_exact_matching_budget_15() {
    for w in all() {
        check_equivalence(&w, 15.0, MatchOptions::exact(), &[1, 2, 3]);
    }
}

#[test]
fn all_benchmarks_subsumed_matching_budget_15() {
    for w in all() {
        check_equivalence(&w, 15.0, MatchOptions::with_subsumed(), &[4, 5]);
    }
}

#[test]
fn all_benchmarks_wildcard_matching_budget_15() {
    for w in all() {
        check_equivalence(&w, 15.0, MatchOptions::generalized(), &[6, 7]);
    }
}

#[test]
fn small_budgets_are_equally_sound() {
    for w in all() {
        for budget in [1.0, 3.0] {
            check_equivalence(&w, budget, MatchOptions::exact(), &[8]);
        }
    }
}

#[test]
fn cross_compiled_programs_stay_correct() {
    // Compile each benchmark against a *different* benchmark's CFUs with
    // the most aggressive matching — still must compute the same thing.
    let ws = all();
    let cz = Customizer::new();
    for d in isax_workloads::Domain::ALL {
        let members: Vec<&Workload> = ws.iter().filter(|w| w.domain == d).collect();
        let src = members[0];
        let (mdes, _) = cz.customize(src.name, &src.program, 15.0);
        for w in members.iter().skip(1) {
            let ev = cz.evaluate(&w.program, &mdes, MatchOptions::generalized());
            isax_ir::verify_program(&ev.compiled.program).expect("valid");
            let mut mem_a = Memory::new();
            (w.init_memory)(&mut mem_a, 11);
            let mut mem_b = mem_a.clone();
            let args = (w.args)(11);
            let a = run(&w.program, w.entry, &args, &mut mem_a, FUEL).expect("base");
            let b = run(&ev.compiled.program, w.entry, &args, &mut mem_b, FUEL).expect("custom");
            assert_eq!(a.ret, b.ret, "{} on {}'s CFUs", w.name, src.name);
            assert_eq!(mem_a, mem_b, "{} on {}'s CFUs", w.name, src.name);
        }
    }
}
