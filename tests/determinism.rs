//! Thread-count determinism: the parallel pipeline must produce results
//! byte-identical to the serial one.
//!
//! The `isax_graph::par` layer promises that `ISAX_THREADS=N` only
//! changes wall-clock time, never output (every result is collected at
//! its input index). This test pins the thread count to 1 and then to 4
//! via the in-process override and compares the *entire* Analysis
//! (candidates, combined CFUs, statistics), the serialized MDES, and
//! the Evaluation (cycle counts and compiled code) on multiple kernels.
//!
//! This file intentionally holds a single `#[test]`: the override is
//! process-global, so the comparison must not race with other tests in
//! the same binary. Each integration-test file is its own process, so
//! the rest of the suite is unaffected.

use isax::{Customizer, MatchOptions};
use isax_graph::par::set_thread_override;

/// Everything the pipeline produces for one kernel at one budget,
/// captured in directly comparable form.
struct PipelineOutput {
    raw_candidates: Vec<isax_explore::Candidate>,
    cfus: Vec<isax_select::CfuCandidate>,
    examined: u64,
    recorded: u64,
    mdes_json: String,
    baseline_cycles: u64,
    custom_cycles: u64,
    compiled_blocks: Vec<Vec<isax_ir::BasicBlock>>,
}

fn run_pipeline(name: &str, budget: f64) -> PipelineOutput {
    let w = isax_workloads::by_name(name).unwrap();
    let cz = Customizer::new();
    let analysis = cz.analyze(&w.program);
    let (mdes, _) = cz.select(w.name, &analysis, budget);
    let ev = cz.evaluate(&w.program, &mdes, MatchOptions::with_subsumed());
    PipelineOutput {
        raw_candidates: analysis.raw_candidates,
        cfus: analysis.cfus,
        examined: analysis.stats.examined,
        recorded: analysis.stats.recorded,
        mdes_json: mdes.to_json().unwrap(),
        baseline_cycles: ev.baseline_cycles,
        custom_cycles: ev.custom_cycles,
        compiled_blocks: ev
            .compiled
            .program
            .functions
            .iter()
            .map(|f| f.blocks.clone())
            .collect(),
    }
}

#[test]
fn parallel_pipeline_is_bit_identical_to_serial() {
    for name in ["blowfish", "crc", "mpeg2dec"] {
        set_thread_override(Some(1));
        let serial = run_pipeline(name, 15.0);
        set_thread_override(Some(4));
        let parallel = run_pipeline(name, 15.0);
        set_thread_override(None);

        assert_eq!(
            serial.raw_candidates, parallel.raw_candidates,
            "{name}: exploration candidates differ between 1 and 4 threads"
        );
        assert_eq!(
            serial.cfus, parallel.cfus,
            "{name}: combined CFU candidates (incl. subsumption/wildcard \
             annotations) differ"
        );
        assert_eq!(serial.examined, parallel.examined, "{name}: examined");
        assert_eq!(serial.recorded, parallel.recorded, "{name}: recorded");
        assert_eq!(
            serial.mdes_json, parallel.mdes_json,
            "{name}: serialized MDES differs"
        );
        assert_eq!(
            serial.baseline_cycles, parallel.baseline_cycles,
            "{name}: baseline cycles"
        );
        assert_eq!(
            serial.custom_cycles, parallel.custom_cycles,
            "{name}: customized cycles"
        );
        assert_eq!(
            serial.compiled_blocks, parallel.compiled_blocks,
            "{name}: compiled code differs"
        );
    }
}
