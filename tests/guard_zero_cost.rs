//! Zero-cost-by-default: an inactive guard (the default — no budget, no
//! deadline, no fault plan) must leave every pipeline artifact
//! byte-identical to the pre-governance code paths, with no degradation
//! records. Governed entry points dispatch on `Guard::is_active()`
//! straight to the historical implementations, and this suite pins that
//! contract on real benchmark kernels.

use isax::{Customizer, Guard, MatchOptions};
use isax_workloads::by_name;

/// Artifacts worth diffing between an explicitly-defaulted run and one
/// carrying an explicit (but inactive) unlimited guard.
fn run(cz: &Customizer, name: &str) -> (String, String, u64, usize) {
    let w = by_name(name).unwrap_or_else(|| panic!("unknown workload {name}"));
    let analysis = cz.analyze(&w.program);
    assert!(
        analysis.degradations.is_empty(),
        "{name}: inactive guard produced analysis degradations"
    );
    let (mdes, sel) = cz.select(name, &analysis, 15.0);
    assert!(
        sel.degradations.is_empty(),
        "{name}: inactive guard produced selection degradations"
    );
    let ev = cz.evaluate(&w.program, &mdes, MatchOptions::exact());
    assert!(
        ev.compiled.degradations.is_empty(),
        "{name}: inactive guard produced compile degradations"
    );
    let assembly = ev
        .compiled
        .program
        .functions
        .iter()
        .map(|f| f.to_string())
        .collect::<Vec<_>>()
        .join("\n");
    (
        mdes.to_json().expect("mdes serializes"),
        assembly,
        ev.custom_cycles,
        analysis.cfus.len(),
    )
}

/// `Guard::unlimited()` is indistinguishable from the default
/// environment-derived guard when no governance env vars are set.
#[test]
fn unlimited_guard_is_byte_identical_to_default() {
    for name in ["crc", "sha"] {
        let default_cz = Customizer::new();
        assert!(
            !default_cz.guard.is_active(),
            "test environment unexpectedly configures governance \
             (ISAX_BUDGET / ISAX_DEADLINE_MS / ISAX_FAULT set?)"
        );
        let mut explicit_cz = Customizer::new();
        explicit_cz.guard = Guard::unlimited();
        assert_eq!(run(&default_cz, name), run(&explicit_cz, name), "{name}");
    }
}

/// An *active* guard whose budget is far larger than the actual work
/// must also change nothing except being observable: same artifacts,
/// zero degradations. This pins the metered code paths against the
/// legacy ones.
#[test]
fn huge_budget_matches_ungoverned_artifacts() {
    let name = "crc";
    let ungoverned = Customizer::new();
    let mut governed = Customizer::new();
    governed.guard = Guard::unlimited().with_units(u64::MAX / 2);
    assert!(governed.guard.is_active());
    assert_eq!(run(&ungoverned, name), run(&governed, name), "{name}");
}
