//! Control-flow relaxation (§6) end to end: if-converted programs must
//! compute identical results, and conversion + customization must
//! compound on branchy kernels.

use isax::{Customizer, MatchOptions};
use isax_compiler::{if_convert_program, IfConvertConfig};
use isax_machine::{run, Memory};
use proptest::prelude::*;

const FUEL: u64 = 50_000_000;

#[test]
fn every_benchmark_survives_if_conversion() {
    let cfg = IfConvertConfig::default();
    for w in isax_workloads::all() {
        let (converted, _) = if_convert_program(&w.program, &cfg);
        isax_ir::verify_program(&converted)
            .unwrap_or_else(|e| panic!("{}: invalid after if-conversion: {e:?}", w.name));
        for (entry, args_fn) in w.entries() {
            for seed in [1u64, 4] {
                let mut mem_a = Memory::new();
                (w.init_memory)(&mut mem_a, seed);
                let mut mem_b = mem_a.clone();
                let args = args_fn(seed);
                let a = run(&w.program, entry, &args, &mut mem_a, FUEL).unwrap();
                let b = run(&converted, entry, &args, &mut mem_b, FUEL)
                    .unwrap_or_else(|e| panic!("{}::{entry}: {e}", w.name));
                assert_eq!(a.ret, b.ret, "{}::{entry} seed {seed}", w.name);
                assert_eq!(mem_a, mem_b, "{}::{entry} seed {seed}", w.name);
            }
        }
    }
}

#[test]
fn conversion_plus_customization_stays_correct() {
    let cfg = IfConvertConfig::default();
    let cz = Customizer::new();
    for name in ["mpeg2dec", "cjpeg", "ipchains", "crc"] {
        let w = isax_workloads::by_name(name).unwrap();
        let (converted, stats) = if_convert_program(&w.program, &cfg);
        let (mdes, _) = cz.customize(w.name, &converted, 15.0);
        let ev = cz.evaluate(&converted, &mdes, MatchOptions::exact());
        isax_ir::verify_program(&ev.compiled.program).expect("valid");
        if name == "mpeg2dec" {
            assert!(
                stats.diamonds + stats.triangles > 0,
                "mpeg2dec's clip must convert"
            );
        }
        let mut mem_a = Memory::new();
        (w.init_memory)(&mut mem_a, 2);
        let mut mem_b = mem_a.clone();
        let args = (w.args)(2);
        let a = run(&w.program, w.entry, &args, &mut mem_a, FUEL).unwrap();
        let b = run(&ev.compiled.program, w.entry, &args, &mut mem_b, FUEL).unwrap();
        assert_eq!(a.ret, b.ret, "{name}");
        assert_eq!(mem_a, mem_b, "{name}");
    }
}

#[test]
fn branchy_kernels_speed_up_with_conversion() {
    // The point of the relaxation: if-conversion exposes the clip /
    // quantize dataflow to the explorer.
    let cz = Customizer::new();
    let mut helped = 0;
    for name in ["mpeg2dec", "cjpeg"] {
        let w = isax_workloads::by_name(name).unwrap();
        let base = {
            let (mdes, _) = cz.customize(w.name, &w.program, 15.0);
            cz.evaluate(&w.program, &mdes, MatchOptions::exact())
        };
        let (converted, _) = if_convert_program(&w.program, &IfConvertConfig::default());
        let conv = {
            let (mdes, _) = cz.customize(w.name, &converted, 15.0);
            cz.evaluate(&converted, &mdes, MatchOptions::exact())
        };
        // Compare absolute customized cycle counts: both versions do the
        // same work.
        if conv.custom_cycles < base.custom_cycles {
            helped += 1;
        }
    }
    assert!(helped >= 1, "conversion should pay off on a branchy kernel");
}

/// Reconstruction of the recorded regression
/// (`ifconvert.proptest-regressions`, case e8be773e): `shapes =
/// [(false, 0, 0)]`, `args = [0, 0, 0]` — a single *triangle* (the
/// `no` side is empty) whose condition `lt(acc, a)` is false on zero
/// inputs, so the converted select must pick the unmodified
/// accumulator. Kept as a deterministic unit test because the vendored
/// proptest cannot replay upstream seeds.
#[test]
fn recorded_regression_single_empty_triangle() {
    let mut fb = isax_ir::FunctionBuilder::new("dia", 3);
    let (a, _b, _c) = (fb.param(0), fb.param(1), fb.param(2));
    let acc = fb.fresh();
    fb.copy_to(acc, a);
    let yes = fb.new_block(10);
    let no = fb.new_block(10);
    let join = fb.new_block(20);
    let cond = fb.lt(acc, a);
    fb.branch(cond, yes, no);
    fb.switch_to(yes);
    let v1 = fb.add(acc, 0i64);
    fb.copy_to(acc, v1);
    fb.jump(join);
    fb.switch_to(no);
    fb.jump(join);
    fb.switch_to(join);
    fb.ret(&[acc.into()]);
    let p = isax_ir::Program::new(vec![fb.finish()]);
    let (converted, _) = if_convert_program(&p, &IfConvertConfig::default());
    isax_ir::verify_program(&converted).expect("converted program must verify");
    let args = [0u32, 0, 0];
    let x = run(&p, "dia", &args, &mut Memory::new(), 100_000).unwrap();
    let y = run(&converted, "dia", &args, &mut Memory::new(), 100_000).unwrap();
    assert_eq!(x.ret, y.ret);
}

proptest! {
    #![proptest_config(ProptestConfig::with_env_cases(64))]

    /// Random diamond chains: if-converted programs agree with the
    /// originals on random inputs.
    #[test]
    fn random_diamond_chains_are_equivalent(
        shapes in proptest::collection::vec((any::<bool>(), 0usize..5, -50i64..50), 1..6),
        args in proptest::array::uniform3(any::<u32>()),
    ) {
        let mut fb = isax_ir::FunctionBuilder::new("dia", 3);
        let (a, b, c) = (fb.param(0), fb.param(1), fb.param(2));
        let acc = fb.fresh();
        fb.copy_to(acc, a);
        let mut blocks = Vec::new();
        for _ in &shapes {
            blocks.push((fb.new_block(10), fb.new_block(10), fb.new_block(20)));
        }
        // Entry branches into the first diamond.
        for (i, &(diamond, pick, imm)) in shapes.iter().enumerate() {
            let (yes, no, join) = blocks[i];
            let operand = [a, b, c][pick % 3];
            let cond = fb.lt(acc, operand);
            fb.branch(cond, yes, no);
            fb.switch_to(yes);
            let v1 = fb.add(acc, imm);
            fb.copy_to(acc, v1);
            fb.jump(join);
            fb.switch_to(no);
            if diamond {
                let v2 = fb.xor(acc, operand);
                fb.copy_to(acc, v2);
            }
            fb.jump(join);
            fb.switch_to(join);
        }
        fb.ret(&[acc.into()]);
        let f = fb.finish();
        let p = isax_ir::Program::new(vec![f]);
        let (converted, _) = if_convert_program(&p, &IfConvertConfig::default());
        prop_assert!(isax_ir::verify_program(&converted).is_ok());
        let x = run(&p, "dia", &args, &mut Memory::new(), 100_000).unwrap();
        let y = run(&converted, "dia", &args, &mut Memory::new(), 100_000).unwrap();
        prop_assert_eq!(x.ret, y.ret);
    }
}
