//! The acceptance gate for the invariant checker: every benchmark runs
//! through the full pipeline with checking enabled at every checkpoint,
//! and must produce **zero** diagnostics — the checker validates the
//! pipeline, and the pipeline's thirteen kernels validate the checker's
//! clean path. Each kernel is additionally verified differentially: the
//! original and customized programs are interpreted on real workload
//! inputs and must agree bit-for-bit.

use isax::{Customizer, MatchOptions};
use isax_check::check_differential;
use isax_graph::par;
use isax_machine::Memory;
use isax_workloads::{all, by_name, Workload};

const FUEL: u64 = 50_000_000;

/// Runs one workload through analyze/select/evaluate with every
/// checkpoint armed (any violation panics inside the pipeline), then
/// differentially executes every entry point on the given seeds.
fn run_checked(w: &Workload, seeds: &[u64]) {
    let mut cz = Customizer::new();
    cz.check = true;
    let analysis = cz.analyze(&w.program);
    let (mdes, _) = cz.select(w.name, &analysis, 15.0);
    let ev = cz.evaluate(&w.program, &mdes, MatchOptions::exact());
    assert!(
        ev.custom_cycles <= ev.baseline_cycles,
        "{}: customization made the estimate worse",
        w.name
    );

    for &seed in seeds {
        for (entry, args_fn) in w.entries() {
            let mut mem = Memory::new();
            (w.init_memory)(&mut mem, seed);
            let report = check_differential(
                &w.program,
                &ev.compiled.program,
                entry,
                &args_fn(seed),
                &mem,
                FUEL,
            );
            assert!(
                report.is_clean(),
                "{}::{entry} seed {seed} diverges:\n{report}",
                w.name
            );
        }
    }
}

#[test]
fn all_benchmarks_pass_every_checkpoint() {
    for w in all() {
        run_checked(&w, &[1, 2]);
    }
}

/// The checkpoints must hold identically under serial and parallel
/// execution — the deterministic fan-out must not change any artifact
/// the checker looks at.
#[test]
fn checkpoints_hold_across_thread_counts() {
    let kernels = ["blowfish", "sha", "gsmdecode"];
    for threads in [1usize, 4] {
        par::set_thread_override(Some(threads));
        for name in kernels {
            let w = by_name(name).unwrap_or_else(|| panic!("unknown workload {name}"));
            run_checked(&w, &[3]);
        }
    }
    par::set_thread_override(None);
}
