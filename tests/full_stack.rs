//! Everything at once: if-conversion, memory-relaxed hardware,
//! value-objective selection, wildcard + subsumed matching — the most
//! aggressive configuration the repository supports must still compute
//! exactly what the original benchmarks compute.

use isax::{Customizer, MatchOptions, Mdes};
use isax_compiler::{if_convert_program, IfConvertConfig};
use isax_machine::{run, Memory};
use isax_select::{select_greedy, Objective, SelectConfig};

const FUEL: u64 = 50_000_000;

#[test]
fn most_aggressive_configuration_is_still_sound() {
    let cz = Customizer::with_memory_cfus();
    for w in isax_workloads::all() {
        let (converted, _) = if_convert_program(&w.program, &IfConvertConfig::default());
        let analysis = cz.analyze(&converted);
        let sel = select_greedy(
            &analysis.cfus,
            &SelectConfig {
                objective: Objective::Value,
                ..SelectConfig::with_budget(15.0)
            },
        );
        let mdes = Mdes::from_selection(w.name, &analysis.cfus, &sel, &cz.hw, 64);
        let ev = cz.evaluate(&converted, &mdes, MatchOptions::generalized());
        isax_ir::verify_program(&ev.compiled.program)
            .unwrap_or_else(|e| panic!("{}: {e:?}", w.name));
        for (entry, args_fn) in w.entries() {
            let mut mem_a = Memory::new();
            (w.init_memory)(&mut mem_a, 6);
            let mut mem_b = mem_a.clone();
            let args = args_fn(6);
            let a = run(&w.program, entry, &args, &mut mem_a, FUEL).unwrap();
            let b = run(&ev.compiled.program, entry, &args, &mut mem_b, FUEL)
                .unwrap_or_else(|e| panic!("{}::{entry}: {e}", w.name));
            assert_eq!(a.ret, b.ret, "{}::{entry}", w.name);
            assert_eq!(mem_a, mem_b, "{}::{entry}", w.name);
        }
        // And the aggressive configuration must actually be fast.
        assert!(
            ev.custom_cycles <= ev.baseline_cycles,
            "{}: aggressive config slowed the program",
            w.name
        );
    }
}

#[test]
fn aggressive_configuration_beats_the_paper_system_on_average() {
    let paper = Customizer::new();
    let aggressive = Customizer::with_memory_cfus();
    let mut paper_sum = 0.0;
    let mut aggressive_sum = 0.0;
    let suite = isax_workloads::all();
    for w in &suite {
        let (m1, _) = paper.customize(w.name, &w.program, 15.0);
        paper_sum += paper
            .evaluate(&w.program, &m1, MatchOptions::exact())
            .speedup;

        let (converted, _) = if_convert_program(&w.program, &IfConvertConfig::default());
        let analysis = aggressive.analyze(&converted);
        let sel = select_greedy(
            &analysis.cfus,
            &SelectConfig {
                objective: Objective::Value,
                ..SelectConfig::with_budget(15.0)
            },
        );
        let mdes = Mdes::from_selection(w.name, &analysis.cfus, &sel, &aggressive.hw, 64);
        // Speedup relative to the ORIGINAL program's baseline.
        let base = paper
            .evaluate(&w.program, &Mdes::baseline(), MatchOptions::exact())
            .baseline_cycles;
        let custom = aggressive
            .evaluate(&converted, &mdes, MatchOptions::generalized())
            .custom_cycles;
        aggressive_sum += base as f64 / custom.max(1) as f64;
    }
    let n = suite.len() as f64;
    assert!(
        aggressive_sum / n > paper_sum / n + 0.3,
        "aggressive {:.2} vs paper {:.2}",
        aggressive_sum / n,
        paper_sum / n
    );
}
