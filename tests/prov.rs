//! Tentpole guarantees of the `isax-prov` decision-provenance layer:
//!
//! 1. **Determinism safety** — enabling provenance recording must not
//!    change a single byte of any compared artifact (MDES JSON,
//!    customized program text, cycle counts, matcher work). Events ride
//!    in per-stage return values and are merged at parallel join points
//!    in input order, so recording can never influence a decision.
//! 2. **Thread-count invariance** — the fully merged log, and the JSON
//!    report built from it, are byte-identical at any thread count.
//! 3. **Lifecycle invariants** — every candidate fingerprint reaches
//!    exactly one terminal fate; a `Matched` event implies the candidate
//!    was selected; a pruned candidate's pattern never reaches the MDES.
//! 4. **Env-form agreement** — `ISAX_PROV` and `ISAX_TRACE` parse their
//!    values with the same three-way table (`isax-trace` is
//!    dependency-free, so the table is duplicated; this test is what
//!    keeps the copies honest).
//!
//! The recording flag is process-global, so every test here serializes
//! on one lock (the same discipline as `tests/trace.rs`).

use isax::{Customizer, MatchOptions, ProvEvent, ProvLog};
use isax_graph::par::set_thread_override;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Mutex;

static TEST_LOCK: Mutex<()> = Mutex::new(());

/// Small enough for debug-mode CI; together they exercise multi-function
/// programs and single hot loops.
const KERNELS: [&str; 3] = ["crc", "rawcaudio", "rawdaudio"];

/// Everything a run produces that other tooling diffs byte-for-byte.
#[derive(PartialEq, Debug)]
struct Artifacts {
    mdes_json: String,
    program_text: String,
    baseline_cycles: u64,
    custom_cycles: u64,
    vf2_calls: u64,
}

struct ProvRun {
    artifacts: Artifacts,
    /// explore + select + compile logs merged in pipeline order — the
    /// same assembly the CLI performs for `--prov-out`.
    log: ProvLog,
    mdes: isax::Mdes,
}

fn program_text(p: &isax_ir::Program) -> String {
    p.functions
        .iter()
        .map(|f| f.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

fn run_pipeline(name: &str, budget: f64) -> ProvRun {
    let cz = Customizer::new();
    let w = isax_workloads::by_name(name).unwrap_or_else(|| panic!("unknown workload {name}"));
    let analysis = cz.analyze(&w.program);
    let (mdes, sel) = cz.select(name, &analysis, budget);
    let ev = cz.evaluate(&w.program, &mdes, MatchOptions::with_subsumed());
    let mut log = analysis.prov.clone();
    log.merge(sel.prov.clone());
    log.merge(ev.compiled.prov.clone());
    ProvRun {
        artifacts: Artifacts {
            mdes_json: mdes.to_json().expect("mdes serializes"),
            program_text: program_text(&ev.compiled.program),
            baseline_cycles: ev.baseline_cycles,
            custom_cycles: ev.custom_cycles,
            vf2_calls: ev.compiled.match_stats.vf2_calls,
        },
        log,
        mdes,
    }
}

#[test]
fn recording_is_invisible_in_every_compared_artifact() {
    let _guard = TEST_LOCK.lock().unwrap();
    for name in KERNELS {
        let disabled = run_pipeline(name, 6.0);
        assert!(
            disabled.log.is_empty(),
            "{name}: a disabled run must record nothing"
        );

        let enabled = {
            let _on = isax_prov::enable();
            run_pipeline(name, 6.0)
        };
        assert_eq!(
            disabled.artifacts, enabled.artifacts,
            "{name}: enabling provenance changed a compared artifact"
        );
        assert!(
            !enabled.log.is_empty(),
            "{name}: the enabled run recorded nothing — the pipeline is not wired"
        );
        // The stage wiring is complete: discovery, selection and
        // replacement all left events.
        let kinds: BTreeSet<&str> = enabled.log.events().iter().map(|(_, e)| e.kind()).collect();
        for kind in ["discovered", "selected_as_cfu", "replaced"] {
            assert!(kinds.contains(kind), "{name}: no `{kind}` event recorded");
        }
    }
}

#[test]
fn report_is_byte_identical_at_any_thread_count() {
    let _guard = TEST_LOCK.lock().unwrap();
    let _on = isax_prov::enable();
    let mut reports = Vec::new();
    for threads in [1, 4] {
        set_thread_override(Some(threads));
        let run = run_pipeline("crc", 6.0);
        reports.push(isax::build_report("crc", &run.log).to_string_pretty());
    }
    set_thread_override(None);
    assert_eq!(
        reports[0], reports[1],
        "provenance report diverged between 1 and 4 threads"
    );
}

/// Groups a merged log by fingerprint, preserving event order.
fn by_candidate(log: &ProvLog) -> BTreeMap<u64, Vec<&ProvEvent>> {
    let mut m: BTreeMap<u64, Vec<&ProvEvent>> = BTreeMap::new();
    for (fp, ev) in log.events() {
        m.entry(*fp).or_default().push(ev);
    }
    m
}

fn check_lifecycle_invariants(run: &ProvRun) -> Result<(), proptest::test_runner::TestCaseError> {
    let mdes_fps: BTreeSet<u64> = run
        .mdes
        .cfus
        .iter()
        .map(|c| isax_select::pattern_fingerprint(&c.pattern).0)
        .collect();
    for (fp, events) in by_candidate(&run.log) {
        let fate = isax::Fate::of(&events);
        let matched = events
            .iter()
            .any(|e| matches!(e, ProvEvent::Matched { .. }));
        let selected = events
            .iter()
            .any(|e| matches!(e, ProvEvent::SelectedAsCfu { .. }));
        // `Matched` implies the candidate became a CFU in this same run.
        prop_assert!(
            !matched || selected,
            "candidate {fp:016x} matched without being selected"
        );
        // A pruned candidate's pattern must never reach the MDES.
        if fate == isax::Fate::Pruned {
            prop_assert!(
                !mdes_fps.contains(&fp),
                "pruned candidate {fp:016x} appears in the MDES"
            );
        }
        // Every referenced CFU id exists.
        for e in &events {
            if let ProvEvent::SelectedAsCfu { cfu, .. } = e {
                prop_assert!(
                    (*cfu as usize) < run.mdes.cfus.len(),
                    "selected cfu id {cfu} out of range"
                );
            }
        }
    }
    // Every MDES CFU has a selection event on the record.
    let selected_fps: BTreeSet<u64> = run
        .log
        .events()
        .iter()
        .filter(|(_, e)| matches!(e, ProvEvent::SelectedAsCfu { .. }))
        .map(|(fp, _)| *fp)
        .collect();
    for fp in &mdes_fps {
        prop_assert!(
            selected_fps.contains(fp),
            "MDES pattern {fp:016x} has no SelectedAsCfu event"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_env_cases(8))]

    #[test]
    fn lifecycle_invariants_hold(kernel in 0usize..KERNELS.len(), budget in 2.0f64..12.0) {
        let _guard = TEST_LOCK.lock().unwrap();
        let _on = isax_prov::enable();
        let run = run_pipeline(KERNELS[kernel], budget);
        check_lifecycle_invariants(&run)?;
    }
}

/// `ISAX_TRACE`, `ISAX_PROV` and `ISAX_SERVE_STATS` all parse through
/// the one shared helper in `isax-trace`; this is its direct unit test.
/// (It replaced a lockstep test that compared two hand-duplicated
/// copies — `isax_prov::parse_env_value` and `isax_serve::stats_mode`'s
/// parser are now re-exports of the same item, so type identity makes
/// divergence impossible.)
#[test]
fn env_value_grammar() {
    use isax_trace::{parse_env_value, EnvMode};
    for v in ["", "  ", "0", "off", "OFF", "FALSE", "No"] {
        assert_eq!(parse_env_value(v), EnvMode::Off, "{v:?}");
    }
    for v in ["1", " 1 ", "on", "TRUE", " yes "] {
        assert_eq!(parse_env_value(v), EnvMode::Summary, "{v:?}");
    }
    assert_eq!(
        parse_env_value("report.json"),
        EnvMode::Path("report.json".into())
    );
    assert_eq!(parse_env_value("./off"), EnvMode::Path("./off".into()));
    assert_eq!(parse_env_value(" a b "), EnvMode::Path("a b".into()));
    // The re-exports are the same items, not copies: a trace-typed
    // binding holds a prov-parsed value with no conversion.
    let same: EnvMode = isax_prov::parse_env_value("x.json");
    assert_eq!(same, EnvMode::Path("x.json".into()));
}
