//! Parser round-trip across the whole benchmark suite plus randomized
//! programs: `parse(display(f)) == f`, and parsed kernels still execute
//! identically.

use isax_ir::{parse_function, parse_program, Program};
use isax_machine::{run, Memory};
use proptest::prelude::*;

#[test]
fn all_benchmark_kernels_round_trip() {
    for w in isax_workloads::all() {
        for f in &w.program.functions {
            let text = f.to_string();
            let back = parse_function(&text)
                .unwrap_or_else(|e| panic!("{} fails to re-parse: {e}\n{text}", w.name));
            assert_eq!(back.name, f.name, "{}", w.name);
            assert_eq!(back.params, f.params, "{}", w.name);
            assert_eq!(back.blocks, f.blocks, "{}", w.name);
        }
    }
}

#[test]
fn parsed_kernels_execute_identically() {
    for w in isax_workloads::all() {
        let text: String = w
            .program
            .functions
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n");
        let parsed: Program = parse_program(&text).expect("parses");
        let mut mem_a = Memory::new();
        (w.init_memory)(&mut mem_a, 5);
        let mut mem_b = mem_a.clone();
        let args = (w.args)(5);
        let a = run(&w.program, w.entry, &args, &mut mem_a, 50_000_000).unwrap();
        let b = run(&parsed, w.entry, &args, &mut mem_b, 50_000_000).unwrap();
        assert_eq!(a.ret, b.ret, "{}", w.name);
        assert_eq!(mem_a, mem_b, "{}", w.name);
    }
}

#[test]
fn customized_programs_round_trip_modulo_semantics() {
    // Programs containing custom instructions print/parse too (the
    // semantics table itself travels via the MDES, not the text).
    let cz = isax::Customizer::new();
    let w = isax_workloads::by_name("blowfish").unwrap();
    let (mdes, _) = cz.customize(w.name, &w.program, 10.0);
    let ev = cz.evaluate(&w.program, &mdes, isax::MatchOptions::exact());
    for f in &ev.compiled.program.functions {
        let text = f.to_string();
        let back = parse_function(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(back.blocks, f.blocks);
    }
}

/// Reconstruction of the recorded regression
/// (`parser.proptest-regressions`, case 18a38cfa): `nparams = 1`,
/// `weights = [1, 1, 1]`, `ops = [(0, 0, 0)]` — a three-block chain
/// whose last two blocks are empty except for their jumps, with a
/// single `add v1 = v0, #0`. Kept as a deterministic unit test because
/// the vendored proptest cannot replay upstream seeds.
#[test]
fn recorded_regression_empty_tail_blocks_round_trip() {
    let mut fb = isax_ir::FunctionBuilder::new("rand", 1);
    fb.set_entry_weight(1);
    let b1 = fb.new_block(1);
    let b2 = fb.new_block(1);
    let p0 = fb.param(0);
    let d = fb.add(p0, 0i64);
    fb.jump(b1);
    fb.switch_to(b1);
    fb.jump(b2);
    fb.switch_to(b2);
    fb.ret(&[d.into()]);
    let f = fb.finish();
    let text = f.to_string();
    let back = parse_function(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
    assert_eq!(back.to_string(), text);
    assert_eq!(back.blocks, f.blocks);
    assert_eq!(back.params, f.params);
}

proptest! {
    #![proptest_config(ProptestConfig::with_env_cases(64))]

    #[test]
    fn random_functions_round_trip(
        nparams in 1u32..5,
        weights in proptest::collection::vec(1u64..1_000_000, 1..4),
        ops in proptest::collection::vec((0usize..8, 0usize..6, -100i64..100), 1..30),
    ) {
        // Build a small CFG: entry plus `weights.len() - 1` extra blocks
        // joined linearly, instructions drawn from a fixed op menu.
        let mut fb = isax_ir::FunctionBuilder::new("rand", nparams);
        fb.set_entry_weight(weights[0]);
        let extra: Vec<_> = weights[1..].iter().map(|&w| fb.new_block(w)).collect();
        let mut pool: Vec<isax_ir::VReg> = (0..nparams).map(|i| fb.param(i as usize)).collect();
        let per_block = ops.len().div_ceil(weights.len()).max(1);
        let chunks: Vec<_> = ops.chunks(per_block).collect();
        for bi in 0..weights.len() {
            if let Some(chunk) = chunks.get(bi) {
                for &(which, pick, imm) in *chunk {
                    let r = pool[pick % pool.len()];
                    let d = match which {
                        0 => fb.add(r, imm),
                        1 => fb.xor(r, pool[(pick + 1) % pool.len()]),
                        2 => fb.shl(r, (imm & 31).abs()),
                        3 => fb.sub(r, imm),
                        4 => fb.not_(r),
                        5 => fb.ldw(r),
                        6 => fb.select(r, pool[(pick + 1) % pool.len()], imm),
                        _ => fb.mov(imm),
                    };
                    pool.push(d);
                }
            }
            if bi < extra.len() {
                fb.jump(extra[bi]);
                fb.switch_to(extra[bi]);
            }
        }
        let last = *pool.last().unwrap();
        fb.ret(&[last.into()]);
        let f = fb.finish();
        let text = f.to_string();
        let back = parse_function(&text).unwrap();
        prop_assert_eq!(back.to_string(), text);
        prop_assert_eq!(back.blocks, f.blocks);
        prop_assert_eq!(back.params, f.params);
    }
}
