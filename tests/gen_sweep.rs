//! Differential-oracle sweep over the generator-scale corpora.
//!
//! The headline consumer of `isax-gen`: every seeded program goes
//! through the whole pipeline with the checkpoint checker armed, and
//! the interpreter is the oracle — the customized/compiled result must
//! return the same values, leave the same memory, and never take more
//! dynamic steps than the original, on deterministic seeded inputs.
//! `check_differential` cross-validates the same runs (IC05xx plus the
//! IC0810/IC0811 observed-value-range facts).
//!
//! Lanes:
//! * **fast** (default) — 32 seeds per domain at small block counts,
//!   inside the CI `test-fast` budget;
//! * **deep** (`ISAX_GEN_DEEP=1`) — fewer seeds at 64/192/512 blocks,
//!   its own CI lane.
//!
//! The corpora themselves are byte-pinned here: `kernels/stress/*` (the
//! Python generator's historical output), `kernels/graph|dsp/*` (the
//! curated oracles) and every `kernels/gen/*` entry recorded in
//! `MANIFEST.json` must regenerate exactly from their recipes.
//!
//! Doctored-fault tests prove the oracle has teeth: a flipped return, a
//! redirected store and a stripped CFU semantics entry must surface as
//! IC0501, IC0502 and IC0503 respectively.

use isax::{Customizer, MatchOptions};
use isax_check::check_differential;
use isax_gen::{curated, generate, seeded_args, seeded_memory, GenConfig, GenDomain};
use isax_ir::{Opcode, Operand, Program, Terminator};
use isax_machine::{run, Memory};

const FUEL: u64 = 50_000_000;
const BUDGET: f64 = 15.0;

/// Seeds per domain in the fast lane: the full 32-seed set in release
/// (what the `gen-sweep-fast` CI lane runs), a smoke subset under debug
/// builds, where the interpreter is an order of magnitude slower and
/// the full sweep would blow the `cargo test -q` budget.
const FAST_SEEDS: u64 = if cfg!(debug_assertions) { 6 } else { 32 };

fn deep() -> bool {
    std::env::var("ISAX_GEN_DEEP").is_ok_and(|v| v == "1")
}

/// The per-domain sweep plan: `(seed, blocks)` pairs.
fn plan() -> Vec<(u64, usize)> {
    if deep() {
        (0..4u64)
            .flat_map(|s| [(s, 64), (s, 192)])
            .chain([(0, 512), (1, 512)])
            .collect()
    } else {
        (0..FAST_SEEDS).map(|s| (s, 3 + (s as usize % 8))).collect()
    }
}

/// Runs one program through customize + compile with the checker armed
/// and validates it against the interpreter oracle on seeded inputs.
fn differential_pipeline(p: &Program, entry: &str, seed: u64, label: &str) {
    let mut cz = Customizer::new();
    cz.check = true;
    let analysis = cz.analyze(p);
    let (mdes, _) = cz.select(entry, &analysis, BUDGET);
    let ev = cz.evaluate(p, &mdes, MatchOptions::with_subsumed());

    // Cycle accounting: customization must never cost cycles, and the
    // reported speedup must be exactly the ratio of the two estimates.
    assert!(
        ev.custom_cycles <= ev.baseline_cycles,
        "{label}: customized estimate regressed ({} > {})",
        ev.custom_cycles,
        ev.baseline_cycles
    );
    if ev.custom_cycles > 0 {
        let ratio = ev.baseline_cycles as f64 / ev.custom_cycles as f64;
        assert!(
            (ev.speedup - ratio).abs() < 1e-9,
            "{label}: speedup {} disagrees with cycle ratio {ratio}",
            ev.speedup
        );
    }

    for arg_seed in [seed, seed.wrapping_add(0x1000), seed.wrapping_add(0x2000)] {
        let args = seeded_args(arg_seed);
        let mem0 = seeded_memory(arg_seed);

        let mut mem_a = mem0.clone();
        let a = run(p, entry, &args, &mut mem_a, FUEL)
            .unwrap_or_else(|e| panic!("{label}: original failed: {e}"));
        let mut mem_b = mem0.clone();
        let b = run(&ev.compiled.program, entry, &args, &mut mem_b, FUEL)
            .unwrap_or_else(|e| panic!("{label}: compiled failed: {e}"));

        assert_eq!(a.ret, b.ret, "{label}: return values diverged");
        assert_eq!(mem_a, mem_b, "{label}: final memory diverged");
        assert!(
            b.steps <= a.steps,
            "{label}: compiled program took more dynamic steps ({} > {})",
            b.steps,
            a.steps
        );

        let report = check_differential(p, &ev.compiled.program, entry, &args, &mem0, FUEL);
        assert!(report.is_clean(), "{label}: differential checker: {report}");
    }
}

fn sweep_domain(domain: GenDomain) {
    for (seed, blocks) in plan() {
        let cfg = GenConfig {
            seed,
            domain,
            blocks,
        };
        let entry = cfg.entry_name();
        let text = generate(&cfg);
        let p = isax_ir::parse_program(&text).unwrap_or_else(|e| panic!("{entry}: {e}"));
        assert_eq!(p.functions[0].to_string(), text, "{entry}: round trip");
        let lint = isax::lint_program(&p);
        assert!(
            lint.diagnostics().is_empty(),
            "{entry}: lint findings: {lint}"
        );
        differential_pipeline(&p, &entry, seed, &entry);
    }
}

#[test]
fn gen_sweep_graph() {
    sweep_domain(GenDomain::Graph);
}

#[test]
fn gen_sweep_dsp() {
    sweep_domain(GenDomain::Dsp);
}

#[test]
fn gen_sweep_mixed() {
    sweep_domain(GenDomain::Mixed);
}

/// The curated corpus additionally has independent Rust oracles: the
/// original program, the compiled rewrite, and the hand-written oracle
/// must agree three ways (returns and final memory).
#[test]
fn curated_kernels_match_their_oracles_through_the_pipeline() {
    for k in curated() {
        let text = (k.text)();
        let p = isax_ir::parse_program(&text).unwrap_or_else(|e| panic!("{}: {e}", k.name));
        let mut cz = Customizer::new();
        cz.check = true;
        let analysis = cz.analyze(&p);
        let (mdes, _) = cz.select(k.name, &analysis, BUDGET);
        let ev = cz.evaluate(&p, &mdes, MatchOptions::with_subsumed());
        for seed in [3u64, 17, 91] {
            let args = (k.args)(seed);
            let mut mem_oracle = Memory::new();
            (k.init_memory)(&mut mem_oracle, seed);
            let mem0 = mem_oracle.clone();
            let expect = (k.oracle)(&args, &mut mem_oracle);

            let mut mem_run = mem0.clone();
            let out = run(&ev.compiled.program, k.name, &args, &mut mem_run, FUEL)
                .unwrap_or_else(|e| panic!("{} seed {seed}: {e}", k.name));
            assert_eq!(out.ret, expect, "{} seed {seed}: oracle disagrees", k.name);
            assert_eq!(mem_run, mem_oracle, "{} seed {seed}: memory", k.name);

            let report = check_differential(&p, &ev.compiled.program, k.name, &args, &mem0, FUEL);
            assert!(report.is_clean(), "{} seed {seed}: {report}", k.name);
        }
    }
}

// ---- corpus byte-pinning --------------------------------------------------

#[test]
fn stress_corpus_regenerates_byte_identically() {
    for (name, gen) in isax_gen::STRESS {
        let want = std::fs::read_to_string(format!("kernels/stress/{name}.isax")).unwrap();
        assert_eq!(gen(), want, "kernels/stress/{name}.isax drifted");
    }
}

#[test]
fn curated_corpus_regenerates_byte_identically() {
    for k in curated() {
        let path = format!("kernels/{}/{}.isax", k.domain, k.name);
        let want = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
        assert_eq!((k.text)(), want, "{path} drifted");
    }
}

#[test]
fn gen_manifest_regenerates_byte_identically() {
    let text = std::fs::read_to_string("kernels/gen/MANIFEST.json").unwrap();
    let doc = isax_json::parse(&text).unwrap();
    let entries = doc.get("kernels").and_then(|v| v.as_array()).unwrap();
    assert!(!entries.is_empty());
    for e in entries {
        let file = e.get("file").and_then(|v| v.as_str()).unwrap();
        let cfg = GenConfig {
            seed: e.get("seed").and_then(|v| v.as_u64()).unwrap(),
            domain: GenDomain::parse(e.get("domain").and_then(|v| v.as_str()).unwrap()).unwrap(),
            blocks: e.get("blocks").and_then(|v| v.as_u64()).unwrap() as usize,
        };
        let want = std::fs::read_to_string(format!("kernels/gen/{file}")).unwrap();
        assert_eq!(generate(&cfg), want, "kernels/gen/{file} drifted");
        assert_eq!(
            format!("{}.isax", cfg.entry_name()),
            file,
            "manifest file name must encode its own recipe"
        );
    }
}

// ---- doctored faults: the oracle must catch a wrong rewrite ---------------

fn doctored_base() -> (Program, String) {
    let cfg = GenConfig {
        seed: 0,
        domain: GenDomain::Mixed,
        blocks: 6,
    };
    (
        isax_ir::parse_program(&generate(&cfg)).unwrap(),
        cfg.entry_name(),
    )
}

#[test]
fn doctored_return_is_caught_as_ic0501() {
    let (p, entry) = doctored_base();
    let mut q = p.clone();
    let last = q.functions[0].blocks.len() - 1;
    let Terminator::Ret(vals) = &mut q.functions[0].blocks[last].term else {
        panic!("generated kernels end in ret");
    };
    vals[0] = Operand::Imm(0x1234_5678);
    let report = check_differential(&p, &q, &entry, &seeded_args(0), &seeded_memory(0), FUEL);
    assert!(report.has_code("IC0501"), "{report}");
}

#[test]
fn doctored_store_is_caught_as_ic0502() {
    let k = isax_gen::curated_by_name("dijkstra_relax").unwrap();
    let p = isax_ir::parse_program(&(k.text)()).unwrap();
    let mut q = p.clone();
    let st = q.functions[0].blocks[0]
        .insts
        .iter_mut()
        .find(|i| i.opcode == Opcode::StW)
        .expect("dijkstra_relax stores every relaxed distance");
    st.srcs[0] = Operand::Imm(0x300);
    let args = (k.args)(5);
    let mut mem = Memory::new();
    (k.init_memory)(&mut mem, 5);
    let report = check_differential(&p, &q, k.name, &args, &mem, FUEL);
    assert!(report.has_code("IC0502"), "{report}");
}

#[test]
fn stripped_cfu_semantics_are_caught_as_ic0503() {
    let text = isax_gen::stress_kernel("deep_chain").unwrap();
    let p = isax_ir::parse_program(&text).unwrap();
    let cz = Customizer::new();
    let (mdes, _) = cz.customize("deep_chain", &p, BUDGET);
    let ev = cz.evaluate(&p, &mdes, MatchOptions::with_subsumed());
    let mut q = ev.compiled.program.clone();
    let id = *q
        .cfu_semantics
        .keys()
        .next()
        .expect("deep_chain always earns at least one CFU");
    q.cfu_semantics.remove(&id);
    let report = check_differential(&p, &q, "deep_chain", &[7, 9], &Memory::new(), FUEL);
    assert!(report.has_code("IC0503"), "{report}");
}

// ---- thread-count identity ------------------------------------------------

/// One seeded program per domain, compiled at 1 and at 4 threads: the
/// emitted assembly, the serialized MDES and the provenance report must
/// be byte-identical. (The override is process-global; this is the only
/// test in this binary that touches it, and it restores `None`.)
#[test]
fn artifacts_are_byte_identical_across_thread_counts() {
    fn artifacts(p: &Program, entry: &str) -> (String, String, String) {
        let _guard = isax_prov::enable();
        let cz = Customizer::new();
        let analysis = cz.analyze(p);
        let (mdes, sel) = cz.select(entry, &analysis, BUDGET);
        let ev = cz.evaluate(p, &mdes, MatchOptions::with_subsumed());
        let asm: String = ev
            .compiled
            .program
            .functions
            .iter()
            .map(|f| f.to_string())
            .collect();
        let mut plog = analysis.prov.clone();
        plog.merge(sel.prov.clone());
        plog.merge(ev.compiled.prov.clone());
        let prov = isax::build_report(entry, &plog).to_string_pretty();
        (asm, mdes.to_json().unwrap(), prov)
    }

    for domain in GenDomain::ALL {
        let cfg = GenConfig {
            seed: 11,
            domain,
            blocks: 10,
        };
        let entry = cfg.entry_name();
        let p = isax_ir::parse_program(&generate(&cfg)).unwrap();
        isax_graph::par::set_thread_override(Some(1));
        let serial = artifacts(&p, &entry);
        isax_graph::par::set_thread_override(Some(4));
        let parallel = artifacts(&p, &entry);
        isax_graph::par::set_thread_override(None);
        assert_eq!(serial.0, parallel.0, "{entry}: compiled assembly");
        assert_eq!(serial.1, parallel.1, "{entry}: MDES JSON");
        assert_eq!(serial.2, parallel.2, "{entry}: provenance report");
    }
}
