//! System-level behaviours across the whole workspace: budget
//! monotonicity, MDES portability, selection ablations, domain character.

use isax::{Customizer, MatchOptions, Mdes};
use isax_select::{select_greedy, select_knapsack, SelectConfig};
use isax_workloads::{all, by_name, Domain};

#[test]
fn speedup_is_monotone_enough_in_budget() {
    // Greedy dips are expected (the paper discusses them for rawdaudio and
    // djpeg); what must hold is that the best speedup seen so far never
    // collapses: every budget's speedup stays within 25% of the running
    // maximum, and the curve ends at its top.
    let cz = Customizer::new();
    for name in ["blowfish", "crc", "rawdaudio"] {
        let w = by_name(name).unwrap();
        let analysis = cz.analyze(&w.program);
        let mut best: f64 = 1.0;
        let mut last = 1.0;
        for budget in 1..=15 {
            let (mdes, _) = cz.select(w.name, &analysis, budget as f64);
            let ev = cz.evaluate(&w.program, &mdes, MatchOptions::exact());
            assert!(
                ev.speedup >= best * 0.75,
                "{name}: budget {budget} collapsed to {:.3} (best {:.3})",
                ev.speedup,
                best
            );
            best = best.max(ev.speedup);
            last = ev.speedup;
        }
        assert!(
            last >= best * 0.95,
            "{name}: final point {:.3} well below best {:.3}",
            last,
            best
        );
    }
}

#[test]
fn mdes_round_trips_through_json_and_still_compiles() {
    let cz = Customizer::new();
    let w = by_name("blowfish").unwrap();
    let (mdes, _) = cz.customize(w.name, &w.program, 10.0);
    let json = mdes.to_json().unwrap();
    let back = Mdes::from_json(&json).unwrap();
    let ev1 = cz.evaluate(&w.program, &mdes, MatchOptions::exact());
    let ev2 = cz.evaluate(&w.program, &back, MatchOptions::exact());
    assert_eq!(ev1.custom_cycles, ev2.custom_cycles);
}

#[test]
fn encryption_beats_control_heavy_codes() {
    // The paper's central domain observation: encryption kernels gain far
    // more than branch/memory-bound ones.
    let cz = Customizer::new();
    let speed = |name: &str| {
        let w = by_name(name).unwrap();
        let (mdes, _) = cz.customize(w.name, &w.program, 15.0);
        cz.evaluate(&w.program, &mdes, MatchOptions::exact())
            .speedup
    };
    let blowfish = speed("blowfish");
    let ipchains = speed("ipchains");
    let mpeg2 = speed("mpeg2dec");
    assert!(
        blowfish > ipchains + 0.2,
        "blowfish {blowfish:.2} vs ipchains {ipchains:.2}"
    );
    assert!(
        blowfish > mpeg2,
        "blowfish {blowfish:.2} vs mpeg2 {mpeg2:.2}"
    );
}

#[test]
fn rawdaudio_is_the_suite_peak() {
    // Paper: "as much as 1.94 for rawdaudio".
    let cz = Customizer::new();
    let mut best_name = String::new();
    let mut best = 0.0f64;
    for w in all() {
        let (mdes, _) = cz.customize(w.name, &w.program, 15.0);
        let s = cz
            .evaluate(&w.program, &mdes, MatchOptions::exact())
            .speedup;
        if s > best {
            best = s;
            best_name = w.name.to_string();
        }
    }
    assert!(
        best_name == "rawdaudio" || best_name == "rawcaudio",
        "suite peak is {best_name} ({best:.2}); expected the ADPCM codecs"
    );
    assert!(best > 1.7 && best < 2.6, "peak speedup {best:.2} in range");
}

#[test]
fn native_cfus_beat_cross_compiled_ones() {
    // "no application does quite as well on hardware designed for another
    // application as it does for its own."
    let cz = Customizer::new();
    let ws = all();
    for d in [Domain::Encryption, Domain::Audio] {
        let members: Vec<_> = ws.iter().filter(|w| w.domain == d).collect();
        for app in &members {
            let (own, _) = cz.customize(app.name, &app.program, 15.0);
            let native = cz
                .evaluate(&app.program, &own, MatchOptions::exact())
                .speedup;
            for src in &members {
                if src.name == app.name {
                    continue;
                }
                let (other, _) = cz.customize(src.name, &src.program, 15.0);
                let cross = cz
                    .evaluate(&app.program, &other, MatchOptions::exact())
                    .speedup;
                assert!(
                    cross <= native + 1e-9,
                    "{} does better on {}'s CFUs ({:.3}) than its own ({:.3})",
                    app.name,
                    src.name,
                    cross,
                    native
                );
            }
        }
    }
}

#[test]
fn generalization_only_helps() {
    // Subsumed matching and wildcards may only add speedup, never remove
    // it — on native and cross compiles alike.
    let cz = Customizer::new();
    let ws = all();
    let enc: Vec<_> = ws
        .iter()
        .filter(|w| w.domain == Domain::Encryption || w.domain == Domain::Audio)
        .collect();
    for src in &enc {
        let (mdes, _) = cz.customize(src.name, &src.program, 15.0);
        for app in &enc {
            let exact = cz
                .evaluate(&app.program, &mdes, MatchOptions::exact())
                .speedup;
            let subsumed = cz
                .evaluate(&app.program, &mdes, MatchOptions::with_subsumed())
                .speedup;
            let wild = cz
                .evaluate(&app.program, &mdes, MatchOptions::generalized())
                .speedup;
            assert!(subsumed >= exact - 1e-9, "{} on {}", app.name, src.name);
            assert!(wild >= subsumed - 1e-9, "{} on {}", app.name, src.name);
        }
    }
}

#[test]
fn dp_and_greedy_are_both_credible() {
    // The §3.4 ablation: DP is sometimes better, at much higher cost;
    // both must produce valid selections within budget.
    let cz = Customizer::new();
    for name in ["rijndael", "sha", "crc"] {
        let w = by_name(name).unwrap();
        let analysis = cz.analyze(&w.program);
        let g = select_greedy(&analysis.cfus, &SelectConfig::with_budget(15.0));
        let d = select_knapsack(&analysis.cfus, &SelectConfig::with_budget(15.0));
        assert!(g.total_area <= 15.0 + 1e-9);
        assert!(d.total_area <= 15.0 + 1e-9);
        assert!(g.total_value > 0);
        assert!(d.total_value > 0);
    }
}

#[test]
fn limit_study_bounds_constrained_results() {
    let cz = Customizer::new();
    for name in ["blowfish", "rawdaudio", "url"] {
        let w = by_name(name).unwrap();
        let analysis = cz.analyze(&w.program);
        let constrained = isax::native_speedup(&cz, w.name, &w.program, &analysis, 15.0);
        let limit = isax::limit_speedup(&cz, w.name, &w.program);
        assert!(
            limit.speedup >= constrained.speedup - 1e-9,
            "{name}: limit {:.3} < constrained {:.3}",
            limit.speedup,
            constrained.speedup
        );
    }
}
