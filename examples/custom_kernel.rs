//! Bring your own kernel: author an IR function with the builder, then
//! let the system design hardware for it and prove the rewrite correct.
//!
//! ```sh
//! cargo run --release --example custom_kernel
//! ```
//!
//! The kernel here is a Fowler–Noll–Vo (FNV-1a) hash over a byte buffer —
//! a realistic little loop that is *not* one of the thirteen paper
//! benchmarks, showing the toolflow is fully general.

use isax::{Customizer, MatchOptions};
use isax_ir::{FunctionBuilder, Program};
use isax_machine::{run, Memory};

const BUF: u32 = 0x5000;
const LEN: u32 = 64;

/// fnv1a(init) over LEN bytes at BUF; also counts high-bit bytes.
fn build_kernel() -> Program {
    let mut fb = FunctionBuilder::new("fnv1a", 1);
    let init = fb.param(0);
    let body = fb.new_block(64_000);
    let exit = fb.new_block(1_000);

    let h = fb.fresh();
    let highs = fb.fresh();
    let p = fb.fresh();
    let n = fb.fresh();
    fb.copy_to(h, init);
    fb.copy_to(highs, 0i64);
    fb.copy_to(p, BUF as i64);
    fb.copy_to(n, LEN as i64);
    fb.jump(body);

    fb.switch_to(body);
    let c = fb.ldbu(p);
    let hx = fb.xor(h, c);
    // h *= 16777619 decomposed into shift-adds, as a strength-reducing
    // compiler would emit: h * 0x01000193 = (h<<24) + (h<<8) + (h<<7) +
    // (h<<4) + (h<<1) + h
    let s24 = fb.shl(hx, 24i64);
    let s8 = fb.shl(hx, 8i64);
    let s7 = fb.shl(hx, 7i64);
    let s4 = fb.shl(hx, 4i64);
    let s1 = fb.shl(hx, 1i64);
    let a0 = fb.add(s24, s8);
    let a1 = fb.add(a0, s7);
    let a2 = fb.add(a1, s4);
    let a3 = fb.add(a2, s1);
    let h1 = fb.add(a3, hx);
    fb.copy_to(h, h1);
    let hi = fb.shr(c, 7i64);
    let hs = fb.add(highs, hi);
    fb.copy_to(highs, hs);
    let p1 = fb.add(p, 1i64);
    fb.copy_to(p, p1);
    let n1 = fb.sub(n, 1i64);
    fb.copy_to(n, n1);
    let more = fb.ne(n, 0i64);
    fb.branch(more, body, exit);

    fb.switch_to(exit);
    fb.ret(&[h.into(), highs.into()]);
    Program::new(vec![fb.finish()])
}

fn reference(init: u32, buf: &[u8]) -> (u32, u32) {
    let mut h = init;
    let mut highs = 0;
    for &b in buf {
        h = (h ^ b as u32).wrapping_mul(16_777_619);
        highs += (b >> 7) as u32;
    }
    (h, highs)
}

fn main() {
    let program = build_kernel();
    isax_ir::verify_program(&program).expect("kernel verifies");

    let cz = Customizer::new();
    let (mdes, _) = cz.customize("fnv1a", &program, 12.0);
    println!("CFUs designed for the FNV-1a kernel:");
    for cfu in &mdes.cfus {
        println!("  cfu{:<2} {:<34} {:.2} adders", cfu.id, cfu.name, cfu.area);
    }
    let ev = cz.evaluate(&program, &mdes, MatchOptions::exact());
    println!(
        "\nbaseline {} -> custom {} cycles, speedup {:.2}x\n",
        ev.baseline_cycles, ev.custom_cycles, ev.speedup
    );

    // Execute both versions and compare with the native reference.
    let buf: Vec<u8> = (0..LEN).map(|i| (i * 37 + 11) as u8).collect();
    let mut m1 = Memory::new();
    m1.store_bytes(BUF, &buf);
    let mut m2 = m1.clone();
    let init = 0x811C_9DC5;
    let a = run(&program, "fnv1a", &[init], &mut m1, 100_000).unwrap();
    let b = run(&ev.compiled.program, "fnv1a", &[init], &mut m2, 100_000).unwrap();
    let (rh, rhi) = reference(init, &buf);
    assert_eq!(a.ret, vec![rh, rhi], "IR kernel computes real FNV-1a");
    assert_eq!(a.ret, b.ret, "customized kernel is equivalent");
    println!(
        "hash {:#010x}, {} high-bit bytes — baseline, customized and native\n\
         reference all agree ✓",
        rh, rhi
    );
}
