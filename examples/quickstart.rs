//! Quickstart: customize a small kernel end to end.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Builds a toy hot loop, discovers custom-function-unit candidates,
//! selects a CFU set for a 10-adder budget, compiles the kernel against
//! it and reports the estimated speedup — the whole pipeline of the
//! MICRO-2003 system in a dozen lines.

use isax::{Customizer, MatchOptions};
use isax_ir::{FunctionBuilder, Program};

fn main() {
    // A hot kernel: one round of a toy cipher, executed 100k times.
    //   t = (x ^ k) <<< 7;  y = (t + b) & 0xFFFF
    let mut fb = FunctionBuilder::new("toy_round", 3);
    fb.set_entry_weight(100_000);
    let (x, b, k) = (fb.param(0), fb.param(1), fb.param(2));
    let t = fb.xor(x, k);
    let hi = fb.shl(t, 7i64);
    let lo = fb.shr(t, 25i64);
    let rot = fb.or(hi, lo);
    let s = fb.add(rot, b);
    let y = fb.and(s, 0xFFFFi64);
    fb.ret(&[y.into()]);
    let program = Program::new(vec![fb.finish()]);

    // The hardware compiler: explore the dataflow graph, group candidate
    // subgraphs, select CFUs for a 10-adder die budget.
    let cz = Customizer::new();
    let analysis = cz.analyze(&program);
    println!(
        "explored {} candidate subgraphs -> {} CFU candidates",
        analysis.stats.examined,
        analysis.cfus.len()
    );
    let (mdes, selection) = cz.select("toy", &analysis, 10.0);
    println!("\nselected CFUs (priority order):");
    for cfu in &mdes.cfus {
        println!(
            "  cfu{:<2} {:<24} {} ops, {:.2} adders, {} cycle(s), est. value {}",
            cfu.id,
            cfu.name,
            cfu.pattern.node_count(),
            cfu.area,
            cfu.latency,
            cfu.estimated_value
        );
    }
    println!(
        "total charged area: {:.2} adders (budget 10.0)",
        selection.total_area
    );

    // The retargetable compiler: match, replace, schedule, measure.
    let ev = cz.evaluate(&program, &mdes, MatchOptions::exact());
    println!(
        "\nbaseline {} cycles -> customized {} cycles  (speedup {:.2}x)",
        ev.baseline_cycles, ev.custom_cycles, ev.speedup
    );
    println!(
        "{} custom instruction(s) inserted",
        ev.compiled.applied.len()
    );

    // Prove nothing broke: run both programs on concrete inputs.
    let args = [0x1234_5678, 42, 0xDEAD_BEEF];
    let mut m1 = isax_machine::Memory::new();
    let mut m2 = isax_machine::Memory::new();
    let before = isax_machine::run(&program, "toy_round", &args, &mut m1, 10_000).unwrap();
    let after =
        isax_machine::run(&ev.compiled.program, "toy_round", &args, &mut m2, 10_000).unwrap();
    assert_eq!(before.ret, after.ret);
    println!(
        "\ninterpreter check: both programs compute {:#010x} — identical ✓",
        before.ret[0]
    );
}
