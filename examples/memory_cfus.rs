//! The §6 memory relaxation in action: let S-box loads join blowfish's
//! custom function units and watch the whole Feistel F-function collapse
//! into accelerator-style instructions.
//!
//! ```sh
//! cargo run --release --example memory_cfus
//! ```

use isax::{Customizer, MatchOptions, Mdes};
use isax_machine::{run, Memory};
use isax_select::{select_greedy, Objective, SelectConfig};

fn main() {
    let w = isax_workloads::by_name("blowfish").unwrap();

    println!("== the paper's system (no memory in CFUs) ==");
    let plain = Customizer::new();
    let (m1, _) = plain.customize(w.name, &w.program, 15.0);
    let e1 = plain.evaluate(&w.program, &m1, MatchOptions::exact());
    println!("  {} CFUs, speedup {:.2}x", m1.cfus.len(), e1.speedup);

    println!("\n== with loads allowed inside units (value-objective selection) ==");
    let relaxed = Customizer::with_memory_cfus();
    let analysis = relaxed.analyze(&w.program);
    let sel = select_greedy(
        &analysis.cfus,
        &SelectConfig {
            objective: Objective::Value,
            ..SelectConfig::with_budget(15.0)
        },
    );
    let m2 = Mdes::from_selection(w.name, &analysis.cfus, &sel, &relaxed.hw, 64);
    let e2 = relaxed.evaluate(&w.program, &m2, MatchOptions::exact());
    for c in &m2.cfus {
        let loads = c
            .pattern
            .node_ids()
            .filter(|&n| c.pattern[n].opcode.is_load())
            .count();
        if loads > 0 {
            println!(
                "  cfu{:<2} {:<30} {} ops incl. {} S-box load(s), {} cycle(s)",
                c.id,
                c.name,
                c.pattern.node_count(),
                loads,
                c.latency
            );
        }
    }
    println!(
        "  {} CFUs, speedup {:.2}x  (was {:.2}x)",
        m2.cfus.len(),
        e2.speedup,
        e1.speedup
    );

    // Prove the load-bearing rewrite computes the same cipher.
    let mut mem_a = Memory::new();
    (w.init_memory)(&mut mem_a, 1);
    let mut mem_b = mem_a.clone();
    let args = (w.args)(1);
    let a = run(&w.program, w.entry, &args, &mut mem_a, 1_000_000).unwrap();
    let b = run(&e2.compiled.program, w.entry, &args, &mut mem_b, 1_000_000).unwrap();
    assert_eq!(a.ret, b.ret);
    println!(
        "\ninterpreter check: both versions encrypt to {:08x}:{:08x} — identical ✓",
        a.ret[0], a.ret[1]
    );
    println!("(the default ratio-greedy selector cannot exploit the relaxation —");
    println!(" see `cargo run -p isax-bench --bin memory_cfu_ablation`)");
}
