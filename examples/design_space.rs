//! Sweep the CFU area budget and plot the speedup curve for a benchmark —
//! one line of the left half of Figure 7, rendered in ASCII.
//!
//! ```sh
//! cargo run --release --example design_space [benchmark]
//! ```
//!
//! Defaults to `rawdaudio` (the paper's peak performer). Try `blowfish`,
//! `crc`, `mpeg2dec`, ... to see how domain character shapes the curve.

use isax::{Customizer, MatchOptions};
use isax_workloads::by_name;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "rawdaudio".into());
    let Some(w) = by_name(&name) else {
        eprintln!(
            "unknown benchmark `{name}`; choose from: {}",
            isax_workloads::all()
                .iter()
                .map(|w| w.name)
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(1);
    };
    let cz = Customizer::new();
    println!("analyzing {name} ({} domain) ...", w.domain);
    let analysis = cz.analyze(&w.program);
    println!(
        "  {} candidates examined, {} CFU candidates\n",
        analysis.stats.examined,
        analysis.cfus.len()
    );
    println!("{:>6}  {:>8}  {:>5}  curve", "budget", "speedup", "cfus");
    let mut points = Vec::new();
    for budget in 1..=15 {
        let (mdes, _) = cz.select(w.name, &analysis, budget as f64);
        let ev = cz.evaluate(&w.program, &mdes, MatchOptions::exact());
        points.push((budget, ev.speedup, mdes.cfus.len()));
    }
    let max = points.iter().map(|p| p.1).fold(1.0f64, f64::max);
    for (budget, speedup, n) in points {
        let bar = ((speedup - 1.0) / (max - 1.0).max(1e-9) * 50.0).round() as usize;
        println!(
            "{:>6}  {:>7.3}x  {:>5}  |{}",
            budget,
            speedup,
            n,
            "#".repeat(bar)
        );
    }
    println!("\n(dips, where they appear, are the greedy-selection artifact the");
    println!(" paper describes for rawdaudio at cost point 6 and for djpeg.)");
}
