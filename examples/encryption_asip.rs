//! Design an encryption-domain ASIP: generate CFUs for one cipher, then
//! see how well the rest of the domain runs on them.
//!
//! ```sh
//! cargo run --release --example encryption_asip
//! ```
//!
//! Reproduces the paper's cross-compilation methodology (right side of
//! Figure 7 and the generalization study of Figure 8) on the encryption
//! benchmarks: blowfish-generated hardware evaluated on rijndael and sha,
//! with exact, subsumed and wildcard matching.

use isax::{Customizer, MatchOptions};
use isax_workloads::{by_name, domain_members, Domain};

fn main() {
    let cz = Customizer::new();
    let budget = 15.0;
    let source = by_name("blowfish").unwrap();

    println!(
        "== hardware compiler: CFUs for {} @ {budget} adders ==",
        source.name
    );
    let analysis = cz.analyze(&source.program);
    let (mdes, _) = cz.select(source.name, &analysis, budget);
    for cfu in &mdes.cfus {
        println!(
            "  cfu{:<2} {:<28} {:2} ops  {:5.2} adders  {} subsumed shapes",
            cfu.id,
            cfu.name,
            cfu.pattern.node_count(),
            cfu.area,
            cfu.subsumed_patterns.len()
        );
    }

    println!(
        "\n== compiling the encryption domain on {}'s CFUs ==",
        source.name
    );
    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>10}",
        "app", "native", "exact", "+subsumed", "+wildcard"
    );
    for name in domain_members(Domain::Encryption) {
        let app = by_name(name).unwrap();
        let (own_mdes, _) = cz.customize(app.name, &app.program, budget);
        let native = cz
            .evaluate(&app.program, &own_mdes, MatchOptions::exact())
            .speedup;
        let exact = cz
            .evaluate(&app.program, &mdes, MatchOptions::exact())
            .speedup;
        let subsumed = cz
            .evaluate(&app.program, &mdes, MatchOptions::with_subsumed())
            .speedup;
        let wild = cz
            .evaluate(&app.program, &mdes, MatchOptions::generalized())
            .speedup;
        println!(
            "{:<10} {:>7.2}x {:>9.2}x {:>9.2}x {:>9.2}x",
            name, native, exact, subsumed, wild
        );
    }
    println!(
        "\n(native = the app's own CFUs; the other columns run on {}'s\n\
         hardware with increasingly general matching — the paper's\n\
         observation is that subsumed subgraphs and wildcards recover much\n\
         of the cross-compilation loss.)",
        source.name
    );
}
