//! Collection strategies (`proptest::collection::vec`).

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::ops::{Range, RangeInclusive};

/// An inclusive length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_incl: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi_incl - self.lo + 1) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_incl: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi_incl: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi_incl: *r.end(),
        }
    }
}

/// Generates a `Vec` whose length falls in `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_elements_in_range() {
        let mut rng = TestRng::from_seed(9);
        let s = vec(0u32..10, 2..5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
        let exact = vec(0u8..2, 4usize);
        assert_eq!(exact.generate(&mut rng).len(), 4);
        let incl = vec(0u8..2, 1..=3);
        for _ in 0..50 {
            assert!((1..=3).contains(&incl.generate(&mut rng).len()));
        }
    }
}
