//! Configuration, case orchestration, and failure reporting.

use crate::rng::{hash_name, mix, TestRng};

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case's inputs violated a `prop_assume!` precondition; the
    /// runner regenerates without counting it.
    Reject,
    /// A `prop_assert*!` failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// Builds the failure variant.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Mirrors upstream's config struct; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config that runs `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// A config whose case count is scaled by the environment: the
    /// `ISAX_PROPTEST_CASES` variable overrides `default_cases` when
    /// set (CI's fast lane exports `ISAX_PROPTEST_CASES=32`), and the
    /// standard `PROPTEST_CASES` — applied later, in
    /// [`TestRunner::new`] — still overrides both.
    pub fn with_env_cases(default_cases: u32) -> Self {
        let cases = std::env::var("ISAX_PROPTEST_CASES")
            .ok()
            .and_then(|s| s.trim().parse::<u32>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(default_cases);
        ProptestConfig { cases }
    }
}

/// Drives the cases of one property test.
pub struct TestRunner {
    name: &'static str,
    seed: u64,
    cases_target: u32,
    cases_done: u32,
    rejects: u32,
    generation: u64,
}

impl TestRunner {
    /// Creates a runner for the named test. The base seed is derived
    /// from the test's full path so runs are reproducible everywhere;
    /// `PROPTEST_SEED` overrides it and `PROPTEST_CASES` overrides the
    /// case count.
    pub fn new(cfg: ProptestConfig, name: &'static str) -> Self {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or_else(|| hash_name(name));
        let cases_target = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse::<u32>().ok())
            .unwrap_or(cfg.cases);
        TestRunner {
            name,
            seed,
            cases_target,
            cases_done: 0,
            rejects: 0,
            generation: 0,
        }
    }

    /// True while more successful cases are needed.
    pub fn wants_more(&self) -> bool {
        self.cases_done < self.cases_target
    }

    /// RNG for the next case. Each call advances the generation
    /// counter, so rejected cases draw fresh inputs instead of looping
    /// on the same ones.
    pub fn case_rng(&mut self) -> TestRng {
        self.generation += 1;
        TestRng::from_seed(mix(self.seed, self.generation))
    }

    /// Records a case outcome. `rendered` lazily formats the generated
    /// inputs and is only invoked on failure.
    pub fn finish_case(
        &mut self,
        outcome: Result<(), TestCaseError>,
        rendered: impl FnOnce() -> String,
    ) {
        match outcome {
            Ok(()) => self.cases_done += 1,
            Err(TestCaseError::Reject) => {
                self.rejects += 1;
                let limit = self.cases_target.saturating_mul(16).saturating_add(1024);
                if self.rejects > limit {
                    panic!(
                        "{}: too many `prop_assume!` rejections ({} with only {}/{} cases \
                         accepted) — the strategy rarely satisfies the precondition",
                        self.name, self.rejects, self.cases_done, self.cases_target
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "{} failed at case {} (seed {}):\n{}\ninputs:\n{}\
                     rerun just this case with PROPTEST_SEED={} PROPTEST_CASES=1 \
                     after skipping {} generations, or rerun the whole test with \
                     PROPTEST_SEED={}",
                    self.name,
                    self.cases_done + 1,
                    self.seed,
                    msg,
                    rendered(),
                    mix(self.seed, self.generation),
                    self.generation - 1,
                    self.seed,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_counts_successes() {
        let mut r = TestRunner::new(ProptestConfig::with_cases(3), "vendor::count");
        let mut loops = 0;
        while r.wants_more() {
            let _ = r.case_rng();
            r.finish_case(Ok(()), String::new);
            loops += 1;
        }
        assert_eq!(loops, 3);
    }

    #[test]
    fn env_cases_falls_back_to_the_suite_default() {
        // The knob itself is exercised end-to-end by CI's fast lane
        // (ISAX_PROPTEST_CASES=32); here we only check the fallback so
        // the test stays independent of process-global env mutation.
        if std::env::var("ISAX_PROPTEST_CASES").is_err() {
            assert_eq!(ProptestConfig::with_env_cases(77).cases, 77);
        }
    }

    #[test]
    fn rejects_do_not_count() {
        let mut r = TestRunner::new(ProptestConfig::with_cases(2), "vendor::reject");
        let _ = r.case_rng();
        r.finish_case(Err(TestCaseError::Reject), String::new);
        assert!(r.wants_more());
        let _ = r.case_rng();
        r.finish_case(Ok(()), String::new);
        let _ = r.case_rng();
        r.finish_case(Ok(()), String::new);
        assert!(!r.wants_more());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failure_panics_with_message() {
        let mut r = TestRunner::new(ProptestConfig::with_cases(1), "vendor::fail");
        let _ = r.case_rng();
        r.finish_case(Err(TestCaseError::fail("boom")), || "  x = 1\n".into());
    }
}
