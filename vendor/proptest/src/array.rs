//! Fixed-size array strategies (`proptest::array::uniform*`).

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Generates `[S::Value; N]` by drawing `N` values from one strategy.
pub struct UniformArray<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
    type Value = [S::Value; N];
    fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
        std::array::from_fn(|_| self.element.generate(rng))
    }
}

macro_rules! uniform_fns {
    ($($name:ident => $n:literal),* $(,)?) => {$(
        /// Array of
        #[doc = stringify!($n)]
        /// values drawn from one strategy.
        pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
            UniformArray { element }
        }
    )*};
}

uniform_fns! {
    uniform1 => 1,
    uniform2 => 2,
    uniform3 => 3,
    uniform4 => 4,
    uniform5 => 5,
    uniform6 => 6,
    uniform8 => 8,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_arrays_have_fixed_len() {
        let mut rng = TestRng::from_seed(11);
        let a3 = uniform3(0u32..7).generate(&mut rng);
        assert!(a3.iter().all(|&v| v < 7));
        let a4: [u32; 4] = uniform4(0u32..7).generate(&mut rng);
        assert!(a4.iter().all(|&v| v < 7));
    }
}
