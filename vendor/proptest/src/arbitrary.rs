//! `any::<T>()` — canonical strategies for primitive types.

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::fmt::Debug;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws a uniformly distributed value over the full domain.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// A strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_covers_domain_ends() {
        let mut rng = TestRng::from_seed(13);
        let mut seen_true = false;
        let mut seen_false = false;
        let mut high_u8 = 0u8;
        for _ in 0..512 {
            match any::<bool>().generate(&mut rng) {
                true => seen_true = true,
                false => seen_false = true,
            }
            high_u8 = high_u8.max(any::<u8>().generate(&mut rng));
        }
        assert!(seen_true && seen_false);
        assert!(high_u8 > 200, "u8 draws should span the domain");
    }
}
