//! The [`Strategy`] trait and its core implementations.

use crate::rng::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree or shrinking: a
/// strategy simply draws a value from the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with a function.
    fn prop_map<T: Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Uses each generated value to build a follow-on strategy, then
    /// draws from that.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }

    /// Boxes the strategy, erasing its concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, type-erased strategy (mirror of upstream's `BoxedStrategy`).
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Strategies behind references delegate to the referent, so the
/// `proptest!` macro can call `Strategy::generate(&strat, ..)`.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T: Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Always produces a clone of one value (upstream's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Debug + Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start < self.end,
                    "empty range strategy {:?}..{:?}", self.start, self.end
                );
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy {lo:?}..={hi:?}");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident / $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// A fixed-size array of strategies generates a fixed-size array of
/// values, element by element in order.
impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];
    fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
        std::array::from_fn(|i| self[i].generate(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..500 {
            let v = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (-100i64..100).generate(&mut rng);
            assert!((-100..100).contains(&w));
            let x = (5usize..=5).generate(&mut rng);
            assert_eq!(x, 5);
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::from_seed(2);
        let doubled = (1u32..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = doubled.generate(&mut rng);
            assert!(v % 2 == 0 && (2..20).contains(&v));
        }
        let dependent = (1usize..4).prop_flat_map(|n| n..n + 1);
        for _ in 0..100 {
            let v = dependent.generate(&mut rng);
            assert!((1..4).contains(&v));
        }
    }

    #[test]
    fn tuples_and_arrays() {
        let mut rng = TestRng::from_seed(3);
        let (a, b) = (0u8..4, 10u16..20).generate(&mut rng);
        assert!(a < 4 && (10..20).contains(&b));
        let arr = [0usize..64, 0usize..64, 0usize..64].generate(&mut rng);
        assert!(arr.iter().all(|&v| v < 64));
    }
}
