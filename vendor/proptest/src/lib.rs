//! A self-contained, offline subset of the `proptest` property-testing
//! crate.
//!
//! The workspace's build environments cannot reach a crate registry, so
//! this vendored implementation stands in for the real `proptest`. It
//! keeps the same module layout and macro names for the API surface the
//! test suite uses:
//!
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map`,
//!   implemented for integer and float ranges, tuples, and arrays of
//!   strategies;
//! * [`collection::vec`] and [`array::uniform3`] / [`array::uniform4`];
//! * [`arbitrary::any`] for the primitive types;
//! * the [`proptest!`] macro with `#![proptest_config(..)]` support,
//!   plus [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`]
//!   and [`prop_assume!`].
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case panics with the fully rendered
//!   inputs and the run's seed; cases are small enough here that the
//!   raw input is actionable.
//! * **Deterministic seeding.** Each test derives its base seed from
//!   its module path and name, so failures reproduce across runs and
//!   machines. Set `PROPTEST_SEED` to rerun a reported seed and
//!   `PROPTEST_CASES` to override the case count.
//! * `.proptest-regressions` files are not replayed (their seeds are
//!   specific to upstream's RNG); known failures from those files are
//!   committed as ordinary unit tests instead.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod array;
pub mod collection;
pub mod rng;
pub mod strategy;
pub mod test_runner;

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]: one wrapper `fn` per case.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner = $crate::test_runner::TestRunner::new(
                    cfg,
                    concat!(module_path!(), "::", stringify!($name)),
                );
                while runner.wants_more() {
                    let mut rng = runner.case_rng();
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng); )*
                    let rendered = || {
                        let mut s = ::std::string::String::new();
                        $(
                            s.push_str(concat!("  ", stringify!($arg), " = "));
                            s.push_str(&format!("{:?}", &$arg));
                            s.push('\n');
                        )*
                        s
                    };
                    let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        { $body }
                        ::std::result::Result::Ok(())
                    })();
                    runner.finish_case(outcome, rendered);
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case
/// (with the generated inputs) instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n  right: {:?}",
            stringify!($lhs), stringify!($rhs), l, r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n  right: {:?}",
                format!($($fmt)*), l, r
            )));
        }
    }};
}

/// Asserts two expressions differ inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($lhs), stringify!($rhs), l
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l != *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  both: {:?}",
                format!($($fmt)*), l
            )));
        }
    }};
}

/// Discards the current case when its inputs do not satisfy a
/// precondition; discarded cases are regenerated, not counted.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        $crate::prop_assume!($cond)
    };
}
