//! Deterministic random number generation for test cases.
//!
//! A splitmix64 generator: tiny, fast, full-period over its 64-bit
//! state, and trivially reproducible from a printed seed.

/// The per-case random number generator.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value (splitmix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next raw 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, span)`; `span` must be non-zero. The modulo
    /// bias over a 64-bit draw is negligible for test generation.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        self.next_u64() % span
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Mixes a seed with a counter to derive independent per-case streams.
pub fn mix(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Stable 64-bit hash of a string (FNV-1a), used to give every test a
/// distinct but machine-independent base seed.
pub fn hash_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = TestRng::from_seed(42);
        let mut b = TestRng::from_seed(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::from_seed(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = TestRng::from_seed(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let f = r.unit_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
