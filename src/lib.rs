//! Umbrella crate for the `isax` reproduction workspace.
//!
//! This crate only hosts the repository-level examples and integration
//! tests; the functionality lives in the `isax*` member crates. See
//! [`isax`] for the end-to-end pipeline entry point.

#![forbid(unsafe_code)]

pub use isax as pipeline;
