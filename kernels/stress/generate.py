#!/usr/bin/env python3
"""Regenerates the pathological stress corpus in this directory.

Each kernel is designed so the guided explorer's candidate space --
connected convex subgraphs within the paper's 5-input/3-output port
limits -- exceeds 10^6 examined subgraphs on its hot block, while the
whole file stays small enough to parse instantly. They exist to exercise
isax-guard: a bounded run must terminate with a degradation report and a
sound partial result (see tests/stress_guard.rs).

Run from the repo root:  python3 kernels/stress/generate.py
"""

import os

OUT = os.path.dirname(os.path.abspath(__file__))


class Fn:
    def __init__(self, name, nparams):
        self.name = name
        self.next = nparams
        self.lines = []

    def reg(self):
        r = f"v{self.next}"
        self.next += 1
        return r

    def op(self, mnem, *srcs):
        d = self.reg()
        self.lines.append(f"    {mnem} {d}, {', '.join(srcs)}")
        return d

    def stw(self, addr, val):
        self.lines.append(f"    stw {addr}, {val}")

    def text(self, weight, params):
        head = f"func {self.name}({', '.join(params)})\n"
        head += f"b0:  ; weight {weight}\n"
        body = "\n".join(self.lines)
        return head + body + "\n"


def deep_chain():
    """A long chain of rotate diamonds (xor -> shl/shr -> or).

    Any window of the chain is a candidate, and every shl/shr inside a
    window can be excluded for +1 input -- combinatorially many shapes
    per window, times ~190 window positions.
    """
    f = Fn("deep_chain", 2)
    acc, k = "v0", "v1"
    for i in range(190):
        t = f.op("xor", acc, k)
        l = f.op("shl", t, "#5")
        r = f.op("shr", t, "#27")
        acc = f.op("or", l, r)
    f.lines.append(f"    ret {acc}")
    return f.text(100000, ["v0", "v1"])


def wide_fanout():
    """A chain of 4-way fanout stages.

    Every stage fans one value out to four independent single-op branches
    and reduces them with a two-level or-tree. Each branch (and each
    reducer) can be excluded from a window for +1 input, so a window of k
    stages contributes C(6k, <=3) shapes -- far more per window than the
    plain diamond chain.
    """
    f = Fn("wide_fanout", 2)
    acc, k = "v0", "v1"
    for i in range(95):
        t = f.op("xor", acc, k)
        b1 = f.op("shl", t, "#1")
        b2 = f.op("shr", t, "#3")
        b3 = f.op("add", t, "#9")
        b4 = f.op("xor", t, "#21")
        c1 = f.op("or", b1, b2)
        c2 = f.op("or", b3, b4)
        acc = f.op("or", c1, c2)
    f.lines.append(f"    ret {acc}")
    return f.text(100000, ["v0", "v1"])


def dense_clique():
    """An all-commutative diamond chain.

    Topologically like deep_chain (a chain of single-parent,
    single-child excludable side pairs, which is the shape that makes
    the candidate space explode under the 5-in/3-out port caps), but
    every node is a commutative op. Matching its candidates back into
    the program forces VF2 to consider operand swaps at every level,
    so this is the permutation-matching stress.
    """
    f = Fn("dense_clique", 2)
    acc, k = "v0", "v1"
    for i in range(190):
        t = f.op("add", acc, k)
        l = f.op("and", t, f"#{(i % 30) + 1}")
        r = f.op("or", t, f"#{(i % 28) + 2}")
        acc = f.op("xor", l, r)
    f.lines.append(f"    ret {acc}")
    return f.text(100000, ["v0", "v1"])


def mem_alu_ladder():
    """Alternating memory / ALU segments.

    Each segment loads a word, runs a rotate-diamond chain seeded by it,
    and stores the result. Loads and stores are CFU-ineligible under the
    baseline library, so each ALU island explores independently -- but
    all islands live in one block (one DFG, one meter), so their
    candidate spaces accumulate against a single budget. The ld/st fence
    around every island also makes this the memory-ordering stress for
    the scheduler.
    """
    f = Fn("mem_alu_ladder", 2)
    base, acc = "v0", "v1"
    for seg in range(20):
        a0 = f.op("add", base, f"#{seg * 64}")
        a = f.op("ldw", a0)
        t = f.op("xor", a, acc)
        for i in range(24):
            u = f.op("xor", t, acc)
            l = f.op("shl", u, "#7")
            r = f.op("shr", u, "#25")
            t = f.op("or", l, r)
        acc = t
        f.stw(a0, acc)
    f.lines.append(f"    ret {acc}")
    return f.text(100000, ["v0", "v1"])


def main():
    for name, gen in [
        ("deep_chain", deep_chain),
        ("wide_fanout", wide_fanout),
        ("dense_clique", dense_clique),
        ("mem_alu_ladder", mem_alu_ladder),
    ]:
        path = os.path.join(OUT, f"{name}.isax")
        with open(path, "w") as fh:
            fh.write(gen())
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
